"""E1 — Corollary 1.2 / Theorem 4.23: asynchronous single-source BFS.

Claim: Õ(D) time and Õ(m) messages.  We sweep n on a high-diameter family
(cycle) and a low-diameter family (hypercube) and report time/D and
messages/m; the shape check is that both normalized series grow
polylogarithmically — their power-law exponent against n stays well below 1
(a linear-overhead scheme would sit at 1).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, power_exponent, record, run_once

from repro.analysis import Series
from repro.core import run_full_bfs
from repro.net import topology


def _sweep(make_graph, sizes):
    series = Series(
        "E1: async single-source BFS (Cor 1.2)",
        ["n", "m", "D", "messages", "msgs/m", "time", "time/D"],
    )
    for n in sizes:
        g = make_graph(n)
        outcome = run_full_bfs(g, 0, BENCH_DELAYS)
        d = g.diameter()
        series.add(
            g.num_nodes,
            g.num_edges,
            d,
            outcome.messages,
            outcome.messages / g.num_edges,
            round(outcome.result.time_to_output, 1),
            round(outcome.result.time_to_output / d, 2),
        )
    return series


def test_e01_cycle_high_diameter(benchmark):
    series = run_once(benchmark, lambda: _sweep(topology.cycle_graph, [16, 32, 64, 128]))
    record(benchmark, series)
    ns = series.column("n")
    per_m = series.column("msgs/m")
    per_d = series.column("time/D")
    # Shape: normalized series sub-linear in n (polylog regime).
    assert power_exponent(ns, per_m) < 0.75
    assert power_exponent(ns, per_d) < 0.75
    benchmark.extra_info["msgs_per_m_exponent"] = power_exponent(ns, per_m)
    benchmark.extra_info["time_per_d_exponent"] = power_exponent(ns, per_d)


def test_e01_hypercube_low_diameter(benchmark):
    series = run_once(
        benchmark,
        lambda: _sweep(lambda n: topology.hypercube_graph(n.bit_length() - 1), [16, 32, 64, 128]),
    )
    record(benchmark, series)
    assert all(ratio < 220 for ratio in series.column("msgs/m"))


def test_e01_random_sparse(benchmark):
    series = run_once(
        benchmark,
        lambda: _sweep(lambda n: topology.erdos_renyi_graph(n, 3.0 / n, seed=7), [16, 32, 64, 128]),
    )
    record(benchmark, series)
    assert all(ratio < 220 for ratio in series.column("msgs/m"))
