"""E10 — Appendix B, issue (II): clock-based programs cost Θ(n·T) extra.

A clock-based synchronous program ("wait r rounds, then send") must be
transformed for the synchronizer by having each idle node tick itself with a
self-clock chain — one virtual message per round per node — adding Θ(n·T)
messages.  The event-driven paraphrase of the same task avoids the chain.

Workload: a "delayed echo" — the endpoint of a path answers the initiator
only after the token has crossed the whole path.  The clock-based variant
has every node count T rounds with a neighbor ping-pong; the event-driven
variant simply reacts to the token.  We run both through the synchronizer
and measure the blow-up.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, SWEEP_DELAYS, record, run_once

from repro.analysis import Series
from repro.core import SynchronizerSweep, run_sweeps_sharded
from repro.net.shard import summarize
from repro.net import (
    NodeProgram,
    ProgramSpec,
    all_nodes_initiate,
    run_synchronous,
    topology,
)


class EventDrivenToken(NodeProgram):
    """Token walks to the highest id, then an ack walks back."""

    def on_start(self, api):
        if self.info.node_id == 0:
            api.send(self._next(), ("fwd",))

    def _next(self):
        higher = [v for v in self.info.neighbors if v > self.info.node_id]
        return min(higher) if higher else None

    def _prev(self):
        lower = [v for v in self.info.neighbors if v < self.info.node_id]
        return max(lower) if lower else None

    def on_pulse(self, api, arrived):
        for sender, (kind,) in arrived:
            if kind == "fwd":
                nxt = self._next()
                if nxt is None:
                    api.send(self._prev(), ("ack",))
                else:
                    api.send(nxt, ("fwd",))
            else:
                prev = self._prev()
                if prev is None:
                    api.set_output("answered")
                else:
                    api.send(prev, ("ack",))


class ClockBasedToken(NodeProgram):
    """Same task, written clock-based: idle nodes tick with a neighbor.

    The footnote-4 transformation: each node generates a clock by bouncing a
    message off its lowest neighbor every round until the token has passed —
    the Θ(n·T) overhead the paper warns about, made explicit.
    """

    def __init__(self, info):
        super().__init__(info)
        n = info.n_upper
        self.ticks_left = 2 * n  # a clock long enough to outlive the walk
        self.task_done = False

    def _next(self):
        higher = [v for v in self.info.neighbors if v > self.info.node_id]
        return min(higher) if higher else None

    def _prev(self):
        lower = [v for v in self.info.neighbors if v < self.info.node_id]
        return max(lower) if lower else None

    def _sent_targets(self, api):
        return {to for to, _ in api._sends}

    def on_start(self, api):
        if self.info.node_id == 0:
            api.send(self._next(), ("fwd",))
        buddy = min(self.info.neighbors)
        if buddy not in self._sent_targets(api):
            api.send(buddy, ("tick",))

    def on_pulse(self, api, arrived):
        tick_seen = False
        for sender, (kind,) in arrived:
            if kind == "fwd":
                nxt = self._next()
                if nxt is None:
                    api.send(self._prev(), ("ack",))
                    self.task_done = True
                else:
                    api.send(nxt, ("fwd",))
            elif kind == "ack":
                prev = self._prev()
                if prev is None:
                    api.set_output("answered")
                    self.task_done = True
                else:
                    api.send(prev, ("ack",))
                    self.task_done = True
            else:
                tick_seen = True
        if tick_seen and not self.task_done and self.ticks_left > 0:
            self.ticks_left -= 1
            buddy = min(self.info.neighbors)
            if buddy not in self._sent_targets(api):
                api.send(buddy, ("tick",))


def _sweep():
    series = Series(
        "E10: event-driven vs clock-based programs (App. B)",
        ["n", "variant", "M_sync", "M_async", "time_async"],
    )
    ratios = {}
    for n in (12, 48, 96):
        g = topology.path_graph(n)
        event_spec = ProgramSpec("token-event", EventDrivenToken, all_nodes_initiate)
        clock_spec = ProgramSpec("token-clock", ClockBasedToken, all_nodes_initiate)
        results = {}
        for name, spec in (("event", event_spec), ("clock", clock_spec)):
            sync = run_synchronous(g, spec)
            result = SynchronizerSweep(g, spec).run(BENCH_DELAYS)
            assert result.outputs.get(0) == "answered"
            series.add(n, name, sync.messages, result.messages,
                       round(result.time_to_output, 1))
            results[name] = result.messages
        ratios[n] = results["clock"] / results["event"]
    return series, ratios


def _model_sweep(n=96):
    """The clock penalty across the delay-model family: both program
    variants share one synchronizer setup per spec and are replayed per
    model through the sweep API — the Θ(n·T) blow-up is schedule-independent
    (the self-clock chain sends the same virtual messages under every
    adversary), which the band assertion pins."""
    g = topology.path_graph(n)
    event_spec = ProgramSpec("token-event", EventDrivenToken, all_nodes_initiate)
    clock_spec = ProgramSpec("token-clock", ClockBasedToken, all_nodes_initiate)
    series = Series(
        "E10b: clock penalty across delay models (sweep API, n=96)",
        ["model", "M_event", "M_clock", "penalty"],
    )
    event_sweep = SynchronizerSweep(g, event_spec)
    clock_sweep = SynchronizerSweep(g, clock_spec)
    penalties = []
    for model in SWEEP_DELAYS():
        event = event_sweep.run(model)
        clock = clock_sweep.run(model)
        assert event.outputs.get(0) == "answered"
        assert clock.outputs.get(0) == "answered"
        penalty = clock.messages / event.messages
        penalties.append(penalty)
        series.add(type(model).__name__, event.messages, clock.messages,
                   round(penalty, 2))
    return series, penalties


def test_e10_clock_penalty(benchmark):
    series, ratios = run_once(benchmark, _sweep)
    record(benchmark, series)
    # The clock-based variant pays a growing multiplicative penalty.
    assert ratios[96] > 1.5
    assert ratios[96] > ratios[12]


def test_e10_clock_penalty_across_delay_models(benchmark):
    series, penalties = run_once(benchmark, _model_sweep)
    record(benchmark, series)
    # The penalty exists under every adversary and stays in a narrow band.
    assert min(penalties) > 1.5
    assert max(penalties) / min(penalties) < 1.5


def test_e10_sharded_matrix_matches_serial(benchmark, jobs):
    """DESIGN.md §14: one pool spans the event-vs-clock sweep matrix —
    both program variants shipped in one bundle — and every cell comes
    back byte-identical to the serial sweep, for any ``--jobs``."""

    def run():
        g = topology.path_graph(96)
        sweeps = [
            SynchronizerSweep(
                g, ProgramSpec("token-event", EventDrivenToken, all_nodes_initiate)
            ),
            SynchronizerSweep(
                g, ProgramSpec("token-clock", ClockBasedToken, all_nodes_initiate)
            ),
        ]
        models = SWEEP_DELAYS()
        serial = [
            [summarize(i, r) for i, r in enumerate(s.run_all(models))]
            for s in sweeps
        ]
        return serial, run_sweeps_sharded(sweeps, models, jobs=jobs)

    serial, sharded = run_once(benchmark, run)
    for serial_cells, sharded_cells in zip(serial, sharded):
        assert [s.comparable() for s in sharded_cells] == [
            s.comparable() for s in serial_cells
        ]
