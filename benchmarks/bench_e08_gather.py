"""E8 — Theorems 3.1/3.2: gathering completion information in covers.

Claims: with all nodes done by time t, every node learns its d·l-ball is
done by t + O(d·l·polylog), using O(m·l·polylog) extra messages — linear
scaling in l, near-linear in d, near-independent of n beyond that.
"""

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, record, run_once

from repro.analysis import Series
from repro.core.gather import GatherModule
from repro.covers import build_ap_cover
from repro.net import AsyncRuntime, Process, topology


def _run_gather(graph, cover, stages):
    completions = {}

    class Driver(Process):
        def __init__(self, ctx):
            super().__init__(ctx)
            self.module = GatherModule(
                node_id=ctx.node_id,
                cover=cover,
                send=lambda to, payload, priority: ctx.send(to, payload, priority),
                on_complete=lambda stage: completions.__setitem__(
                    (ctx.node_id, stage), ctx.now
                ),
                num_stages=stages,
            )

        def on_start(self):
            self.module.start()
            self.module.mark_done()

        def on_message(self, sender, payload):
            assert self.module.handle(sender, payload)

    runtime = AsyncRuntime(graph, Driver, BENCH_DELAYS)
    result = runtime.run(max_events=20_000_000)
    assert result.stop_reason == "quiescent"
    final = max(t for (v, s), t in completions.items() if s == stages)
    return final, result.messages


def _sweep():
    series = Series(
        "E8: gather in covers (Thm 3.1/3.2)",
        ["n", "d", "stages", "completion_time", "messages", "msgs/(m*stages)"],
    )
    for n in (36, 64):
        g = topology.grid_graph(int(n ** 0.5), int(n ** 0.5))
        for d in (1, 2, 4):
            cover = build_ap_cover(g, d)
            for stages in (1, 2, 4):
                t, msgs = _run_gather(g, cover, stages)
                series.add(
                    g.num_nodes, d, stages, round(t, 1), msgs,
                    round(msgs / (g.num_edges * stages), 2),
                )
    return series


def test_e08_gather_scaling(benchmark):
    series = run_once(benchmark, _sweep)
    record(benchmark, series)
    rows = list(zip(series.column("n"), series.column("d"),
                    series.column("stages"), series.column("messages")))
    # Messages scale linearly in the stage count (Theorem 3.2's l factor).
    for n, d in {(r[0], r[1]) for r in rows}:
        msgs = {r[2]: r[3] for r in rows if (r[0], r[1]) == (n, d)}
        assert msgs[4] <= 4.5 * msgs[1]
        assert msgs[2] <= 2.5 * msgs[1]
