"""E12 — churn-tolerant synchronizer recovery (DESIGN.md §11).

Claims measured here:

* **Degrade** terminates quiescent on the surviving component with
  best-effort outputs bounded by ``dist_G(v) <= output(v) <= dist_H(v)``,
  at zero extra message cost over the faulty run itself.
* **Reanchor** (DESIGN.md §15) re-attaches orphaned survivors beneath
  the degraded tree with a bounded offset-BFS wave: every survivor
  answers, the answers satisfy ``dist_G <= output <= dist_H``, and the
  repair cost sits between degrade's zero and rebuild's full clean pass.
* **Rebuild** pays one extra clean pass on the surviving component and
  returns exact ``dist_H`` — the cost ratio is the price of exactness.
* **Link churn alone** (down intervals, no crashes) only *defers*
  delivery, so outputs equal the fault-free run byte for byte; the
  message overhead is exactly zero and only the completion time moves —
  and the same holds when the links *flap* (recurrent mode: every down
  interval re-draws forever instead of healing once).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, record, run_once

from repro.analysis import Series
from repro.apps.programs import bfs_spec
from repro.core import run_churn, run_synchronized
from repro.net import topology
from repro.net.faults import FaultSchedule


def _bfs_distances(graph, survivors, root=0):
    live = set(survivors)
    dist = {root: 0}
    frontier = [root]
    while frontier:
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u in live and u not in dist:
                    dist[u] = dist[v] + 1
                    nxt.append(u)
        frontier = nxt
    return dist


def _crash_churn():
    series = Series(
        "E12: BFS under node churn, degrade vs reanchor vs rebuild"
        " (crash_rate=0.1)",
        ["n", "mode", "survivors", "answered", "messages", "repair_msgs",
         "dropped", "time"],
    )
    for n in (64, 128):
        graph = topology.cycle_graph(n)
        faults = FaultSchedule(seed=2305, crash_rate=0.1, protect=(0,))
        dist_g = _bfs_distances(graph, range(n))
        for mode in ("degrade", "reanchor", "rebuild"):
            out = run_churn(graph, bfs_spec, BENCH_DELAYS, faults, mode=mode)
            assert out.stop_reason == "quiescent"
            dist = _bfs_distances(graph, out.survivors)
            if mode == "rebuild":
                # Exactness: the rebuild pass answers every survivor with
                # its true distance in the surviving component.
                assert out.answered == out.survivor_count
                for v in out.survivors:
                    assert out.outputs[v][0] == dist[v]
            elif mode == "reanchor":
                # Completeness + sandwich: re-anchoring answers every
                # survivor, and every answer sits in the dist_G <= out
                # <= dist_H band — a reattached orphan may keep a
                # pre-crash shortcut but never beats the original graph.
                assert out.answered == out.survivor_count
                for v in out.survivors:
                    assert dist_g[v] <= out.outputs[v][0] <= dist[v]
            else:
                # Degrade bound: dist_G(v) <= output(v) (<= dist_H(v)).
                for v, (d, _parent) in out.outputs.items():
                    assert d <= dist[v]
            series.add(
                n, mode, out.survivor_count, out.answered, out.messages,
                out.rebuild_messages + out.reanchor_messages, out.dropped,
                round(out.time_to_quiescence, 1),
            )
    return series


def _link_churn():
    series = Series(
        "E12b: link churn only (down_rate=0.05): deferral, never loss",
        ["n", "run", "messages", "dropped", "time_to_output"],
    )
    for n in (64, 128):
        graph = topology.cycle_graph(n)
        spec = bfs_spec(0)
        clean = run_synchronized(graph, spec, BENCH_DELAYS)
        series.add(n, "clean", clean.messages, 0,
                   round(clean.time_to_output, 1))
        for run, recurrent in (("churned", False), ("flapping", True)):
            faults = FaultSchedule(seed=2305 + n, down_rate=0.05,
                                   recurrent=recurrent)
            churned = run_churn(graph, bfs_spec, BENCH_DELAYS, faults,
                                mode="degrade")
            # Down intervals defer but never lose: identical outputs,
            # zero message overhead, only the clock moves.  Recurrent
            # (flapping) links re-draw a fresh down interval after every
            # heal, forever — deferral still never becomes loss.
            assert churned.outputs == clean.outputs
            assert churned.messages == clean.messages
            assert churned.dropped == 0
            series.add(n, run, churned.messages, churned.dropped,
                       round(churned.time_to_output, 1))
    return series


def test_e12_crash_churn(benchmark):
    series = run_once(benchmark, _crash_churn)
    record(benchmark, series)
    rows = list(series.rows)
    # Three rows per size: degrade, reanchor, rebuild.  The repair-cost
    # ladder orders them — degrade pays nothing, re-anchoring pays a
    # bounded patch wave, rebuild pays a full clean pass; completeness
    # moves the same way (reanchor and rebuild answer everyone).
    for degrade, reanchor, rebuild in zip(rows[::3], rows[1::3], rows[2::3]):
        assert degrade[5] == 0           # repair_msgs column
        assert reanchor[5] < rebuild[5]
        # The patch wave is free exactly when there is nothing to patch:
        # it spends messages iff degrade left survivors unanswered.
        assert (reanchor[5] > 0) == (degrade[3] < degrade[2])
        assert rebuild[3] >= reanchor[3] >= degrade[3]  # answered column
        assert reanchor[3] == reanchor[2]  # reanchor answers all survivors


def test_e12_link_churn(benchmark):
    series = run_once(benchmark, _link_churn)
    record(benchmark, series)
    times = series.column("time_to_output")
    # Three rows per size: clean, churned, flapping.  Deferral can only
    # slow the run down, never speed it up.
    for clean_t, churned_t, flap_t in zip(times[::3], times[1::3],
                                          times[2::3]):
        assert churned_t >= clean_t
        assert flap_t >= clean_t
