"""Performance-regression harness for the discrete-event core.

Measures wall time and throughput of the synchronizer stack on a fixed
workload matrix and records them in ``BENCH_core.json`` next to this script,
so every future change has a perf trajectory to beat.  Determinism is pinned
alongside speed: each entry stores the message count and a digest of the
node outputs, and ``--check`` fails on any mismatch (the engine must stay
byte-for-byte reproducible, not merely fast).

Usage:
    python benchmarks/perf_regression.py            # run full matrix, print
    python benchmarks/perf_regression.py --quick    # CI subset
    python benchmarks/perf_regression.py --write    # refresh BENCH_core.json
    python benchmarks/perf_regression.py --check    # fail on regression
                                                    #   (>30% throughput drop
                                                    #    or any determinism
                                                    #    mismatch)

Wall times on shared CI machines are noisy and CI runners are not the
machine that wrote the baseline; the gate therefore (a) uses best-of-N
messages/second (the most stable throughput proxy), (b) rescales the
committed baseline by a host-speed calibration loop recorded alongside it
(so a runner half as fast as the authoring host is held to half the
absolute floor), and (c) keeps a generous threshold on top.  Exact fields
(messages, outputs digest) are compared strictly — determinism does not get
a noise allowance.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.programs import bfs_spec  # noqa: E402
from repro.core import run_synchronized, run_thresholded_bfs  # noqa: E402
from repro.net import topology  # noqa: E402
from repro.net.delays import UniformDelay  # noqa: E402

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_core.json"
SEED = 2305  # arXiv number of the paper
DEFAULT_THRESHOLD = 0.30  # fail --check when msgs/sec drops by more than this

#: Wall time of ``run_synchronized(bfs_spec(0), cycle_graph(64), UniformDelay)``
#: at the seed revision (commit 1863e4f), measured on the same host with the
#: same best-of-N methodology used below.  The rebuilt engine is compared
#: against this to document the speedup (messages and outputs are
#: byte-identical between the two revisions).
SEED_REFERENCE = {
    "workload": "sync-bfs/cycle/64",
    "wall_best": 0.0988,
    "wall_median": 0.1018,
    "messages": 8272,
    # Interleaved A/B runs (seed worktree vs this tree, alternating in the
    # same minute to cancel host-load drift) measured 3.4-3.9x at n=64 and
    # ~4.3x at n=256.  The ratio computed per --write run below compares
    # against wall clocks from different load windows and is noisier.
    "speedup_interleaved_ab": "3.4-3.9x (n=64), ~4.3x (n=256)",
}


def _digest(outputs) -> str:
    return hashlib.sha256(repr(sorted(outputs.items())).encode()).hexdigest()[:16]


def _calibrate(reps: int = 3) -> float:
    """Host-speed proxy (ops/sec): a fixed pure-Python workload shaped like
    the event loop (dict/heap traffic plus float arithmetic), best of N."""
    import heapq

    def spin():
        heap = []
        d = {}
        acc = 0.0
        for i in range(60_000):
            heapq.heappush(heap, ((i * 0.618) % 1.0, i))
            d[i & 1023] = i
            acc += (i * 0.6180339887498949) % 1.0
            if i & 1:
                heapq.heappop(heap)
        return acc

    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        spin()
        best = min(best, time.perf_counter() - t0)
    return 60_000 / best


def _run_synchronized(graph):
    return run_synchronized(graph, bfs_spec(0), UniformDelay(seed=SEED))


def _run_tbfs(graph, threshold):
    outcome = run_thresholded_bfs(graph, 0, threshold, UniformDelay(seed=SEED))
    return outcome.result


# (name, graph builder, runner) — ``quick`` entries run in CI.
WORKLOADS = [
    ("sync-bfs/cycle/64", lambda: topology.cycle_graph(64), _run_synchronized, True),
    ("sync-bfs/grid/256", lambda: topology.grid_graph(16, 16), _run_synchronized, True),
    ("sync-bfs/cycle/256", lambda: topology.cycle_graph(256), _run_synchronized, False),
    ("sync-bfs/regular/256",
     lambda: topology.random_regular_graph(256, 4, seed=1), _run_synchronized, False),
    ("tbfs-16/cycle/256",
     lambda: topology.cycle_graph(256), lambda g: _run_tbfs(g, 16), False),
]


def measure(quick: bool, reps: int = 5) -> dict:
    results = {}
    for name, build, runner, in_quick in WORKLOADS:
        if quick and not in_quick:
            continue
        graph = build()
        runner(graph)  # warm caches (covers, pulse bounds, infos)
        walls = []
        result = None
        for _ in range(reps):
            t0 = time.perf_counter()
            result = runner(graph)
            walls.append(time.perf_counter() - t0)
        best = min(walls)
        results[name] = {
            "wall_best": round(best, 5),
            "wall_median": round(statistics.median(walls), 5),
            "messages": result.messages,
            "events_fired": result.events_fired,
            "msgs_per_sec": round(result.messages / best),
            "outputs_digest": _digest(result.outputs),
        }
        print(f"{name:26s} best {best*1e3:8.1f} ms   "
              f"{results[name]['msgs_per_sec']:>9,} msgs/s   "
              f"{result.messages:>7} msgs   {results[name]['outputs_digest']}")
    return results


def check(current: dict, committed: dict, threshold: float) -> int:
    # Rescale the committed floors by relative host speed, so the absolute
    # msgs/sec recorded on the authoring machine transfers to slower (or
    # faster) CI runners.
    base_cal = committed.get("calibration_ops_per_sec")
    if base_cal:
        scale = _calibrate() / base_cal
        print(f"host speed vs baseline host: x{scale:.2f}")
    else:
        scale = 1.0
    failures = []
    for name, entry in current.items():
        base = committed.get("workloads", {}).get(name)
        if base is None:
            print(f"NOTE: {name} not in committed baseline, skipping")
            continue
        if entry["messages"] != base["messages"]:
            failures.append(
                f"{name}: message count changed {base['messages']} -> {entry['messages']}"
            )
        if entry["outputs_digest"] != base["outputs_digest"]:
            failures.append(
                f"{name}: outputs digest changed {base['outputs_digest']}"
                f" -> {entry['outputs_digest']}"
            )
        floor = base["msgs_per_sec"] * scale * (1.0 - threshold)
        if entry["msgs_per_sec"] < floor:
            failures.append(
                f"{name}: throughput regressed {base['msgs_per_sec']:,} ->"
                f" {entry['msgs_per_sec']:,} msgs/s"
                f" (host-scaled floor {floor:,.0f})"
            )
    if failures:
        print("\nPERF REGRESSION CHECK FAILED:")
        for f in failures:
            print(" -", f)
        return 1
    print("\nperf regression check passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI subset")
    parser.add_argument("--write", action="store_true", help="update BENCH_core.json")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed BENCH_core.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument("--reps", type=int, default=5)
    args = parser.parse_args()

    current = measure(quick=args.quick, reps=args.reps)

    if args.check:
        if not BENCH_PATH.exists():
            print("no committed BENCH_core.json; nothing to check against")
            return 1
        committed = json.loads(BENCH_PATH.read_text())
        return check(current, committed, args.threshold)

    if args.write:
        acceptance = current.get(SEED_REFERENCE["workload"])
        payload = {
            "methodology": (
                f"best of {args.reps} warm runs per workload; UniformDelay"
                f" seed {SEED}; msgs_per_sec = messages / wall_best; --check"
                " rescales floors by calibration_ops_per_sec of the host"
            ),
            "calibration_ops_per_sec": round(_calibrate()),
            "seed_reference": SEED_REFERENCE,
            "speedup_vs_seed_this_run": (
                round(SEED_REFERENCE["wall_best"] / acceptance["wall_best"], 2)
                if acceptance else None
            ),
            "workloads": current,
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
