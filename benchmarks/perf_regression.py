"""Performance-regression harness for the discrete-event core.

Measures wall time and throughput of the synchronizer stack on a fixed
workload matrix and records them in ``BENCH_core.json`` next to this script,
so every future change has a perf trajectory to beat.  Determinism is pinned
alongside speed: each entry stores the message count and a digest of the
node outputs, and ``--check`` fails on any mismatch (the engine must stay
byte-for-byte reproducible, not merely fast).

The matrix includes the 5-delay-model sweep workloads (cycle+grid at n=256,
and the n=512 / n=1024 multi-source cells with sampled initiator sets — the
ROADMAP's fix for the Θ(n²) all-initiator blowup; the n=1024 cells are
full-matrix only, so CI ``--quick`` stays fast) next to their
independent-runs counterparts; the ``--quick`` CI gate covers the
thresholded-BFS sweep and the n=512 smoke cell at the same -30% threshold
as the single-run entries, and ``--write`` records the measured
sweep-vs-independent speedups under ``sweep_speedups``.

The shard-* workloads run the same matrices through the process-pool
executor (``repro.net.shard`` + ``repro.core.run_sweeps_sharded``,
DESIGN.md §14) with ``--jobs`` workers; the n=2048/n=4096 pairs are the
scale cells sharding unblocks.  Sharded aggregates must be byte-identical
to their serial twins — asserted in-run whenever both sides are measured —
while the shard-vs-serial wall ratios under ``sweep_speedups`` are
print-only evidence, never a ``--check`` gate (they depend on the host's
core count; see harness.py on reading them under drift).

Usage:
    python benchmarks/perf_regression.py            # run full matrix, print
    python benchmarks/perf_regression.py --quick    # CI subset
    python benchmarks/perf_regression.py --write    # refresh BENCH_core.json
    python benchmarks/perf_regression.py --check    # fail on regression
                                                    #   (>30% throughput drop
                                                    #    or any determinism
                                                    #    mismatch)
    python benchmarks/perf_regression.py \
        --workloads sync-bfs/cycle/256,tbfs-16      # substring-select the
                                                    #   matrix (the CI
                                                    #   protocol-bench step)
    python benchmarks/perf_regression.py --jobs 2 \
        --workloads "=shard-ms512-5x/cycle+grid/512,=sweep-ms512-5x/cycle+grid/512"
                                                    # '=name' selects exactly
                                                    #   one workload; the CI
                                                    #   sweep-shard job runs
                                                    #   this pair and dies
                                                    #   unless the sharded
                                                    #   digests equal the
                                                    #   serial run's
    python benchmarks/perf_regression.py \
        --profile tbfs-16/cycle/256                 # cProfile one workload,
                                                    #   print the top-N
                                                    #   cumulative/tottime
                                                    #   rows

Wall times on shared CI machines are noisy and CI runners are not the
machine that wrote the baseline; the gate therefore (a) uses best-of-N
messages/second (the most stable throughput proxy), (b) rescales the
committed baseline by a host-speed calibration loop recorded alongside it
(so a runner half as fast as the authoring host is held to half the
absolute floor), and (c) keeps a generous threshold on top.  Exact fields
(messages, outputs digest) are compared strictly — determinism does not get
a noise allowance.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.programs import bfs_spec, multi_bfs_spec  # noqa: E402
from repro.core import (  # noqa: E402
    SynchronizerSweep,
    ThresholdedBFSSweep,
    run_churn,
    run_sweeps_sharded,
    run_synchronized,
    run_thresholded_bfs,
)
from repro.net import topology  # noqa: E402
from repro.net.faults import FaultSchedule  # noqa: E402
from repro.net.delays import (  # noqa: E402
    AlternatingDelay,
    BimodalDelay,
    ConstantDelay,
    SlowEdgesDelay,
    UniformDelay,
)
from repro.net.shard import default_jobs, digest_outputs  # noqa: E402

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_core.json"
SEED = 2305  # arXiv number of the paper
DEFAULT_THRESHOLD = 0.30  # fail --check when msgs/sec drops by more than this

#: Worker count for the shard-* workloads, set from --jobs (None = one per
#: visible core).  The serial workloads never read it: jobs only ever
#: affects how the sharded cells are *executed*, never what they compute —
#: the shard-vs-serial digest assertion below enforces exactly that.
_JOBS: Optional[int] = None


def _effective_jobs() -> int:
    return _JOBS if _JOBS else default_jobs()

#: Wall time of ``run_synchronized(bfs_spec(0), cycle_graph(64), UniformDelay)``
#: at the seed revision (commit 1863e4f), measured on the same host with the
#: same best-of-N methodology used below.  The rebuilt engine is compared
#: against this to document the speedup (messages and outputs are
#: byte-identical between the two revisions).
SEED_REFERENCE = {
    "workload": "sync-bfs/cycle/64",
    "wall_best": 0.0988,
    "wall_median": 0.1018,
    "messages": 8272,
    # Interleaved A/B runs (seed worktree vs this tree, alternating in the
    # same minute to cancel host-load drift) measured 3.4-3.9x at n=64 and
    # ~4.3x at n=256.  The ratio computed per --write run below compares
    # against wall clocks from different load windows and is noisier.
    "speedup_interleaved_ab": "3.4-3.9x (n=64), ~4.3x (n=256)",
}


# One digest implementation for the serial and sharded paths (the shard
# workers digest outputs in-worker and ship only the 16-hex string back);
# pinned equal by tests/test_shard.py.
_digest = digest_outputs


def _calibrate(reps: int = 3) -> float:
    """Host-speed proxy (ops/sec): a fixed pure-Python workload shaped like
    the event loop (dict/heap traffic plus float arithmetic), best of N."""
    import heapq

    def spin():
        heap = []
        d = {}
        acc = 0.0
        for i in range(60_000):
            heapq.heappush(heap, ((i * 0.618) % 1.0, i))
            d[i & 1023] = i
            acc += (i * 0.6180339887498949) % 1.0
            if i & 1:
                heapq.heappop(heap)
        return acc

    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        spin()
        best = min(best, time.perf_counter() - t0)
    return 60_000 / best


def _run_synchronized(graph):
    return run_synchronized(graph, bfs_spec(0), UniformDelay(seed=SEED))


def _run_tbfs(graph, threshold):
    outcome = run_thresholded_bfs(graph, 0, threshold, UniformDelay(seed=SEED))
    return outcome.result


class _ChurnResult:
    """Result-shaped view of a ChurnOutcome for ``_record_entry``:
    ``messages`` counts both passes (degrade + rebuild), so the rebuild
    cell's determinism entry pins the second pass too."""

    def __init__(self, outcome):
        self.messages = outcome.total_messages
        self.events_fired = outcome.events_fired
        self.outputs = outcome.outputs


def _run_churn_links(graph):
    # Link churn only (5% seeded down intervals, no crashes): the --quick
    # smoke cell for the fault path.  Down intervals defer but never lose,
    # so the outputs digest must equal the fault-free sync-bfs digest at
    # the same size — the determinism gate pins exactly that.
    faults = FaultSchedule(seed=SEED, down_rate=0.05)
    return _ChurnResult(run_churn(
        graph, bfs_spec, UniformDelay(seed=SEED), faults, mode="degrade"))


def _run_churn_mode(mode):
    def run(graph):
        faults = FaultSchedule(seed=SEED, crash_rate=0.1, protect=(0,))
        return _ChurnResult(run_churn(
            graph, bfs_spec, UniformDelay(seed=SEED), faults, mode=mode))
    return run


def _run_churn_flap(graph):
    # Flapping links (recurrent mode, DESIGN.md §15): every seeded down
    # interval re-draws forever instead of healing once.  Recurrent churn
    # still only defers — the digest pins the fault-free outputs and the
    # message count pins zero retransmission overhead.
    faults = FaultSchedule(seed=SEED, down_rate=0.05, recurrent=True)
    return _ChurnResult(run_churn(
        graph, bfs_spec, UniformDelay(seed=SEED), faults, mode="degrade"))


def _run_churn_rejoin(graph):
    # Crash + certain re-join (DESIGN.md §15): every crashed node returns
    # after a seeded delay and is readmitted by its neighbors.  The CI
    # protocol-bench rejoin smoke cell — messages and outputs pin the
    # whole prune → detect → readmit → re-answer cycle.
    faults = FaultSchedule(
        seed=SEED, crash_rate=0.1, rejoin_rate=1.0, protect=(0,))
    return _ChurnResult(run_churn(
        graph, bfs_spec, UniformDelay(seed=SEED), faults, mode="degrade"))


def _sweep_models():
    """The 5-model family the sweep benchmarks replay (all with pair
    streams; fresh instances per call so per-model caches start cold, as an
    independent run's would)."""
    return (
        ConstantDelay(),
        UniformDelay(seed=SEED),
        BimodalDelay(seed=SEED),
        SlowEdgesDelay(seed=SEED),
        AlternatingDelay(seed=SEED),
    )


class _SweepAggregate:
    """Result-shaped aggregate over every (graph, model) replay of a sweep.

    ``outputs`` maps (graph index, model index) to that replay's message
    count and output digest, so the determinism gate pins every replay."""

    def __init__(self):
        self.messages = 0
        self.events_fired = 0
        self.outputs = {}

    def add(self, key, result):
        self.messages += result.messages
        self.events_fired += result.events_fired
        self.outputs[key] = (result.messages, _digest(result.outputs))

    def add_summary(self, key, summary):
        """Fold a shard-worker :class:`repro.net.shard.CellSummary` — same
        fields, with the per-cell digest computed in-worker, so a sharded
        aggregate is byte-identical to the serial aggregate over the same
        cells."""
        self.messages += summary.messages
        self.events_fired += summary.events_fired
        self.outputs[key] = (summary.messages, summary.outputs_digest)


def _run_sweep_tbfs(_):
    # Fresh graphs per call: the timed reps include the sweep's one-time
    # setup (covers, registry, infos), which is the whole point of the
    # comparison against the independent runs below.  ``run_all`` replays
    # the family under one sweep-wide GC pause (DESIGN.md §8).
    agg = _SweepAggregate()
    for gi, graph in enumerate((topology.cycle_graph(256),
                                topology.grid_graph(16, 16))):
        sweep = ThresholdedBFSSweep(graph, 0, 16)
        for mi, outcome in enumerate(sweep.run_all(_sweep_models())):
            agg.add((gi, mi), outcome.result)
    return agg


def _run_sweep_sync(_):
    agg = _SweepAggregate()
    for gi, graph in enumerate((topology.cycle_graph(256),
                                topology.grid_graph(16, 16))):
        sweep = SynchronizerSweep(graph, bfs_spec(0))
        for mi, result in enumerate(sweep.run_all(_sweep_models())):
            agg.add((gi, mi), result)
    return agg


def _run_sweep_ms512(_):
    # n=512 cells with a sampled initiator set (16 evenly spaced sources):
    # multi-source BFS keeps the pulse bound near n/32 and the message
    # volume near-linear, where the all-initiator flood-max program costs
    # Θ(n²) on the cycle (ROADMAP).
    agg = _SweepAggregate()
    for gi, graph in enumerate((topology.cycle_graph(512),
                                topology.grid_graph(16, 32))):
        sweep = SynchronizerSweep(graph, multi_bfs_spec(16))
        for mi, result in enumerate(sweep.run_all(_sweep_models())):
            agg.add((gi, mi), result)
    return agg


def _run_sweep_ms1024(_):
    # n=1024 subsampled measurement cells (ROADMAP: the size axis beyond
    # 512): 32 evenly spaced sources keep the initiator stride — and so the
    # pulse bound (~n/2k = 16) and per-cell message volume — aligned with
    # the ms512 cells, so the two sizes chart a clean scaling curve.  Full
    # matrix only: these cells are multi-second, far too slow for the CI
    # --quick gate.
    agg = _SweepAggregate()
    for gi, graph in enumerate((topology.cycle_graph(1024),
                                topology.grid_graph(32, 32))):
        sweep = SynchronizerSweep(graph, multi_bfs_spec(32))
        for mi, result in enumerate(sweep.run_all(_sweep_models())):
            agg.add((gi, mi), result)
    return agg


def _run_sweep_ms2048(_):
    # n=2048 cells (ROADMAP: the scale regime sharding unblocks): 64 evenly
    # spaced sources keep the initiator stride at 32 — and so the pulse
    # bound and per-cell traffic shape — aligned with the ms512/ms1024
    # cells, charting one clean scaling curve.  Serial half of the ms2048
    # shard-vs-serial pair; full matrix only.
    agg = _SweepAggregate()
    for gi, graph in enumerate((topology.cycle_graph(2048),
                                topology.grid_graph(32, 64))):
        sweep = SynchronizerSweep(graph, multi_bfs_spec(64))
        for mi, result in enumerate(sweep.run_all(_sweep_models())):
            agg.add((gi, mi), result)
    return agg


def _run_sweep_ms4096(_):
    # n=4096, stride-32 again (128 sources).  Serial half of the ms4096
    # pair; full matrix only — each rep is the better part of a minute.
    agg = _SweepAggregate()
    for gi, graph in enumerate((topology.cycle_graph(4096),
                                topology.grid_graph(64, 64))):
        sweep = SynchronizerSweep(graph, multi_bfs_spec(128))
        for mi, result in enumerate(sweep.run_all(_sweep_models())):
            agg.add((gi, mi), result)
    return agg


def _run_sharded_ms(n_sources, builds):
    """Sharded multi-source sweep runner (DESIGN.md §14).

    Setup (graphs, covers, registries, pulse bounds, bound process classes)
    happens in the parent and is included in the wall, exactly as in the
    serial sweep cells; one pool then spans all ``graphs x models`` cells so
    workers stay busy across graph boundaries.  The aggregate folds the
    workers' summaries in canonical (graph, model) order — byte-identical
    to the serial aggregate, which `_check_shard_digests` asserts whenever
    both sides of a pair were measured.
    """
    def run(_):
        sweeps = [
            SynchronizerSweep(build(), multi_bfs_spec(n_sources))
            for build in builds
        ]
        per_sweep = run_sweeps_sharded(
            sweeps, _sweep_models(), jobs=_effective_jobs()
        )
        agg = _SweepAggregate()
        for gi, summaries in enumerate(per_sweep):
            for mi, summary in enumerate(summaries):
                agg.add_summary((gi, mi), summary)
        return agg
    return run


_run_sharded_ms512 = _run_sharded_ms(
    16, (lambda: topology.cycle_graph(512), lambda: topology.grid_graph(16, 32)))
_run_sharded_ms2048 = _run_sharded_ms(
    64, (lambda: topology.cycle_graph(2048), lambda: topology.grid_graph(32, 64)))
_run_sharded_ms4096 = _run_sharded_ms(
    128, (lambda: topology.cycle_graph(4096), lambda: topology.grid_graph(64, 64)))


def _run_independent_tbfs(_):
    # Independent runs: a fresh graph per model defeats every per-graph
    # cache, so each run pays cover/registry/info setup — what five separate
    # experiment invocations would pay.
    agg = _SweepAggregate()
    for gi, build in enumerate((lambda: topology.cycle_graph(256),
                                lambda: topology.grid_graph(16, 16))):
        for mi, model in enumerate(_sweep_models()):
            agg.add((gi, mi), run_thresholded_bfs(build(), 0, 16, model).result)
    return agg


def _run_independent_sync(_):
    agg = _SweepAggregate()
    for gi, build in enumerate((lambda: topology.cycle_graph(256),
                                lambda: topology.grid_graph(16, 16))):
        for mi, model in enumerate(_sweep_models()):
            agg.add((gi, mi), run_synchronized(build(), bfs_spec(0), model))
    return agg


def _run_independent_ms512(_):
    agg = _SweepAggregate()
    for gi, build in enumerate((lambda: topology.cycle_graph(512),
                                lambda: topology.grid_graph(16, 32))):
        for mi, model in enumerate(_sweep_models()):
            agg.add((gi, mi), run_synchronized(build(), multi_bfs_spec(16), model))
    return agg


def _run_independent_ms1024(_):
    agg = _SweepAggregate()
    for gi, build in enumerate((lambda: topology.cycle_graph(1024),
                                lambda: topology.grid_graph(32, 32))):
        for mi, model in enumerate(_sweep_models()):
            agg.add((gi, mi), run_synchronized(build(), multi_bfs_spec(32), model))
    return agg


# (name, graph builder, runner, in_quick, reps override or None).
WORKLOADS = [
    ("sync-bfs/cycle/64", lambda: topology.cycle_graph(64), _run_synchronized,
     True, None),
    ("sync-bfs/grid/256", lambda: topology.grid_graph(16, 16), _run_synchronized,
     True, None),
    ("sync-bfs/cycle/256", lambda: topology.cycle_graph(256), _run_synchronized,
     False, None),
    ("sync-bfs/regular/256",
     lambda: topology.random_regular_graph(256, 4, seed=1), _run_synchronized,
     False, None),
    ("tbfs-16/cycle/256",
     lambda: topology.cycle_graph(256), lambda g: _run_tbfs(g, 16), False, None),
    # Churn cells (DESIGN.md §11): the link-only cell runs sync-bfs@256
    # under 5% seeded link churn and doubles as the CI --quick smoke test
    # for the whole fault path; the n=128 crash cells pin degrade and
    # rebuild (rebuild's messages include the second, clean pass).
    ("churn-sync-bfs/cycle/256", lambda: topology.cycle_graph(256),
     _run_churn_links, True, None),
    ("churn-degrade/cycle/128", lambda: topology.cycle_graph(128),
     _run_churn_mode("degrade"), False, None),
    ("churn-rebuild/cycle/128", lambda: topology.cycle_graph(128),
     _run_churn_mode("rebuild"), False, None),
    # Dynamic-network cells (DESIGN.md §15): reanchor sits between degrade
    # and rebuild in the cost table; churn-flap pins recurrent link churn
    # (deferral forever, never loss); rejoin-degrade is the CI smoke cell
    # for the crash → detect → readmit → re-answer cycle.
    ("churn-reanchor/cycle/128", lambda: topology.cycle_graph(128),
     _run_churn_mode("reanchor"), False, None),
    ("churn-flap/cycle/128", lambda: topology.cycle_graph(128),
     _run_churn_flap, False, None),
    ("rejoin-degrade/cycle/128", lambda: topology.cycle_graph(128),
     _run_churn_rejoin, False, None),
    # 5-delay-model sweeps at n=256 on cycle+grid: the sweep engine builds
    # covers/registry/infos once per graph and replays per model.  Their
    # "independent-*" counterparts run the same 10 (graph, model) cells with
    # cold per-graph caches; the speedup between the two is recorded by
    # --write under "sweep_speedups".
    ("sweep-tbfs16-5x/cycle+grid/256", lambda: None, _run_sweep_tbfs,
     True, 3),
    # The sync pair runs best-of-5 (symmetric on both sides): the speedup
    # between two multi-second walls needs more min-filtering against host
    # noise than the CI-gated cells can afford.
    ("sweep-sync-5x/cycle+grid/256", lambda: None, _run_sweep_sync,
     False, 5),
    ("independent-tbfs16-5x/cycle+grid/256", lambda: None, _run_independent_tbfs,
     False, 3),
    ("independent-sync-5x/cycle+grid/256", lambda: None, _run_independent_sync,
     False, 5),
    # n=512 sweep cells (sampled initiator sets — see _run_sweep_ms512).
    # The sweep cell doubles as the CI --quick smoke test for the large-n
    # regime; its independent counterpart stays in the full matrix only.
    ("sweep-ms512-5x/cycle+grid/512", lambda: None, _run_sweep_ms512,
     True, 3),
    ("independent-ms512-5x/cycle+grid/512", lambda: None, _run_independent_ms512,
     False, 3),
    # n=1024 subsampled measurement cells (multi_bfs_spec(32), sampled
    # initiators) — full matrix only, so the CI --quick gate stays fast;
    # best-of-2 because each side is many seconds of wall.
    ("sweep-ms1024-5x/cycle+grid/1024", lambda: None, _run_sweep_ms1024,
     False, 2),
    ("independent-ms1024-5x/cycle+grid/1024", lambda: None,
     _run_independent_ms1024, False, 2),
    # Sharded executor cells (DESIGN.md §14): the same (graph, model)
    # matrices run through the process-pool executor with --jobs workers.
    # shard-ms512 reuses the committed sweep-ms512 cells, so its digest must
    # equal that entry's byte-for-byte — the cheap CI equivalence cell the
    # sweep-shard job gates with --jobs 2.  The ms2048/ms4096 pairs are the
    # scale cells sharding unblocks; their shard-vs-serial wall ratios are
    # recorded under sweep_speedups (print-only on --check — wall ratios
    # never gate, per the host-drift policy).  Full matrix only.
    ("shard-ms512-5x/cycle+grid/512", lambda: None, _run_sharded_ms512,
     False, 3),
    ("sweep-ms2048-5x/cycle+grid/2048", lambda: None, _run_sweep_ms2048,
     False, 2),
    ("shard-ms2048-5x/cycle+grid/2048", lambda: None, _run_sharded_ms2048,
     False, 2),
    ("sweep-ms4096-5x/cycle+grid/4096", lambda: None, _run_sweep_ms4096,
     False, 1),
    ("shard-ms4096-5x/cycle+grid/4096", lambda: None, _run_sharded_ms4096,
     False, 1),
]

#: Sweep-vs-independent workload pairs recorded under ``sweep_speedups``:
#: kind -> (sweep entry, independent entry).
SWEEP_PAIRS = {
    "tbfs16": ("sweep-tbfs16-5x/cycle+grid/256",
               "independent-tbfs16-5x/cycle+grid/256"),
    "sync": ("sweep-sync-5x/cycle+grid/256",
             "independent-sync-5x/cycle+grid/256"),
    "ms512": ("sweep-ms512-5x/cycle+grid/512",
              "independent-ms512-5x/cycle+grid/512"),
    "ms1024": ("sweep-ms1024-5x/cycle+grid/1024",
               "independent-ms1024-5x/cycle+grid/1024"),
}

#: Shard-vs-serial pairs (DESIGN.md §14): kind -> (sharded entry, serial
#: entry).  Timed interleaved like SWEEP_PAIRS so host drift cancels out of
#: the ratio; whenever both sides of a pair are measured in one invocation
#: their aggregate digests must be byte-identical (`_check_shard_digests` —
#: the executor must never change what a sweep computes).  Ratios land
#: under ``sweep_speedups`` with the worker count that produced them.
SHARD_PAIRS = {
    "ms512shard": ("shard-ms512-5x/cycle+grid/512",
                   "sweep-ms512-5x/cycle+grid/512"),
    "ms2048": ("shard-ms2048-5x/cycle+grid/2048",
               "sweep-ms2048-5x/cycle+grid/2048"),
    "ms4096": ("shard-ms4096-5x/cycle+grid/4096",
               "sweep-ms4096-5x/cycle+grid/4096"),
}


def _record_entry(results: dict, name: str, walls: list, result) -> None:
    best = min(walls)
    results[name] = {
        "wall_best": round(best, 5),
        "wall_median": round(statistics.median(walls), 5),
        "messages": result.messages,
        "events_fired": result.events_fired,
        "msgs_per_sec": round(result.messages / best) if best else 0,
        "outputs_digest": _digest(result.outputs),
    }
    print(f"{name:36s} best {best*1e3:8.1f} ms   "
          f"{results[name]['msgs_per_sec']:>9,} msgs/s   "
          f"{result.messages:>7} msgs   {results[name]['outputs_digest']}")


def profile_workload(name: str, top: int = 25) -> int:
    """cProfile one workload and print the top-``top`` rows.

    The workload is warmed once (covers, registries, pulse bounds and
    skeletons come from per-graph caches, exactly as the timed reps see
    them), then a single run is profiled.  Output is printed twice —
    sorted by *cumulative* time (who is responsible, including callees:
    the protocol-layer hot-spot view DESIGN.md §9/§10 cite) and by
    *tottime* (whose own bytecode burns the time: the flattening-target
    view).  See ``benchmarks/harness.py`` for how to read the numbers on
    a host with load drift.
    """
    import cProfile
    import pstats

    matches = [w for w in WORKLOADS if name in w[0]]
    if not matches:
        known = ", ".join(w[0] for w in WORKLOADS)
        print(f"ERROR: no workload matches {name!r}; known: {known}")
        return 1
    if len(matches) > 1:
        print(f"NOTE: {name!r} matches {len(matches)} workloads;"
              f" profiling {matches[0][0]!r}")
    wl_name, build, runner, _, _ = matches[0]
    graph = build()
    runner(graph)  # warm the pure-structure caches
    profiler = cProfile.Profile()
    profiler.enable()
    runner(graph)
    profiler.disable()
    print(f"== cProfile: {wl_name} (one warm run) ==")
    stats = pstats.Stats(profiler)
    for sort in ("cumulative", "tottime"):
        print(f"-- top {top} by {sort} --")
        stats.sort_stats(sort).print_stats(top)
    return 0


def _workload_matches(pat: str, name: str) -> bool:
    """One --workloads pattern against one matrix name.

    ``=name`` demands an exact match — the sweep-shard CI job selects
    ``=shard-ms512-5x/...`` without dragging in every other name the bare
    substring would also hit; anything else keeps the original substring
    semantics (the protocol-bench step's selection syntax is unchanged).
    """
    if pat.startswith("="):
        return name == pat[1:]
    return pat in name


def measure(quick: bool, reps: int = 5, only: Optional[list] = None) -> dict:
    """Time the workload matrix.

    The sweep-vs-independent pairs (``SWEEP_PAIRS``) are timed with
    *interleaved* reps — sweep, independent, sweep, independent, ... — so
    host-load drift on shared machines hits both sides of each recorded
    speedup equally (the same trick as the seed-reference interleaved
    A/B); a load spike then inflates both walls instead of silently
    biasing the ratio.  Everything else runs rep-by-rep as before.
    """
    results = {}
    selected = {}
    for name, build, runner, in_quick, reps_override in WORKLOADS:
        if only is not None:
            # Pattern selection (the CI protocol-bench / sweep-shard
            # steps): --quick does not further filter an explicit
            # selection.
            if not any(_workload_matches(pat, name) for pat in only):
                continue
        elif quick and not in_quick:
            continue
        selected[name] = (build, runner, reps_override or reps)
    interleaved = {}
    for sweep_name, indep_name in (
        list(SWEEP_PAIRS.values()) + list(SHARD_PAIRS.values())
    ):
        # A workload joins at most one interleaved pair per invocation
        # (sweep-ms512 partners independent-ms512 in the full matrix, but
        # partners shard-ms512 when the sweep-shard CI selection names only
        # those two): first pair with both members selected wins.
        if (sweep_name in selected and indep_name in selected
                and sweep_name not in interleaved
                and indep_name not in interleaved):
            interleaved[sweep_name] = indep_name
            interleaved[indep_name] = sweep_name
    for name, (build, runner, n_reps) in selected.items():
        if name in interleaved:
            partner = interleaved[name]
            if partner in results or name in results:
                continue  # the pair was timed when its first member came up
            p_build, p_runner, p_reps = selected[partner]
            graph = build()
            p_graph = p_build()
            runner(graph)  # warm caches (covers, pulse bounds, infos)
            p_runner(p_graph)
            walls, p_walls = [], []
            result = p_result = None
            for _ in range(max(n_reps, p_reps)):
                t0 = time.perf_counter()
                result = runner(graph)
                walls.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                p_result = p_runner(p_graph)
                p_walls.append(time.perf_counter() - t0)
            _record_entry(results, name, walls, result)
            _record_entry(results, partner, p_walls, p_result)
            continue
        graph = build()
        runner(graph)  # warm caches (covers, pulse bounds, infos)
        walls = []
        result = None
        for _ in range(n_reps):
            t0 = time.perf_counter()
            result = runner(graph)
            walls.append(time.perf_counter() - t0)
        _record_entry(results, name, walls, result)
    return results


def check(current: dict, committed: dict, threshold: float) -> int:
    """Compare ``current`` against the committed baseline.

    Degrades gracefully on incomplete baselines (fresh clone, partial
    ``--write``): a workload entry that is missing, lacks a field, or
    records a zero/absent floor is skipped with a warning rather than
    dying on a ``KeyError``/``ZeroDivisionError``.  The exit code is
    nonzero only for real regressions — determinism mismatches or a
    throughput drop beyond ``threshold``.
    """
    # Rescale the committed floors by relative host speed, so the absolute
    # msgs/sec recorded on the authoring machine transfers to slower (or
    # faster) CI runners.
    base_cal = committed.get("calibration_ops_per_sec")
    if base_cal:
        scale = _calibrate() / base_cal
        print(f"host speed vs baseline host: x{scale:.2f}")
    else:
        if base_cal is not None:
            print("WARNING: baseline calibration is 0; floors not rescaled")
        scale = 1.0
    failures = []
    for name, entry in current.items():
        base = committed.get("workloads", {}).get(name)
        if base is None:
            print(f"NOTE: {name} not in committed baseline, skipping")
            continue
        base_messages = base.get("messages")
        if base_messages is None:
            print(f"WARNING: {name}: baseline lacks 'messages', skipping")
        elif entry["messages"] != base_messages:
            failures.append(
                f"{name}: message count changed {base_messages} -> {entry['messages']}"
            )
        base_digest = base.get("outputs_digest")
        if base_digest is None:
            print(f"WARNING: {name}: baseline lacks 'outputs_digest', skipping")
        elif entry["outputs_digest"] != base_digest:
            failures.append(
                f"{name}: outputs digest changed {base_digest}"
                f" -> {entry['outputs_digest']}"
            )
        base_rate = base.get("msgs_per_sec")
        if not base_rate:
            # 0.0 or missing: a sub-resolution wall clock or a partial
            # --write recorded no meaningful floor to hold this host to.
            print(f"WARNING: {name}: baseline records no throughput floor,"
                  " skipping throughput check")
            continue
        floor = base_rate * scale * (1.0 - threshold)
        if entry["msgs_per_sec"] < floor:
            failures.append(
                f"{name}: throughput regressed {base_rate:,} ->"
                f" {entry['msgs_per_sec']:,} msgs/s"
                f" (host-scaled floor {floor:,.0f})"
            )
    if failures:
        print("\nPERF REGRESSION CHECK FAILED:")
        for f in failures:
            print(" -", f)
        return 1
    print("\nperf regression check passed")
    return 0


def _sweep_speedups(current: dict) -> dict:
    """Sweep-vs-independent ratios, when both sides were measured.

    The two entries cover the same 10 (graph, model) cells — the sweep with
    one shared setup per graph, the independent runs with cold caches — so
    their message totals and per-cell digests must agree exactly, and the
    wall ratio is the amortization win.
    """
    out = {}
    for kind, (sweep_name, indep_name) in SWEEP_PAIRS.items():
        sweep = current.get(sweep_name)
        indep = current.get(indep_name)
        if sweep and indep:
            if sweep["outputs_digest"] != indep["outputs_digest"]:
                raise AssertionError(
                    f"{kind}: sweep and independent runs diverged"
                )
            if not sweep["wall_best"]:
                print(f"WARNING: {kind}: sweep wall clock below resolution,"
                      " speedup not recorded")
                continue
            out[kind] = {
                "independent_wall_best": indep["wall_best"],
                "sweep_wall_best": sweep["wall_best"],
                "speedup": round(indep["wall_best"] / sweep["wall_best"], 2),
            }
    out.update(_shard_ratios(current))
    return out


def _check_shard_digests(current: dict) -> None:
    """Sharded and serial runs of the same cells must agree byte-for-byte.

    Runs after *every* measurement (not just --write): whenever both sides
    of a SHARD_PAIRS pair were measured, their aggregate digests — one
    16-hex digest per (graph, model) cell, folded through `_record_entry` —
    and message totals must be identical, or the invocation dies.  This is
    the assertion the CI sweep-shard job leans on.
    """
    for kind, (shard_name, serial_name) in SHARD_PAIRS.items():
        shard_e = current.get(shard_name)
        serial_e = current.get(serial_name)
        if not (shard_e and serial_e):
            continue
        if (shard_e["outputs_digest"] != serial_e["outputs_digest"]
                or shard_e["messages"] != serial_e["messages"]):
            raise AssertionError(
                f"{kind}: sharded run diverged from serial"
                f" (digest {shard_e['outputs_digest']} vs"
                f" {serial_e['outputs_digest']}, messages"
                f" {shard_e['messages']} vs {serial_e['messages']})"
            )


def _shard_ratios(current: dict) -> dict:
    """Shard-vs-serial wall ratios for the measured SHARD_PAIRS.

    Print-only evidence, never a --check gate (host-drift policy): a ratio
    is meaningful on a multi-core host and ~1.0 or below on the 1-2 core
    runners CI uses.  Digest equality is enforced separately (and
    unconditionally) by `_check_shard_digests`.
    """
    out = {}
    for kind, (shard_name, serial_name) in SHARD_PAIRS.items():
        shard_e = current.get(shard_name)
        serial_e = current.get(serial_name)
        if shard_e and serial_e and shard_e["wall_best"]:
            out[kind] = {
                "serial_wall_best": serial_e["wall_best"],
                "shard_wall_best": shard_e["wall_best"],
                "speedup": round(
                    serial_e["wall_best"] / shard_e["wall_best"], 2
                ),
                "jobs": _effective_jobs(),
            }
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI subset")
    parser.add_argument("--write", action="store_true", help="update BENCH_core.json")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed BENCH_core.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the shard-* workloads (default: one per"
             " visible core; 1 short-circuits to the in-process loop)."
             " Serial workloads are unaffected — jobs can change walls,"
             " never digests")
    parser.add_argument(
        "--workloads", type=str, default=None, metavar="PAT[,PAT...]",
        help="run only workloads whose name contains one of the given"
             " substrings (e.g. 'sync-bfs/cycle/256,tbfs-16' — the CI"
             " protocol-bench selection); a pattern starting with '='"
             " demands an exact name match (the CI sweep-shard selection)")
    parser.add_argument(
        "--profile", type=str, default=None, metavar="WORKLOAD",
        help="cProfile one workload (substring match against the matrix"
             " names) and print the top rows by cumulative and tottime;"
             " exits without timing/checking")
    parser.add_argument("--profile-top", type=int, default=25,
                        help="rows per table for --profile (default 25)")
    args = parser.parse_args()

    if args.profile is not None:
        return profile_workload(args.profile, top=args.profile_top)

    global _JOBS
    if args.jobs is not None and args.jobs < 1:
        print(f"ERROR: --jobs must be >= 1, got {args.jobs}")
        return 1
    _JOBS = args.jobs

    only = args.workloads.split(",") if args.workloads else None
    if only is not None:
        # Every pattern must select something: a stale name in the CI
        # protocol-bench step must fail the job, not gate zero workloads
        # and pass vacuously.
        names = [w[0] for w in WORKLOADS]
        dead = [pat for pat in only
                if not any(_workload_matches(pat, n) for n in names)]
        if dead:
            print(f"ERROR: --workloads pattern(s) {dead} match no workload;"
                  f" known: {', '.join(names)}")
            return 1
    if only is not None and args.write:
        # A filtered --write would rewrite BENCH_core.json with only the
        # selected subset: every other committed entry (and most of
        # sweep_speedups) would vanish, and check() would then silently
        # skip them as "not in committed baseline".
        print("ERROR: --write with --workloads would gut the committed"
              " baseline; run --write on the full matrix (or --quick)")
        return 1
    current = measure(quick=args.quick, reps=args.reps, only=only)

    # Whenever a shard cell and its serial twin were both measured, their
    # digests must be byte-identical — this dies otherwise (the CI
    # sweep-shard assertion).  Ratios are printed as evidence but never
    # gate: wall clocks drift, digests don't.
    _check_shard_digests(current)
    for kind, ratio in _shard_ratios(current).items():
        print(f"shard speedup [{kind}] x{ratio['speedup']:.2f}"
              f"  (serial {ratio['serial_wall_best']*1e3:.1f} ms ->"
              f" shard {ratio['shard_wall_best']*1e3:.1f} ms,"
              f" jobs={ratio['jobs']})")

    if args.check:
        if not BENCH_PATH.exists():
            # The baseline is committed, so a missing file means a broken
            # checkout or path refactor — fail loudly rather than letting
            # the CI gate silently pass with nothing to check against.
            # (Partial/zero baselines are tolerated inside check().)
            print("ERROR: no committed BENCH_core.json; the perf gate has"
                  " nothing to check against")
            return 1
        committed = json.loads(BENCH_PATH.read_text())
        return check(current, committed, args.threshold)

    if args.write:
        acceptance = current.get(SEED_REFERENCE["workload"])
        payload = {
            "methodology": (
                f"best of {args.reps} warm runs per workload; UniformDelay"
                f" seed {SEED}; msgs_per_sec = messages / wall_best; --check"
                " rescales floors by calibration_ops_per_sec of the host;"
                " sweep-* workloads replay 5 delay models on cycle+grid at"
                " n=256 through the sweep engines (setup included),"
                " independent-* run the same cells with cold per-graph caches"
            ),
            "calibration_ops_per_sec": round(_calibrate()),
            "seed_reference": SEED_REFERENCE,
            "speedup_vs_seed_this_run": (
                round(SEED_REFERENCE["wall_best"] / acceptance["wall_best"], 2)
                if acceptance and acceptance["wall_best"] else None
            ),
            "sweep_speedups": _sweep_speedups(current),
            "workloads": current,
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
