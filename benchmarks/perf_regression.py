"""Performance-regression harness for the discrete-event core.

Measures wall time and throughput of the synchronizer stack on a fixed
workload matrix and records them in ``BENCH_core.json`` next to this script,
so every future change has a perf trajectory to beat.  Determinism is pinned
alongside speed: each entry stores the message count and a digest of the
node outputs, and ``--check`` fails on any mismatch (the engine must stay
byte-for-byte reproducible, not merely fast).

The matrix includes the 5-delay-model sweep workloads (cycle+grid at n=256,
setup included per rep) next to their independent-runs counterparts; the
``--quick`` CI gate covers the thresholded-BFS sweep at the same -30%
threshold as the single-run entries, and ``--write`` records the measured
sweep-vs-independent speedups under ``sweep_speedups``.

Usage:
    python benchmarks/perf_regression.py            # run full matrix, print
    python benchmarks/perf_regression.py --quick    # CI subset
    python benchmarks/perf_regression.py --write    # refresh BENCH_core.json
    python benchmarks/perf_regression.py --check    # fail on regression
                                                    #   (>30% throughput drop
                                                    #    or any determinism
                                                    #    mismatch)

Wall times on shared CI machines are noisy and CI runners are not the
machine that wrote the baseline; the gate therefore (a) uses best-of-N
messages/second (the most stable throughput proxy), (b) rescales the
committed baseline by a host-speed calibration loop recorded alongside it
(so a runner half as fast as the authoring host is held to half the
absolute floor), and (c) keeps a generous threshold on top.  Exact fields
(messages, outputs digest) are compared strictly — determinism does not get
a noise allowance.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.programs import bfs_spec  # noqa: E402
from repro.core import (  # noqa: E402
    SynchronizerSweep,
    ThresholdedBFSSweep,
    run_synchronized,
    run_thresholded_bfs,
)
from repro.net import topology  # noqa: E402
from repro.net.delays import (  # noqa: E402
    AlternatingDelay,
    BimodalDelay,
    ConstantDelay,
    SlowEdgesDelay,
    UniformDelay,
)

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_core.json"
SEED = 2305  # arXiv number of the paper
DEFAULT_THRESHOLD = 0.30  # fail --check when msgs/sec drops by more than this

#: Wall time of ``run_synchronized(bfs_spec(0), cycle_graph(64), UniformDelay)``
#: at the seed revision (commit 1863e4f), measured on the same host with the
#: same best-of-N methodology used below.  The rebuilt engine is compared
#: against this to document the speedup (messages and outputs are
#: byte-identical between the two revisions).
SEED_REFERENCE = {
    "workload": "sync-bfs/cycle/64",
    "wall_best": 0.0988,
    "wall_median": 0.1018,
    "messages": 8272,
    # Interleaved A/B runs (seed worktree vs this tree, alternating in the
    # same minute to cancel host-load drift) measured 3.4-3.9x at n=64 and
    # ~4.3x at n=256.  The ratio computed per --write run below compares
    # against wall clocks from different load windows and is noisier.
    "speedup_interleaved_ab": "3.4-3.9x (n=64), ~4.3x (n=256)",
}


def _digest(outputs) -> str:
    return hashlib.sha256(repr(sorted(outputs.items())).encode()).hexdigest()[:16]


def _calibrate(reps: int = 3) -> float:
    """Host-speed proxy (ops/sec): a fixed pure-Python workload shaped like
    the event loop (dict/heap traffic plus float arithmetic), best of N."""
    import heapq

    def spin():
        heap = []
        d = {}
        acc = 0.0
        for i in range(60_000):
            heapq.heappush(heap, ((i * 0.618) % 1.0, i))
            d[i & 1023] = i
            acc += (i * 0.6180339887498949) % 1.0
            if i & 1:
                heapq.heappop(heap)
        return acc

    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        spin()
        best = min(best, time.perf_counter() - t0)
    return 60_000 / best


def _run_synchronized(graph):
    return run_synchronized(graph, bfs_spec(0), UniformDelay(seed=SEED))


def _run_tbfs(graph, threshold):
    outcome = run_thresholded_bfs(graph, 0, threshold, UniformDelay(seed=SEED))
    return outcome.result


def _sweep_models():
    """The 5-model family the sweep benchmarks replay (all with pair
    streams; fresh instances per call so per-model caches start cold, as an
    independent run's would)."""
    return (
        ConstantDelay(),
        UniformDelay(seed=SEED),
        BimodalDelay(seed=SEED),
        SlowEdgesDelay(seed=SEED),
        AlternatingDelay(seed=SEED),
    )


class _SweepAggregate:
    """Result-shaped aggregate over every (graph, model) replay of a sweep.

    ``outputs`` maps (graph index, model index) to that replay's message
    count and output digest, so the determinism gate pins every replay."""

    def __init__(self):
        self.messages = 0
        self.events_fired = 0
        self.outputs = {}

    def add(self, key, result):
        self.messages += result.messages
        self.events_fired += result.events_fired
        self.outputs[key] = (result.messages, _digest(result.outputs))


def _run_sweep_tbfs(_):
    # Fresh graphs per call: the timed reps include the sweep's one-time
    # setup (covers, registry, infos), which is the whole point of the
    # comparison against the independent runs below.
    agg = _SweepAggregate()
    for gi, graph in enumerate((topology.cycle_graph(256),
                                topology.grid_graph(16, 16))):
        sweep = ThresholdedBFSSweep(graph, 0, 16)
        for mi, model in enumerate(_sweep_models()):
            agg.add((gi, mi), sweep.run(model).result)
    return agg


def _run_sweep_sync(_):
    agg = _SweepAggregate()
    for gi, graph in enumerate((topology.cycle_graph(256),
                                topology.grid_graph(16, 16))):
        sweep = SynchronizerSweep(graph, bfs_spec(0))
        for mi, model in enumerate(_sweep_models()):
            agg.add((gi, mi), sweep.run(model))
    return agg


def _run_independent_tbfs(_):
    # Independent runs: a fresh graph per model defeats every per-graph
    # cache, so each run pays cover/registry/info setup — what five separate
    # experiment invocations would pay.
    agg = _SweepAggregate()
    for gi, build in enumerate((lambda: topology.cycle_graph(256),
                                lambda: topology.grid_graph(16, 16))):
        for mi, model in enumerate(_sweep_models()):
            agg.add((gi, mi), run_thresholded_bfs(build(), 0, 16, model).result)
    return agg


def _run_independent_sync(_):
    agg = _SweepAggregate()
    for gi, build in enumerate((lambda: topology.cycle_graph(256),
                                lambda: topology.grid_graph(16, 16))):
        for mi, model in enumerate(_sweep_models()):
            agg.add((gi, mi), run_synchronized(build(), bfs_spec(0), model))
    return agg


# (name, graph builder, runner, in_quick, reps override or None).
WORKLOADS = [
    ("sync-bfs/cycle/64", lambda: topology.cycle_graph(64), _run_synchronized,
     True, None),
    ("sync-bfs/grid/256", lambda: topology.grid_graph(16, 16), _run_synchronized,
     True, None),
    ("sync-bfs/cycle/256", lambda: topology.cycle_graph(256), _run_synchronized,
     False, None),
    ("sync-bfs/regular/256",
     lambda: topology.random_regular_graph(256, 4, seed=1), _run_synchronized,
     False, None),
    ("tbfs-16/cycle/256",
     lambda: topology.cycle_graph(256), lambda g: _run_tbfs(g, 16), False, None),
    # 5-delay-model sweeps at n=256 on cycle+grid: the sweep engine builds
    # covers/registry/infos once per graph and replays per model.  Their
    # "independent-*" counterparts run the same 10 (graph, model) cells with
    # cold per-graph caches; the speedup between the two is recorded by
    # --write under "sweep_speedups".
    ("sweep-tbfs16-5x/cycle+grid/256", lambda: None, _run_sweep_tbfs,
     True, 3),
    ("sweep-sync-5x/cycle+grid/256", lambda: None, _run_sweep_sync,
     False, 3),
    ("independent-tbfs16-5x/cycle+grid/256", lambda: None, _run_independent_tbfs,
     False, 3),
    ("independent-sync-5x/cycle+grid/256", lambda: None, _run_independent_sync,
     False, 3),
]


def measure(quick: bool, reps: int = 5) -> dict:
    results = {}
    for name, build, runner, in_quick, reps_override in WORKLOADS:
        if quick and not in_quick:
            continue
        graph = build()
        runner(graph)  # warm caches (covers, pulse bounds, infos)
        walls = []
        result = None
        for _ in range(reps_override or reps):
            t0 = time.perf_counter()
            result = runner(graph)
            walls.append(time.perf_counter() - t0)
        best = min(walls)
        results[name] = {
            "wall_best": round(best, 5),
            "wall_median": round(statistics.median(walls), 5),
            "messages": result.messages,
            "events_fired": result.events_fired,
            "msgs_per_sec": round(result.messages / best),
            "outputs_digest": _digest(result.outputs),
        }
        print(f"{name:36s} best {best*1e3:8.1f} ms   "
              f"{results[name]['msgs_per_sec']:>9,} msgs/s   "
              f"{result.messages:>7} msgs   {results[name]['outputs_digest']}")
    return results


def check(current: dict, committed: dict, threshold: float) -> int:
    # Rescale the committed floors by relative host speed, so the absolute
    # msgs/sec recorded on the authoring machine transfers to slower (or
    # faster) CI runners.
    base_cal = committed.get("calibration_ops_per_sec")
    if base_cal:
        scale = _calibrate() / base_cal
        print(f"host speed vs baseline host: x{scale:.2f}")
    else:
        scale = 1.0
    failures = []
    for name, entry in current.items():
        base = committed.get("workloads", {}).get(name)
        if base is None:
            print(f"NOTE: {name} not in committed baseline, skipping")
            continue
        if entry["messages"] != base["messages"]:
            failures.append(
                f"{name}: message count changed {base['messages']} -> {entry['messages']}"
            )
        if entry["outputs_digest"] != base["outputs_digest"]:
            failures.append(
                f"{name}: outputs digest changed {base['outputs_digest']}"
                f" -> {entry['outputs_digest']}"
            )
        floor = base["msgs_per_sec"] * scale * (1.0 - threshold)
        if entry["msgs_per_sec"] < floor:
            failures.append(
                f"{name}: throughput regressed {base['msgs_per_sec']:,} ->"
                f" {entry['msgs_per_sec']:,} msgs/s"
                f" (host-scaled floor {floor:,.0f})"
            )
    if failures:
        print("\nPERF REGRESSION CHECK FAILED:")
        for f in failures:
            print(" -", f)
        return 1
    print("\nperf regression check passed")
    return 0


def _sweep_speedups(current: dict) -> dict:
    """Sweep-vs-independent ratios, when both sides were measured.

    The two entries cover the same 10 (graph, model) cells — the sweep with
    one shared setup per graph, the independent runs with cold caches — so
    their message totals and per-cell digests must agree exactly, and the
    wall ratio is the amortization win.
    """
    out = {}
    for kind in ("tbfs16", "sync"):
        sweep = current.get(f"sweep-{kind}-5x/cycle+grid/256")
        indep = current.get(f"independent-{kind}-5x/cycle+grid/256")
        if sweep and indep:
            if sweep["outputs_digest"] != indep["outputs_digest"]:
                raise AssertionError(
                    f"{kind}: sweep and independent runs diverged"
                )
            out[kind] = {
                "independent_wall_best": indep["wall_best"],
                "sweep_wall_best": sweep["wall_best"],
                "speedup": round(indep["wall_best"] / sweep["wall_best"], 2),
            }
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI subset")
    parser.add_argument("--write", action="store_true", help="update BENCH_core.json")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed BENCH_core.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument("--reps", type=int, default=5)
    args = parser.parse_args()

    current = measure(quick=args.quick, reps=args.reps)

    if args.check:
        if not BENCH_PATH.exists():
            print("no committed BENCH_core.json; nothing to check against")
            return 1
        committed = json.loads(BENCH_PATH.read_text())
        return check(current, committed, args.threshold)

    if args.write:
        acceptance = current.get(SEED_REFERENCE["workload"])
        payload = {
            "methodology": (
                f"best of {args.reps} warm runs per workload; UniformDelay"
                f" seed {SEED}; msgs_per_sec = messages / wall_best; --check"
                " rescales floors by calibration_ops_per_sec of the host;"
                " sweep-* workloads replay 5 delay models on cycle+grid at"
                " n=256 through the sweep engines (setup included),"
                " independent-* run the same cells with cold per-graph caches"
            ),
            "calibration_ops_per_sec": round(_calibrate()),
            "seed_reference": SEED_REFERENCE,
            "speedup_vs_seed_this_run": (
                round(SEED_REFERENCE["wall_best"] / acceptance["wall_best"], 2)
                if acceptance else None
            ),
            "sweep_speedups": _sweep_speedups(current),
            "workloads": current,
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
