"""E6 — Appendix A: α/β/γ versus the paper's synchronizer.

Analytical claims reproduced as measurements:

* α: time overhead O(1)/pulse but messages ≈ M(A) + 2·T·m — catastrophic for
  sparse programs (M(A) ≪ T·m);
* β: messages ≈ M(A) + O(T·n) but time overhead ≈ Θ(D)/pulse;
* γ: between the two;
* this paper: both overheads polylog — it must win on messages against α and
  on time against β as the sparse-program instance grows.

Workload: the token walk (one message per round — the paper's worst case
for per-round synchronizers) on a long path.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, record, run_once

from repro.analysis import Series
from repro.apps.programs import path_token_spec
from repro.baselines import run_alpha, run_beta, run_gamma
from repro.core import run_synchronized
from repro.net import run_synchronous, topology


def _sweep():
    series = Series(
        "E6: token walk on a path — who pays what (App. A)",
        ["n", "scheme", "messages", "time_to_output"],
    )
    results = {}
    for n in (24, 48, 96):
        g = topology.path_graph(n)
        spec = path_token_spec(0)
        sync = run_synchronous(g, spec)
        runs = {
            "alpha": run_alpha(g, spec, BENCH_DELAYS),
            "beta": run_beta(g, spec, BENCH_DELAYS),
            "gamma": run_gamma(g, spec, BENCH_DELAYS),
            "ours": run_synchronized(g, spec, BENCH_DELAYS),
        }
        for name, result in runs.items():
            assert result.outputs == sync.outputs
            series.add(n, name, result.messages, round(result.time_to_output, 1))
        results[n] = {k: (v.messages, v.time_to_output) for k, v in runs.items()}
    return series, results


def test_e06_baseline_comparison(benchmark):
    series, results = run_once(benchmark, _sweep)
    record(benchmark, series)
    sizes = sorted(results)
    # α's message growth is quadratic on the token walk (2·T·m ≈ 2n²); the
    # paper's synchronizer is Õ(n).  At laptop-simulable n the polylog
    # constants still dominate, so the *shape* claim is the measured trend:
    # ours/α message ratio strictly decreases toward the predicted crossover.
    msg_ratio = [results[n]["ours"][0] / results[n]["alpha"][0] for n in sizes]
    assert msg_ratio == sorted(msg_ratio, reverse=True), msg_ratio
    # Same for β on time: ours/β time ratio decreases, and ours is already
    # faster than β at every measured size.
    time_ratio = [results[n]["ours"][1] / results[n]["beta"][1] for n in sizes]
    assert time_ratio == sorted(time_ratio, reverse=True), time_ratio
    for n in sizes:
        assert results[n]["ours"][1] < results[n]["beta"][1]
    # Appendix-A orderings: α is fastest (O(1)/pulse); γ sits between α and β
    # on time while spending ~β-level messages.
    for n in sizes:
        assert results[n]["alpha"][1] < results[n]["gamma"][1] < results[n]["beta"][1]
