"""E4 — Corollary 1.4: deterministic asynchronous MST.

Claim: Õ(m) messages (time Õ(D + sqrt(n)) with Elkin's inner algorithm; our
substituted Borůvka runs O(log n) merge phases — DESIGN.md substitution 4 —
so we report the measured synchronous rounds alongside).  Correctness: the
asynchronous run outputs exactly the Kruskal MST.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, power_exponent, record, run_once

from repro.analysis import Series
from repro.apps import mst_edges_from_outputs, mst_spec, reference_mst
from repro.core import run_synchronized
from repro.net import run_synchronous, topology


def _sweep():
    series = Series(
        "E4: async MST (Cor 1.4)",
        ["n", "m", "T_sync", "M_sync", "M_async", "M_async/m", "time_async"],
    )
    for n in (16, 32, 64):
        g = topology.with_random_weights(
            topology.erdos_renyi_graph(n, 4.0 / n, seed=5), seed=n
        )
        sync = run_synchronous(g, mst_spec())
        result = run_synchronized(g, mst_spec(), BENCH_DELAYS)
        assert mst_edges_from_outputs(result.outputs) == reference_mst(g)
        series.add(
            n,
            g.num_edges,
            sync.rounds_total,
            sync.messages,
            result.messages,
            round(result.messages / g.num_edges, 1),
            round(result.time_to_output, 1),
        )
    return series


def test_e04_mst(benchmark):
    series = run_once(benchmark, _sweep)
    record(benchmark, series)
    ns = series.column("n")
    per_m = series.column("M_async/m")
    assert power_exponent(ns, per_m) < 1.0
