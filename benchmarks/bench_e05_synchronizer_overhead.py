"""E5 — Theorem 5.3: the synchronizer's overheads are polylog for any
event-driven program.

For each program in the suite we measure time-overhead(S) = T(A')/T(A) and
message-overhead(S) = M(A')/(M(A)+m) across n, and check the overheads'
growth in n is sub-linear (polylog regime), not linear.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, power_exponent, record, run_once

from repro.analysis import Series
from repro.apps.programs import bfs_spec, broadcast_echo_spec, flood_max_spec
from repro.core import run_synchronized
from repro.net import run_synchronous, topology

PROGRAMS = [
    ("sync-bfs", lambda: bfs_spec(0)),
    ("broadcast-echo", lambda: broadcast_echo_spec(0)),
    ("flood-max", flood_max_spec),
]


def _sweep(spec_name, spec_factory):
    series = Series(
        f"E5: synchronizer overheads for {spec_name} (Thm 5.3)",
        ["n", "T(A)", "M(A)", "T(A')", "M(A')", "time_overhead", "msg_overhead"],
    )
    for n in (16, 32, 64):
        g = topology.cycle_graph(n)
        spec = spec_factory()
        sync = run_synchronous(g, spec)
        result = run_synchronized(g, spec, BENCH_DELAYS)
        assert result.outputs == sync.outputs
        t_over = result.time_to_output / max(sync.rounds_to_output, 1)
        m_over = result.messages / (sync.messages + g.num_edges)
        series.add(
            n,
            sync.rounds_to_output,
            sync.messages,
            round(result.time_to_output, 1),
            result.messages,
            round(t_over, 2),
            round(m_over, 2),
        )
    return series


def test_e05_bfs_overheads(benchmark):
    series = run_once(benchmark, lambda: _sweep(*PROGRAMS[0]))
    record(benchmark, series)
    ns = series.column("n")
    assert power_exponent(ns, series.column("time_overhead")) < 0.8
    assert power_exponent(ns, series.column("msg_overhead")) < 0.8


def test_e05_echo_overheads(benchmark):
    series = run_once(benchmark, lambda: _sweep(*PROGRAMS[1]))
    record(benchmark, series)
    ns = series.column("n")
    assert power_exponent(ns, series.column("msg_overhead")) < 0.8


def test_e05_floodmax_overheads(benchmark):
    series = run_once(benchmark, lambda: _sweep(*PROGRAMS[2]))
    record(benchmark, series)
    ns = series.column("n")
    assert power_exponent(ns, series.column("msg_overhead")) < 0.8
