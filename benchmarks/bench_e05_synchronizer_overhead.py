"""E5 — Theorem 5.3: the synchronizer's overheads are polylog for any
event-driven program.

For each program in the suite we measure time-overhead(S) = T(A')/T(A) and
message-overhead(S) = M(A')/(M(A)+m) across n, and check the overheads'
growth in n is sub-linear (polylog regime), not linear.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, SWEEP_DELAYS, power_exponent, record, run_once

from repro.analysis import Series
from repro.apps.programs import bfs_spec, broadcast_echo_spec, flood_max_spec
from repro.core import SynchronizerSweep
from repro.net import run_synchronous, topology
from repro.net.shard import summarize

# Per-program sweep sizes: the rebuilt event engine (see DESIGN.md §6)
# makes n=256 routine for single-initiator programs; flood-max (every node
# initiates, Theta(n^2) messages on a cycle) is capped at 128 to stay inside
# the CI budget.
PROGRAMS = [
    ("sync-bfs", lambda: bfs_spec(0), (32, 64, 128, 256)),
    ("broadcast-echo", lambda: broadcast_echo_spec(0), (32, 64, 128, 256)),
    ("flood-max", flood_max_spec, (32, 64, 128)),
]

#: Topology families swept at n≈256 for the BFS program (the paper's
#: overheads are topology-uniform; expanders exercise the low-diameter
#: regime, grids the high-diameter one).
FAMILIES = {
    "cycle": lambda n: topology.cycle_graph(n),
    "grid": lambda n: topology.grid_graph(
        max(2, round(n ** 0.5)), max(2, round(n ** 0.5))
    ),
    "expander": lambda n: topology.random_regular_graph(n, 4, seed=1),
}


def _sweep(spec_name, spec_factory, sizes, family="cycle"):
    series = Series(
        f"E5: synchronizer overheads for {spec_name} on {family} (Thm 5.3)",
        ["n", "T(A)", "M(A)", "T(A')", "M(A')", "time_overhead", "msg_overhead"],
    )
    for n in sizes:
        g = FAMILIES[family](n)
        spec = spec_factory()
        sync = run_synchronous(g, spec)
        result = SynchronizerSweep(g, spec).run(BENCH_DELAYS)
        assert result.outputs == sync.outputs
        t_over = result.time_to_output / max(sync.rounds_to_output, 1)
        m_over = result.messages / (sync.messages + g.num_edges)
        series.add(
            g.num_nodes,
            sync.rounds_to_output,
            sync.messages,
            round(result.time_to_output, 1),
            result.messages,
            round(t_over, 2),
            round(m_over, 2),
        )
    return series


def _family_model_sweep(n=256):
    """Overhead per delay model at the spotlight size: one shared setup per
    topology family, replayed across the 5-model sweep family (the Theorem
    5.3 bounds are adversary-uniform, so the band across models is the
    quantity of interest)."""
    series = Series(
        "E5b: sync-bfs overheads across delay models at n=256 (sweep API)",
        ["family", "model", "T(A')", "M(A')", "msg_overhead"],
    )
    bands = {}
    for family in ("cycle", "grid"):
        g = FAMILIES[family](n)
        spec = bfs_spec(0)
        sync = run_synchronous(g, spec)
        sweep = SynchronizerSweep(g, spec)
        overheads = []
        for model in SWEEP_DELAYS():
            result = sweep.run(model)
            assert result.outputs == sync.outputs
            m_over = result.messages / (sync.messages + g.num_edges)
            overheads.append(m_over)
            series.add(
                family,
                type(model).__name__,
                round(result.time_to_output, 1),
                result.messages,
                round(m_over, 2),
            )
        bands[family] = max(overheads) / min(overheads)
    return series, bands


# Threshold note: the paper's overheads are polylog, but a power-law fit
# over 32..256 sees the local exponent of log^k(n), measured at ~0.70-0.87
# for these programs.  A linear-overhead synchronizer (e.g. alpha's
# per-pulse flooding) fits exponent ~1.0 on the same sweep, so thresholds
# sit between the measured polylog slope and 1.0 to keep discrimination.
def test_e05_bfs_overheads(benchmark):
    series = run_once(benchmark, lambda: _sweep(*PROGRAMS[0]))
    record(benchmark, series)
    ns = series.column("n")
    assert power_exponent(ns, series.column("time_overhead")) < 0.92
    assert power_exponent(ns, series.column("msg_overhead")) < 0.78


def test_e05_echo_overheads(benchmark):
    series = run_once(benchmark, lambda: _sweep(*PROGRAMS[1]))
    record(benchmark, series)
    ns = series.column("n")
    assert power_exponent(ns, series.column("msg_overhead")) < 0.88


def test_e05_floodmax_overheads(benchmark):
    series = run_once(benchmark, lambda: _sweep(*PROGRAMS[2]))
    record(benchmark, series)
    ns = series.column("n")
    assert power_exponent(ns, series.column("msg_overhead")) < 0.8


def test_e05_bfs_grid_overheads(benchmark):
    series = run_once(
        benchmark, lambda: _sweep("sync-bfs", lambda: bfs_spec(0),
                                  (64, 144, 256), family="grid")
    )
    record(benchmark, series)
    ns = series.column("n")
    assert power_exponent(ns, series.column("msg_overhead")) < 0.8


def test_e05_bfs_expander_overheads(benchmark):
    series = run_once(
        benchmark, lambda: _sweep("sync-bfs", lambda: bfs_spec(0),
                                  (64, 128, 256), family="expander")
    )
    record(benchmark, series)
    ns = series.column("n")
    assert power_exponent(ns, series.column("msg_overhead")) < 0.8


def test_e05_overheads_across_delay_models(benchmark):
    series, bands = run_once(benchmark, _family_model_sweep)
    record(benchmark, series)
    # Adversary-uniformity: the message overhead varies by a small constant
    # factor across the delay-model family, not by a structural gap.
    for family, band in bands.items():
        assert band < 2.0, (family, band)


def test_e05_sharded_sweep_matches_serial(benchmark, jobs):
    """DESIGN.md §14: the process-pool executor reproduces the serial
    sweep byte-for-byte — message counts, simulated times, and output
    digests — on the E5 spotlight cell, for any ``--jobs``."""

    def run():
        g = FAMILIES["cycle"](256)
        sweep = SynchronizerSweep(g, bfs_spec(0))
        models = SWEEP_DELAYS()
        serial = [summarize(i, r) for i, r in enumerate(sweep.run_all(models))]
        return serial, sweep.run_all_sharded(models, jobs=jobs)

    serial, sharded = run_once(benchmark, run)
    assert [s.comparable() for s in sharded] == [s.comparable() for s in serial]
