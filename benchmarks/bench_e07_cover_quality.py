"""E7 — Theorems 4.20/4.21 and Section 2.1: sparse-cover quality.

Claims measured: membership O(log n) per node; AP stretch O(log n) vs RG
stretch O(log^3 n); RG edge load O(log^4 n); RG color count O(log n);
construction round accounting O(d·polylog).
"""

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import record, run_once

from repro.analysis import Series
from repro.covers import (
    ap_membership_bound,
    build_ap_cover,
    build_rg_cover,
    build_rg_decomposition,
    validate_cover,
)
from repro.net import topology


def _sweep():
    series = Series(
        "E7: cover quality, AP vs RG (Thm 4.21, Sec 2.1)",
        ["n", "d", "builder", "clusters", "membership", "stretch", "edge_load", "rounds"],
    )
    for n in (32, 64, 128):
        g = topology.cycle_graph(n)
        for d in (2, 4):
            ap = build_ap_cover(g, d)
            validate_cover(g, ap)
            series.add(n, d, "ap", len(ap.clusters), ap.max_membership,
                       round(ap.stretch(), 2), ap.max_edge_load, 0)
            rg, cost = build_rg_cover(g, d)
            validate_cover(g, rg)
            series.add(n, d, "rg", len(rg.clusters), rg.max_membership,
                       round(rg.stretch(), 2), rg.max_edge_load, cost.rounds)
    return series


def _colors():
    series = Series(
        "E7b: RG decomposition colors (Thm 4.20)",
        ["n", "k", "colors", "log2(n)", "rounds", "messages"],
    )
    for n in (32, 64, 128):
        g = topology.cycle_graph(n)
        decomposition = build_rg_decomposition(g, 2)
        decomposition.validate(g)
        series.add(
            n, 2, decomposition.num_colors, round(math.log2(n), 1),
            decomposition.cost.rounds, decomposition.cost.messages,
        )
    return series


def test_e07_cover_quality(benchmark):
    series = run_once(benchmark, _sweep)
    record(benchmark, series)
    for n, membership in zip(series.column("n"), series.column("membership")):
        assert membership <= ap_membership_bound(n) + math.ceil(math.log2(n)) + 1


def test_e07_decomposition_colors(benchmark):
    series = run_once(benchmark, _colors)
    record(benchmark, series)
    for n, colors in zip(series.column("n"), series.column("colors")):
        assert colors <= math.ceil(math.log2(n)) + 1
