"""E3 — Corollary 1.3: deterministic asynchronous leader election.

Claim: Õ(D) time and Õ(m) messages.  The synchronous Section-6 election is
fed through the deterministic synchronizer.  We report the election's own
rounds/messages, the accounted cover-construction rounds (the substituted
precomputation; DESIGN.md substitution 2), and the asynchronous totals.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, power_exponent, record, run_once

from repro.analysis import Series
from repro.apps import ElectionStructure, leader_election_spec
from repro.core import run_synchronized
from repro.covers import build_rg_decomposition
from repro.net import run_synchronous, topology


def _sweep():
    series = Series(
        "E3: leader election (Cor 1.3)",
        ["n", "m", "D", "T_sync", "M_sync", "cover_rounds", "M_async", "time_async", "time/D"],
    )
    for n in (16, 32, 64):
        g = topology.erdos_renyi_graph(n, 3.0 / n, seed=11)
        d = g.diameter()
        structure = ElectionStructure.build(g)
        spec = leader_election_spec(structure)
        sync = run_synchronous(g, spec)
        assert sync.outputs == {v: 0 for v in g.nodes}
        cover_rounds = sum(
            build_rg_decomposition(g, 1 << i).cost.rounds
            for i in range(min(2, len(structure.covers)))
        )
        result = run_synchronized(g, spec, BENCH_DELAYS)
        assert result.outputs == sync.outputs
        series.add(
            n,
            g.num_edges,
            d,
            sync.rounds_total,
            sync.messages,
            cover_rounds,
            result.messages,
            round(result.time_to_output, 1),
            round(result.time_to_output / d, 1),
        )
    return series


def test_e03_leader_election(benchmark):
    series = run_once(benchmark, _sweep)
    record(benchmark, series)
    ns = series.column("n")
    msgs = series.column("M_async")
    ms = series.column("m")
    per_m = [a / b for a, b in zip(msgs, ms)]
    # Õ(m) messages: normalized series stays sub-linear in n.
    assert power_exponent(ns, per_m) < 1.0
