"""E11 — Theorems 4.11/4.15/4.17: thresholded BFS scaling in 2^t and l.

Claims: a 2^t-thresholded BFS costs O(2^t·polylog) time and O(m·polylog)
messages; the l-stage extension multiplies messages by ~l and time by ~l.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, SWEEP_DELAYS, record, run_once

from repro.analysis import Series
from repro.core import (
    ThresholdedBFSSweep,
    registry_for_threshold,
    run_multi_stage_bfs,
)
from repro.net import topology
from repro.net.shard import summarize


def _threshold_sweep():
    series = Series(
        "E11: 2^t-thresholded BFS vs t on cycle(256) (Thm 4.11/4.15)",
        ["threshold", "messages", "msgs/m", "time", "time/2^t"],
    )
    g = topology.cycle_graph(256)
    for t in (1, 2, 3, 4, 5):
        theta = 1 << t
        outcome = ThresholdedBFSSweep(g, 0, theta).run(BENCH_DELAYS)
        series.add(
            theta,
            outcome.messages,
            round(outcome.messages / g.num_edges, 1),
            round(outcome.result.time_to_output, 1),
            round(outcome.result.time_to_output / theta, 1),
        )
    return series


def _family_sweep():
    """Fixed threshold 2^3 across topology families at n≈256, each family
    replayed over the whole 5-model delay family through one shared sweep
    engine (Thm 4.15: the message bound is Õ(m), uniform over topologies —
    and over adversaries, which the per-model rows exhibit)."""
    series = Series(
        "E11c: 2^3-thresholded BFS across families x delay models, n≈256",
        ["family", "model", "n", "m", "messages", "msgs/m", "time"],
    )
    graphs = [
        ("cycle", topology.cycle_graph(256)),
        ("grid", topology.grid_graph(16, 16)),
        ("expander", topology.random_regular_graph(256, 4, seed=1)),
    ]
    for family, g in graphs:
        sweep = ThresholdedBFSSweep(g, 0, 8)
        truth = None
        for model in SWEEP_DELAYS():
            outcome = sweep.run(model)
            if truth is None:
                truth = outcome.distances
            else:
                # Correctness is adversary-independent: every model yields
                # the same distances from the shared setup.
                assert outcome.distances == truth
            series.add(
                family,
                type(model).__name__,
                g.num_nodes,
                g.num_edges,
                outcome.messages,
                round(outcome.messages / g.num_edges, 1),
                round(outcome.result.time_to_output, 1),
            )
    return series


def _stage_sweep():
    series = Series(
        "E11b: l-stage extension vs l (Thm 4.17)",
        ["stages", "range", "messages", "time"],
    )
    g = topology.cycle_graph(64)
    registry = registry_for_threshold(g, 4)
    for stages in (1, 2, 4, 8):
        outcome = run_multi_stage_bfs(g, 0, 4, stages, BENCH_DELAYS, registry=registry)
        series.add(
            stages,
            4 * stages,
            outcome.messages,
            round(outcome.result.time_to_output, 1),
        )
    return series


def test_e11_threshold_scaling(benchmark):
    series = run_once(benchmark, _threshold_sweep)
    record(benchmark, series)
    times = series.column("time")
    # Time grows with the threshold but stays near-linear in 2^t: the
    # normalized column varies by a bounded factor.
    normalized = series.column("time/2^t")
    assert max(normalized) <= 6 * min(normalized)


def test_e11_stage_scaling(benchmark):
    series = run_once(benchmark, _stage_sweep)
    record(benchmark, series)
    msgs = series.column("messages")
    # Theorem 4.17: messages ~ linear in l (factor-8 range, allow 12x).
    assert msgs[-1] <= 12 * msgs[0]
    assert msgs[-1] >= 2 * msgs[0]


def test_e11_family_scaling(benchmark):
    series = run_once(benchmark, _family_sweep)
    record(benchmark, series)
    # Õ(m) messages: the per-edge cost stays within a polylog-ish band
    # across families of the same size.
    per_edge = series.column("msgs/m")
    assert max(per_edge) <= 12 * min(per_edge)


def test_e11_sharded_sweep_matches_serial(benchmark, jobs):
    """DESIGN.md §14: the thresholded-BFS sweep shards byte-identically —
    the BFSOutcome wrapper is unwrapped on the worker side, and the merged
    summaries match the serial engine cell-for-cell, for any ``--jobs``."""

    def run():
        sweep = ThresholdedBFSSweep(topology.cycle_graph(256), 0, 8)
        models = SWEEP_DELAYS()
        serial = [summarize(i, o) for i, o in enumerate(sweep.run_all(models))]
        return serial, sweep.run_all_sharded(models, jobs=jobs)

    serial, sharded = run_once(benchmark, run)
    assert [s.comparable() for s in sharded] == [s.comparable() for s in serial]
