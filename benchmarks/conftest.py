"""Shared pytest options for the experiment benchmarks.

``--jobs N`` controls the worker count of the sharded sweep-equivalence
cells in bench_e05 / bench_e10 / bench_e11 (DESIGN.md §14).  The default
of 2 keeps the process-pool path exercised on every CI runner; the cells
assert digest equality against the serial engine, so any N is equally
valid — a larger N only changes wall time, never results.
"""


import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the sharded sweep cells (default: 2)",
    )


@pytest.fixture
def jobs(request):
    value = request.config.getoption("--jobs")
    if value < 1:
        raise pytest.UsageError("--jobs must be >= 1")
    return value
