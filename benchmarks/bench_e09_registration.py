"""E9 — Section 3.2 and Lemmas 3.4/3.5: registration congestion ablation.

The paper's fix versus the "natural attempt" of [AP90a]: on a bounded-height
tree with a bottleneck edge and r registrants, the naive root-counter scheme
needs Ω(r) time (all traffic serializes on the bottleneck) while the
dirty-mark scheme finishes in O(height).  Also checks Lemma 3.4's O(h)
per-operation cost on deep paths.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import record, run_once

from repro.analysis import Series
from repro.core.registration import RegistrationModule, cluster_views_for
from repro.core.registration_naive import NaiveRegistrationModule
from repro.covers import bfs_cluster_tree
from repro.net import AsyncRuntime, ConstantDelay, Graph, Process, topology


def _broom(k):
    edges = [(0, 1)] + [(1, 2 + i) for i in range(k)]
    return Graph(k + 2, edges)


def _run(module_cls, graph, tree, registrants):
    finished = {}

    class Driver(Process):
        def __init__(self, ctx):
            super().__init__(ctx)
            views = cluster_views_for({0: tree}, ctx.node_id)
            self.mod = module_cls(
                ctx.node_id,
                views,
                lambda to, p, pr: ctx.send(
                    to, p, pr if isinstance(pr, tuple) else (pr,)
                ),
                self._registered,
                self._go,
                lambda tag: (0,),
            )

        def _registered(self, c, t):
            self.ctx.schedule_environment_event(
                0.5, lambda: self.mod.deregister(c, t)
            )

        def _go(self, c, t):
            finished[self.ctx.node_id] = self.ctx.now
            self.ctx.set_output("free")

        def on_start(self):
            if self.ctx.node_id in registrants:
                self.mod.register(0, 1)

        def on_message(self, sender, payload):
            assert self.mod.handle(sender, payload)

    runtime = AsyncRuntime(graph, Driver, ConstantDelay(1.0))
    result = runtime.run(max_events=20_000_000)
    assert result.stop_reason == "quiescent"
    assert set(finished) == set(registrants)
    return max(finished.values()), result.messages


def _congestion_sweep():
    series = Series(
        "E9: dirty-mark vs naive registration on a bottleneck tree (Sec 3.2)",
        ["registrants", "scheme", "time", "messages"],
    )
    data = {}
    for k in (8, 32, 128):
        g = _broom(k)
        tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
        registrants = set(range(2, k + 2))
        tn, mn = _run(NaiveRegistrationModule, g, tree, registrants)
        to, mo = _run(RegistrationModule, g, tree, registrants)
        series.add(k, "naive", round(tn, 1), mn)
        series.add(k, "dirty-mark", round(to, 1), mo)
        data[k] = (tn, to)
    return series, data


def _height_sweep():
    series = Series(
        "E9b: single registration cost is O(height) (Lemma 3.4)",
        ["height", "register_time", "go_ahead_time", "messages"],
    )
    for n in (8, 16, 32, 64):
        g = topology.path_graph(n)
        tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
        t, msgs = _run(RegistrationModule, g, tree, {n - 1})
        series.add(n - 1, round(t, 1), round(t, 1), msgs)
    return series


def test_e09_congestion_ablation(benchmark):
    (series, data) = run_once(benchmark, _congestion_sweep)
    record(benchmark, series)
    # Naive time grows ~linearly with registrants; ours stays flat.
    assert data[128][0] / data[8][0] > 8
    assert data[128][1] <= data[8][1] * 1.5


def test_e09_height_linearity(benchmark):
    series = run_once(benchmark, _height_sweep)
    record(benchmark, series)
    heights = series.column("height")
    times = series.column("go_ahead_time")
    # Time per unit height stays bounded (O(h) claim).
    ratios = [t / h for t, h in zip(times, heights)]
    assert max(ratios) <= 2 * min(ratios) + 1
