"""Shared helpers for the experiment benchmarks (E1–E11).

Each benchmark runs the protocol(s) once inside pytest-benchmark (wall time
is reported for reproducibility, but the quantities of interest are the
*protocol* metrics: simulated time normalized by the delay bound τ, and
message counts).  Every benchmark prints the series EXPERIMENTS.md records
and attaches them to ``benchmark.extra_info``.

Running under PyPy (the cheap ~10x for big sweeps)
--------------------------------------------------

The whole stack is pure Python with zero native dependencies, so the large
sweeps (n=512+, many delay models) run unmodified under PyPy::

    pypy3 -m pip install pytest pytest-benchmark hypothesis networkx
    PYTHONPATH=src pypy3 -m pytest benchmarks/bench_e05_*.py -q
    PYTHONPATH=src pypy3 benchmarks/perf_regression.py            # prints only

Notes from trial runs (keep in mind before comparing numbers):

* The JIT pays off after warm-up: single small runs (n <= 64) can be
  *slower* than CPython; the n=256+ sweeps are where the ~10x appears.
* Determinism is unaffected — delays are pure functions of (edge,
  direction, seq, seed), and hash-based draws use explicit 32/64-bit
  mixing, not ``hash()`` — so message counts and output digests must match
  CPython exactly (the ``perf_regression.py --check`` determinism fields
  are interpreter-independent).
* Do NOT ``--write`` the committed throughput baseline from a PyPy run:
  ``BENCH_core.json`` floors are calibrated for CPython CI runners (the
  calibration loop itself JITs, so the host-speed rescaling would not
  cancel out).
* CPython-specific micro-optimizations in the transport (bigint-free
  32-bit mixing, frame-avoidance closures) are harmless under PyPy — the
  JIT sees through them either way; the §9 packed records and block-drawn
  delay buffers (flat int/float arrays, no per-message closure frames)
  are shaped *for* the JIT and are where PyPy gains the most.
* CI runs this recipe on every push: the ``pypy`` job in
  ``.github/workflows/ci.yml`` runs the tier-1 tests plus
  ``perf_regression.py --quick`` (print-only — per the above, never
  ``--check`` or ``--write`` against the CPython-calibrated baseline
  from PyPy).

Reading ``perf_regression.py --profile`` output under host drift
----------------------------------------------------------------

The profile lane (``--profile <workload>``) exists so hot-spot *claims*
(DESIGN.md §9/§10: "X% of wall is protocol handlers") are reproducible,
but two caveats apply on shared or drifting hosts:

* **Ratios are trustworthy, absolute times are not.**  Wall clocks on
  this class of host drift ±30% between load windows, and cProfile adds
  ~1µs of overhead per call on top, inflating call-heavy code (many
  small protocol handlers) relative to loop-heavy code (the inlined
  event loop).  Compare the *shares* of two functions within one profile
  — never a profiled time against a plain wall clock, and never two
  profiles from different windows.
* **Decide speedups with interleaved A/B, not with the profiler.**  The
  profile tells you *where* to aim; whether a change landed is decided
  by order-balanced interleaved A/B runs (old, new, new, old, ...) whose
  trimmed-mean ratio cancels drift that hits both sides — the same
  discipline `measure()` applies to the sweep-vs-independent pairs.
  §9 and §10 both record cases where the profiler said "hot" but the
  interleaved A/B said "parity": the per-call costs were already at the
  CPython floor, so redistributing them moved shares, not walls.

Reading multiprocess (``--jobs``) speedups under host drift
-----------------------------------------------------------

The sharded sweep executor (DESIGN.md §14; ``perf_regression.py
--jobs N`` and the ``shard-*`` workloads) adds one more drift trap on
top of the ±30% windows above, because a pool's wall clock aggregates
*several* processes' windows at once:

* **Interleave per pair, trust the ratio.**  ``measure()`` already
  interleaves each shard workload with its serial twin (shard, serial,
  serial, shard, ...), so a load window that slows one side slows the
  other and the reported ``shard speedup [kind]`` ratio cancels it.
  Never compare a shard wall from one run against a serial wall from
  another — only the in-run pairing is drift-balanced.
* **Trimmed means beat best-of-N for pools.**  Best-of-N is right for
  single-process walls (the floor is the signal), but a pool's best rep
  is the one where *every* worker dodged the noise at once — a rarer
  event the more workers you add, so best-of-N under-reports shard cost
  at small rep counts.  When reps are plentiful, trim the extremes and
  compare means; at the committed rep counts the printed ratio keeps
  best-of-N for symmetry with the serial lanes, so read it as a
  *lower bound* on shard overhead, not an exact cost.
* **Core count gates the ceiling.**  Speedup is capped by
  min(jobs, cells, cores); on 1–2 core CI runners expect ~1.0x or
  below (pool setup plus one bundle shipment per worker is pure
  overhead there), and ≥1.5x only from ≥4-core hosts.  That is why the
  ``sweep_speedups`` shard entries in BENCH_core.json are print-only
  and never ``--check``-gated: the *digest equality* between shard and
  serial lanes is the gated claim, the ratio is host-dependent
  telemetry.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict

from repro.analysis import Series, fit_power_law

# One deterministic adversary for benchmarks (correctness across the whole
# adversary family is covered by the test suite).
from repro.net.delays import (
    AlternatingDelay,
    BimodalDelay,
    ConstantDelay,
    SlowEdgesDelay,
    UniformDelay,
)

BENCH_DELAYS = UniformDelay(seed=2305)  # arXiv number of the paper


def SWEEP_DELAYS(seed: int = 2305):
    """The 5-model family the sweep benchmarks replay (one shared engine
    setup per graph via repro.core.sweep; fresh model instances per call)."""
    return (
        ConstantDelay(),
        UniformDelay(seed=seed),
        BimodalDelay(seed=seed),
        SlowEdgesDelay(seed=seed),
        AlternatingDelay(seed=seed),
    )


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Execute fn exactly once under pytest-benchmark and return its result."""
    box: Dict[str, Any] = {}

    def wrapped():
        box["result"] = fn()

    benchmark.pedantic(wrapped, rounds=1, iterations=1, warmup_rounds=0)
    return box["result"]


def record(benchmark, series: Series) -> None:
    print()
    print(series.render())
    benchmark.extra_info["table"] = {
        "title": series.title,
        "columns": list(series.columns),
        "rows": [list(map(str, row)) for row in series.rows],
    }


def power_exponent(xs, ys) -> float:
    exponent, _ = fit_power_law(xs, ys)
    return exponent
