"""Shared helpers for the experiment benchmarks (E1–E11).

Each benchmark runs the protocol(s) once inside pytest-benchmark (wall time
is reported for reproducibility, but the quantities of interest are the
*protocol* metrics: simulated time normalized by the delay bound τ, and
message counts).  Every benchmark prints the series EXPERIMENTS.md records
and attaches them to ``benchmark.extra_info``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict

from repro.analysis import Series, fit_power_law

# One deterministic adversary for benchmarks (correctness across the whole
# adversary family is covered by the test suite).
from repro.net.delays import (
    AlternatingDelay,
    BimodalDelay,
    ConstantDelay,
    SlowEdgesDelay,
    UniformDelay,
)

BENCH_DELAYS = UniformDelay(seed=2305)  # arXiv number of the paper


def SWEEP_DELAYS(seed: int = 2305):
    """The 5-model family the sweep benchmarks replay (one shared engine
    setup per graph via repro.core.sweep; fresh model instances per call)."""
    return (
        ConstantDelay(),
        UniformDelay(seed=seed),
        BimodalDelay(seed=seed),
        SlowEdgesDelay(seed=seed),
        AlternatingDelay(seed=seed),
    )


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Execute fn exactly once under pytest-benchmark and return its result."""
    box: Dict[str, Any] = {}

    def wrapped():
        box["result"] = fn()

    benchmark.pedantic(wrapped, rounds=1, iterations=1, warmup_rounds=0)
    return box["result"]


def record(benchmark, series: Series) -> None:
    print()
    print(series.render())
    benchmark.extra_info["table"] = {
        "title": series.title,
        "columns": list(series.columns),
        "rows": [list(map(str, row)) for row in series.rows],
    }


def power_exponent(xs, ys) -> float:
    exponent, _ = fit_power_law(xs, ys)
    return exponent
