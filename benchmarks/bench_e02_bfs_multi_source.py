"""E2 — Theorem 4.24: multi-source BFS in Õ(D1) time-to-output.

Claim: with source set S, every node outputs by Õ(D1) where
D1 = max_v dist(v, S), even when the graph diameter D is much larger.  We
fix a long cycle (D constant across rows) and densify the source set so D1
shrinks; time-to-output must track D1, not D.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import BENCH_DELAYS, record, run_once

from repro.analysis import Series
from repro.core import run_full_bfs
from repro.net import topology


def _sweep():
    n = 96
    g = topology.cycle_graph(n)
    d = g.diameter()
    series = Series(
        "E2: multi-source BFS, time tracks D1 not D (Thm 4.24)",
        ["sources", "D", "D1", "messages", "time_to_output", "time/D1"],
    )
    for spacing in (96, 48, 24, 12, 6):
        sources = frozenset(range(0, n, spacing))
        d1 = int(max(g.bfs_distances(sources)))
        outcome = run_full_bfs(g, sources, BENCH_DELAYS)
        t = outcome.result.time_to_output
        series.add(len(sources), d, d1, outcome.messages, round(t, 1), round(t / d1, 2))
    return series


def test_e02_output_time_tracks_d1(benchmark):
    series = run_once(benchmark, _sweep)
    record(benchmark, series)
    times = series.column("time_to_output")
    d1s = series.column("D1")
    per_d1 = series.column("time/D1")
    # Within the multi-source rows, denser sources => smaller D1 =>
    # strictly less time-to-output (the single-source row has a smaller
    # constant because the Section 4.2 base-case barriers degenerate).
    assert times[1:] == sorted(times[1:], reverse=True)
    assert times[1] / times[-1] > (d1s[1] / d1s[-1]) / 4
    # The normalized time/D1 column stays flat across an 8x D1 range.
    multi = per_d1[1:]
    assert max(multi) <= 2 * min(multi)
