from setuptools import find_packages, setup

setup(
    name="repro-synchronizer",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            # Static determinism & protocol-invariant checker (DESIGN.md §12);
            # equivalent to `python -m repro.lint`.
            "repro-lint = repro.lint.cli:main",
            # DPOR-style schedule-space model checker (DESIGN.md §13);
            # equivalent to `python -m repro.check`.
            "repro-check = repro.check.cli:main",
        ]
    },
)
