"""repro.check unit tests: exploration, reduction soundness checks,
trace round-trips, CLI exit codes, and the dispatch-table validation the
controlled engine performs at wiring time (DESIGN.md §13)."""

import json

import pytest

from repro.check import explore
from repro.check.cli import main as check_main
from repro.check.scheduler import ReplayMismatch
from repro.check.trace import (
    canonical_bytes,
    load_trace,
    make_trace,
    replay,
    save_trace,
    trace_choices,
    trace_signature,
)
from repro.check.workloads import build_workload, expand_workloads
from repro.net.async_runtime import AsyncRuntime, Process
from repro.net.delays import ConstantDelay
from repro.net.topology import path_graph


class TestExploration:
    def test_sync_cycle3_exhausts_clean(self):
        report = explore(build_workload("sync-bfs:cycle:3"))
        assert report.exhausted
        assert not report.truncated
        assert report.violation is None
        assert report.executions > 1
        assert report.states > report.executions  # decision points dominate

    def test_reg_star4_exhausts_clean(self):
        report = explore(build_workload("reg:star:4"))
        assert report.exhausted
        assert report.violation is None

    def test_churn_crash_cell_clean_under_budget(self):
        report = explore(build_workload("churn:cycle:5:crash:1"), budget=60)
        assert report.violation is None
        assert report.executions == 60
        assert not report.exhausted  # budget cut, honestly reported

    def test_rejoin_cell_clean_under_budget(self):
        """The crash+rejoin cell stays clean over a bounded prefix of its
        schedule space — the default first execution already walks crash
        → detect batch → rejoin → alive batch, and backtracking reverses
        the rejoin across the detects (the D1–D3 race of DESIGN.md §15)."""
        report = explore(build_workload("rejoin:cycle:4:crash:1"), budget=80)
        assert report.violation is None
        assert report.executions == 80
        # Rejoin steps genuinely appear in the explored prefix: races on
        # the rejoin action were found and scheduled.
        assert report.races > 0

    def test_rejoin_cell_deterministic(self):
        a = explore(build_workload("rejoin:cycle:4:crash:2"), budget=40)
        b = explore(build_workload("rejoin:cycle:4:crash:2"), budget=40)
        assert (a.executions, a.states, a.races, a.steps_total,
                a.max_depth, a.violation) == (
            b.executions, b.states, b.races, b.steps_total,
            b.max_depth, b.violation)

    def test_budget_zero_like_minimal(self):
        report = explore(build_workload("reg:star:3"), budget=1)
        assert report.executions == 1
        assert report.violation is None

    def test_deterministic_reports(self):
        """Two independent explorations are field-for-field identical —
        the property every replayable-trace claim rests on."""
        a = explore(build_workload("reg:star:3:crash:1"))
        b = explore(build_workload("reg:star:3:crash:1"))
        assert (a.executions, a.states, a.races, a.steps_total,
                a.max_depth, a.violation) == (
            b.executions, b.states, b.races, b.steps_total,
            b.max_depth, b.violation)
        assert a.exhausted and b.exhausted

    def test_dpor_agrees_with_full_baseline(self):
        """DPOR + sleep sets vs backtrack-everything on the same cells:
        both must exhaust with zero violations, and DPOR must actually
        reduce (fewer executions than the baseline)."""
        for spec in ("reg:star:3", "reg:star:3:crash:1"):
            reduced = explore(build_workload(spec))
            full = explore(build_workload(spec), full=True)
            assert reduced.exhausted and full.exhausted
            assert reduced.violation is None and full.violation is None
            assert reduced.executions < full.executions


class TestWorkloadSpecs:
    def test_crash_root_rejected(self):
        with pytest.raises(ValueError):
            build_workload("churn:cycle:5:crash:0")

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            build_workload("nonsense:cycle:4")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_workload("sync-bfs:torus:4")

    def test_rejoin_root_rejected(self):
        with pytest.raises(ValueError):
            build_workload("rejoin:cycle:5:crash:0")

    def test_rejoin_cell_wires_controller(self):
        cell = build_workload("rejoin:cycle:5:crash:2")
        assert cell.crashable == (2,)
        assert cell.rejoinable == (2,)
        churn = build_workload("churn:cycle:5:crash:2")
        assert churn.rejoinable == ()

    def test_matrix_expansion(self):
        cells = expand_workloads("churn:cycle:5")
        assert [c.name for c in cells] == [
            f"churn:cycle:5:crash:{v}" for v in (1, 2, 3, 4)
        ]
        rejoin = expand_workloads("rejoin:cycle:5")
        assert [c.name for c in rejoin] == [
            f"rejoin:cycle:5:crash:{v}" for v in (1, 2, 3, 4)
        ]
        assert all(c.rejoinable == c.crashable for c in rejoin)
        reg = expand_workloads("reg:star:4:crash")
        assert [c.name for c in reg] == [
            f"reg:star:4:crash:{v}" for v in (1, 2, 3)
        ]
        single = expand_workloads("sync-bfs:cycle:3")
        assert len(single) == 1


class TestTraces:
    VIOLATION = ("pulse-bound", "synthetic")

    def _trace(self):
        return make_trace(
            "sync-bfs:cycle:3", [("ev", 3), ("crash", 1)], self.VIOLATION
        )

    def test_canonical_bytes_stable(self):
        raw = canonical_bytes(self._trace())
        assert raw.endswith(b"\n")
        assert b" " not in raw.replace(b"synthetic", b"")
        # Key order is canonical: re-encoding a parsed copy is identical.
        assert canonical_bytes(json.loads(raw)) == raw

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        trace = self._trace()
        save_trace(trace, path)
        loaded = load_trace(path)
        assert trace_choices(loaded) == [("ev", 3), ("crash", 1)]
        assert trace_signature(loaded) == self.VIOLATION
        assert canonical_bytes(loaded) == canonical_bytes(trace)

    def test_version_check(self, tmp_path):
        path = str(tmp_path / "bad.json")
        trace = self._trace()
        trace["version"] = 99
        save_trace(trace, path)
        with pytest.raises(ValueError):
            load_trace(path)

    def test_replay_mismatch_on_stale_choice(self):
        trace = make_trace(
            "reg:star:3", [("ev", 999_999)], self.VIOLATION
        )
        with pytest.raises(ReplayMismatch):
            replay(trace)

    def test_replay_clean_prefix_reports_no_violation(self):
        outcome = replay(make_trace("reg:star:3", [], self.VIOLATION))
        assert outcome.violation is None


class TestCli:
    def test_explore_clean_exits_zero(self, capsys):
        assert check_main(["explore", "reg:star:3"]) == 0
        out = capsys.readouterr().out
        assert "exhausted" in out

    def test_bare_flags_imply_explore(self, capsys):
        assert check_main(["--budget", "5", "reg:star:3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reports"][0]["workload"] == "reg:star:3"
        assert payload["reports"][0]["executions"] == 5

    def test_bad_spec_exits_two(self, capsys):
        assert check_main(["explore", "bogus:cell:1"]) == 2
        assert "repro.check" in capsys.readouterr().err

    def test_replay_missing_file_exits_two(self, capsys):
        assert check_main(["replay", "/nonexistent/trace.json"]) == 2
        capsys.readouterr()

    def test_replay_unreproduced_violation_exits_one(self, tmp_path, capsys):
        path = str(tmp_path / "fake.json")
        save_trace(
            make_trace("reg:star:3", [], ("pulse-bound", "fabricated")), path
        )
        assert check_main(["replay", path]) == 1
        assert "did NOT reproduce" in capsys.readouterr().err

    def test_list_exits_zero(self, capsys):
        assert check_main(["list"]) == 0
        assert "sync-bfs" in capsys.readouterr().out


class _Tabled(Process):
    """Opcode-dispatch process used to exercise the wiring-time table
    validation; never actually run."""

    NUM_OPCODES = 3

    def __init__(self, ctx):
        super().__init__(ctx)
        self.on_message_table = self._make_table()

    def on_message(self, sender, payload):  # pragma: no cover
        pass

    def _h(self, sender, payload):  # pragma: no cover
        pass

    def _make_table(self):
        return (self._h, self._h, self._h)


class TestTableValidation:
    def _build(self, cls):
        return AsyncRuntime(path_graph(2), cls, ConstantDelay(1.0))

    def test_correct_table_accepted(self):
        self._build(_Tabled)

    def test_short_table_rejected(self):
        class Short(_Tabled):
            def _make_table(self):
                return (self._h, self._h)

        with pytest.raises(ValueError, match="NUM_OPCODES"):
            self._build(Short)

    def test_gap_table_rejected(self):
        class Gap(_Tabled):
            def _make_table(self):
                return (self._h, None, self._h)

        with pytest.raises(ValueError, match="not callable"):
            self._build(Gap)
