"""Fixture-driven tests for ``repro.lint`` (DESIGN.md §12).

Every rule DET001-DET005 is exercised in both directions — a fixture file
of true positives that must all be flagged, and a fixture of true
negatives (sorted wrapping, sanctioned modules, order-insensitive
consumers, complete resets) that must pass silently.  On top of the
fixtures: the real pooled classes (`_StageState`, `_InstanceState`) are
re-checked with a deliberately-injected missing-reset field to prove
DET003 guards the actual PR 5/6 bug class, the repo itself must lint
clean via the same entry point CI runs, and the ``--json`` output must be
byte-identical across runs (the linter's own determinism contract).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import check_file, check_module, discover_files, module_name_for, run
from repro.lint.cli import main
from repro.lint.rules import RULES, UNSUPPRESSIBLE

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
SRC = ROOT / "src"


def lint_fixture(name):
    findings, used = check_file(str(FIXTURES / name))
    return findings, used


def lint_run(*paths):
    """Multi-file entry point — the one that includes the DET006 pass."""
    return run(list(paths))


def codes(findings):
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# rule catalog sanity
# ----------------------------------------------------------------------
def test_rule_catalog_complete():
    assert {"DET001", "DET002", "DET003", "DET004", "DET005"} <= set(RULES)
    assert set(UNSUPPRESSIBLE) <= set(RULES)


# ----------------------------------------------------------------------
# DET001 — set iteration order
# ----------------------------------------------------------------------
def test_det001_positive_fixture():
    findings, _ = lint_fixture("det001_positive.py")
    assert codes(findings) == ["DET001"] * 8
    flagged_lines = {f.line for f in findings}
    # for-loop, inferred name, annotated param, list(), enumerate(),
    # dict comp, set union, self attribute — one line each.
    assert flagged_lines == {8, 14, 19, 24, 25, 30, 34, 43}


def test_det001_negative_fixture():
    findings, used = lint_fixture("det001_negative.py")
    assert findings == []
    assert used == 1  # the justified demo suppression


def test_det001_does_not_apply_outside_protocol_packages(tmp_path):
    source = (
        "# det: module=repro.analysis.fixture\n"
        "def f(s: set):\n"
        "    for v in s:\n"
        "        print(v)\n"
    )
    path = tmp_path / "mod.py"
    path.write_text(source)
    findings, _ = check_file(str(path))
    assert findings == []


# ----------------------------------------------------------------------
# DET002 — unsanctioned entropy
# ----------------------------------------------------------------------
def test_det002_positive_fixture():
    findings, _ = lint_fixture("det002_positive.py")
    assert codes(findings) == ["DET002"] * 7


def test_det002_negative_fixture():
    findings, _ = lint_fixture("det002_negative.py")
    assert findings == []


def test_det002_sanctioned_module_passes():
    findings, _ = lint_fixture("det002_sanctioned.py")
    assert findings == []


# ----------------------------------------------------------------------
# DET003 — pooled-state reset completeness
# ----------------------------------------------------------------------
def test_det003_positive_fixture():
    findings, _ = lint_fixture("det003_positive.py")
    assert codes(findings) == ["DET003", "DET003"]
    messages = "\n".join(f.message for f in findings)
    assert "deferred_acks" in messages
    assert "missing" in messages


def test_det003_negative_fixture():
    findings, _ = lint_fixture("det003_negative.py")
    assert findings == []


def test_real_pooled_classes_are_reset_complete():
    """The live pools must stay clean — this is the shipped audit result."""
    for module in ("registration", "cluster_ops"):
        path = SRC / "repro" / "core" / f"{module}.py"
        findings, _ = check_file(str(path))
        assert findings == [], f"{module}: {[f.render() for f in findings]}"


@pytest.mark.parametrize(
    "module, anchor, classname",
    [
        (
            "registration",
            "        self.child_marks: Dict[NodeId, str] = {}\n",
            "_StageState",
        ),
        (
            "cluster_ops",
            "        self.child_values: Dict[NodeId, Any] = {}\n",
            "_InstanceState",
        ),
    ],
)
def test_det003_would_catch_field_added_to_real_pool(module, anchor, classname):
    """Inject the PR 5/6 regression into the REAL source: a field added to
    ``__init__`` but not to ``reuse()`` must fire DET003 on today's code."""
    path = SRC / "repro" / "core" / f"{module}.py"
    source = path.read_text(encoding="utf-8")
    assert source.count(anchor) == 1
    broken = source.replace(anchor, anchor + "        self.sneaky_field = None\n")
    findings = check_module(broken, str(path), f"repro.core.{module}")
    det003 = [f for f in findings if f.code == "DET003"]
    assert len(det003) == 1
    assert "sneaky_field" in det003[0].message
    assert classname in det003[0].message


# ----------------------------------------------------------------------
# DET004 — __slots__ and dispatch-table integrity
# ----------------------------------------------------------------------
def test_det004_positive_fixture():
    findings, _ = lint_fixture("det004_positive.py")
    assert codes(findings) == ["DET004"] * 5
    messages = "\n".join(f.message for f in findings)
    assert "self.totl" in messages and "self.coutn" in messages
    assert "opcode gap" in messages
    assert "self._handle_missing" in messages
    assert "self._on_gone" in messages


def test_det004_negative_fixture():
    findings, _ = lint_fixture("det004_negative.py")
    assert findings == []


def test_det004_real_dispatch_tables_clean():
    for rel in ("core/synchronizer.py", "core/thresholded_bfs.py"):
        findings, _ = check_file(str(SRC / "repro" / rel))
        assert [f for f in findings if f.code == "DET004"] == []


# ----------------------------------------------------------------------
# DET005 — mutable defaults
# ----------------------------------------------------------------------
def test_det005_positive_fixture():
    findings, _ = lint_fixture("det005_positive.py")
    assert codes(findings) == ["DET005"] * 6


def test_det005_negative_fixture():
    findings, _ = lint_fixture("det005_negative.py")
    assert findings == []


# ----------------------------------------------------------------------
# DET006 — cross-module message flow
# ----------------------------------------------------------------------
def test_det006_positive_fixture():
    findings, _, _ = lint_run(str(FIXTURES / "det006_positive.py"))
    assert codes(findings) == ["DET006", "DET006"]
    messages = "\n".join(f.message for f in findings)
    assert "OP_LOST" in messages and "no handler consumes" in messages
    assert "OP_DEAD" in messages and "dead message kind" in messages


def test_det006_negative_fixture():
    findings, _, _ = lint_run(str(FIXTURES / "det006_negative.py"))
    assert findings == []


def test_det006_is_cross_module():
    """The emitter dangles alone; adding the handler file (whose dispatch
    table imports the opcode names) completes the flow."""
    emitter = str(FIXTURES / "det006_emitter.py")
    handler = str(FIXTURES / "det006_handler.py")
    alone, _, _ = lint_run(emitter)
    assert codes(alone) == ["DET006", "DET006"]
    paired, _, _ = lint_run(emitter, handler)
    assert paired == []


def test_det006_table_coverage_is_module_scoped():
    """A dispatch table only consumes opcodes visible in its own module —
    the positive fixture's danglers survive even when linted alongside
    fixtures that carry wide tables."""
    findings, _, _ = lint_run(str(FIXTURES))
    det006 = [f for f in findings if f.code == "DET006"]
    assert [os.path.basename(f.path) for f in det006] == (
        ["det006_positive.py"] * 2
    )


def test_det006_not_in_single_file_check():
    """check_file is the per-file API: cross-module flow needs the whole
    set and deliberately stays out of it."""
    findings, _ = check_file(str(FIXTURES / "det006_positive.py"))
    assert [f for f in findings if f.code == "DET006"] == []


def test_det006_suppression(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "OP_EXT = 7\n"
        "def send(to, p):\n"
        "    del to, p\n"
        "def go():\n"
        "    send(1, (OP_EXT, 'x'))  # det: ignore[DET006]"
        " -- consumed by the out-of-tree collector\n"
    )
    findings, _, used = lint_run(str(path))
    assert findings == []
    assert used == 1


def test_det006_real_tree_flows_complete():
    findings, _, _ = lint_run("src")
    assert [f for f in findings if f.code == "DET006"] == []


# ----------------------------------------------------------------------
# suppression hygiene
# ----------------------------------------------------------------------
def test_suppression_fixture():
    findings, used = lint_fixture("suppressions.py")
    assert used == 1  # only the justified directive counts
    got = sorted(codes(findings))
    assert got == ["DET001", "DET001", "LNT001", "LNT001", "LNT001", "LNT002"]


def test_unsuppressible_rules_reject_suppression(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "# det: module=repro.core.fixture\n"
        "x = 1  # det: ignore[LNT002] -- trying to silence the police\n"
    )
    findings, used = check_file(str(path))
    assert codes(findings) == ["LNT001"]
    assert "cannot be suppressed" in findings[0].message
    assert used == 0


def test_unparseable_file_is_lnt003():
    findings, _ = lint_fixture("unparseable.py")
    assert codes(findings) == ["LNT003"]


# ----------------------------------------------------------------------
# discovery, module mapping, and output determinism
# ----------------------------------------------------------------------
def test_discovery_is_sorted_and_deduplicated():
    twice = discover_files([str(FIXTURES), str(FIXTURES / "det001_positive.py")])
    assert twice == sorted(twice)
    assert len(twice) == len(set(twice))
    assert all(p.endswith(".py") for p in twice)


def test_module_name_for_real_tree():
    assert (
        module_name_for(str(SRC / "repro" / "core" / "registration.py"))
        == "repro.core.registration"
    )
    assert module_name_for(str(SRC / "repro" / "lint" / "__init__.py")) == "repro.lint"
    assert module_name_for(str(FIXTURES / "det001_positive.py")) == "det001_positive"


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=str(ROOT), env=env, capture_output=True, text=True,
    )


def test_repo_lints_clean_via_module_entry_point():
    """The acceptance gate: ``python -m repro.lint src/`` exits 0."""
    proc = _run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_json_output_is_byte_stable():
    first = _run_cli("tests/fixtures/lint", "--json")
    second = _run_cli("tests/fixtures/lint", "--json")
    assert first.returncode == 1 and second.returncode == 1
    assert first.stdout == second.stdout
    payload = json.loads(first.stdout)
    assert payload["version"] == 1
    keys = [
        (f["path"], f["line"], f["col"], f["code"], f["message"])
        for f in payload["findings"]
    ]
    assert keys == sorted(keys)
    assert payload["counts"]["DET001"] >= 8
    assert payload["suppressions_used"] == 2


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_cli_rule_subset(capsys):
    rc = main([str(FIXTURES / "det005_positive.py"), "--rules", "det001"])
    assert rc == 0  # DET005 findings filtered out
    rc = main([str(FIXTURES / "det005_positive.py"), "--rules", "DET005"])
    assert rc == 1
    capsys.readouterr()


def test_cli_unknown_rule_code(capsys):
    assert main(["src", "--rules", "DET042"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path(capsys):
    assert main(["no/such/dir"]) == 2
    capsys.readouterr()
