"""Tests for the synchronous CONGEST round simulator."""

import pytest

from repro.net import (
    NodeProgram,
    ProgramSpec,
    UnknownLinkError,
    all_nodes_initiate,
    run_synchronous,
    single_initiator,
    topology,
)


class FloodMax(NodeProgram):
    """Every node floods the max id it has seen; outputs its final value.

    Event-driven: a node re-broadcasts only when its known max improves.
    """

    def __init__(self, info):
        super().__init__(info)
        self.best = info.node_id

    def on_start(self, api):
        api.set_output(self.best)
        for v in self.info.neighbors:
            api.send(v, self.best)

    def on_pulse(self, api, arrived):
        improved = False
        for _, value in arrived:
            if value > self.best:
                self.best = value
                improved = True
        if improved:
            api.set_output(self.best)
            for v in self.info.neighbors:
                api.send(v, self.best)


FLOOD_MAX = ProgramSpec("flood-max", FloodMax, all_nodes_initiate)


class SyncBfsFlood(NodeProgram):
    """Plain synchronous BFS: join proposals ripple outward one hop per round."""

    def __init__(self, info):
        super().__init__(info)
        self.dist = None

    def on_start(self, api):
        self.dist = 0
        api.set_output(0)
        for v in self.info.neighbors:
            api.send(v, 0)

    def on_pulse(self, api, arrived):
        if self.dist is None and arrived:
            self.dist = arrived[0][1] + 1
            api.set_output(self.dist)
            for v in self.info.neighbors:
                api.send(v, self.dist)


def bfs_spec(source):
    return ProgramSpec("sync-bfs", SyncBfsFlood, single_initiator(source))


class DoubleSendProgram(NodeProgram):
    def on_start(self, api):
        api.send(self.info.neighbors[0], "x")
        api.send(self.info.neighbors[0], "y")


class TestFloodMax:
    @pytest.mark.parametrize("family", ["path", "grid", "er_sparse", "star"])
    def test_all_learn_max(self, family):
        g = topology.make_topology(family, 20, seed=2)
        result = run_synchronous(g, FLOOD_MAX)
        assert result.outputs == {v: g.num_nodes - 1 for v in g.nodes}

    def test_time_is_eccentricity_of_max(self):
        g = topology.path_graph(10)
        result = run_synchronous(g, FLOOD_MAX)
        # Max id 9 sits at one end; its value must cross the whole path.
        assert result.rounds_to_output == 9

    def test_message_bound(self):
        g = topology.path_graph(10)
        result = run_synchronous(g, FLOOD_MAX)
        # On a path, node i improves up to n-1-i times, 2 sends each,
        # plus the initial broadcast: Theta(n^2) total.
        n = g.num_nodes
        assert result.messages <= 2 * n * n


class TestSyncBfs:
    @pytest.mark.parametrize("family", ["path", "cycle", "grid", "tree", "barbell"])
    def test_distances(self, family):
        g = topology.make_topology(family, 25, seed=1)
        result = run_synchronous(g, bfs_spec(0))
        expected = g.bfs_distances(0)
        for v in g.nodes:
            assert result.outputs[v] == expected[v]

    def test_round_count_equals_eccentricity(self):
        g = topology.path_graph(12)
        result = run_synchronous(g, bfs_spec(0))
        assert result.rounds_to_output == 11

    def test_messages_are_two_per_edge(self):
        g = topology.grid_graph(4, 4)
        result = run_synchronous(g, bfs_spec(0))
        # Every node sends to every neighbor exactly once.
        assert result.messages == 2 * g.num_edges


class TestRuntimeDiscipline:
    def test_double_send_rejected(self):
        g = topology.path_graph(3)
        spec = ProgramSpec("double", DoubleSendProgram, all_nodes_initiate)
        with pytest.raises(ValueError, match="sent twice"):
            run_synchronous(g, spec)

    def test_send_to_non_neighbor_rejected_with_unknown_link_error(self):
        """Parity with the asynchronous engine: a non-neighbor send fails
        at the send site with UnknownLinkError naming both endpoints (and
        still a ValueError for callers guarding on the historical type)."""
        g = topology.path_graph(3)

        class Skips(NodeProgram):
            def on_start(self, api):
                if self.info.node_id == 0:
                    api.send(2, "skip")  # 0-2 is not an edge of the path

            def on_pulse(self, api, arrived):  # pragma: no cover
                pass

        spec = ProgramSpec("skips", Skips, all_nodes_initiate)
        with pytest.raises(UnknownLinkError, match=r"no link 0 -> 2") as exc:
            run_synchronous(g, spec)
        assert exc.value.u == 0
        assert exc.value.v == 2
        # Callers guarding on the historical ValueError keep working.
        assert isinstance(exc.value, ValueError)

    def test_send_from_isolated_node_rejected(self):
        from repro.net import Graph

        g = Graph(3, [(0, 1)])

        class Lonely(NodeProgram):
            def on_start(self, api):
                if self.info.node_id == 2:
                    api.send(0, "hello")

            def on_pulse(self, api, arrived):  # pragma: no cover
                pass

        spec = ProgramSpec("lonely", Lonely, all_nodes_initiate)
        with pytest.raises(UnknownLinkError, match=r"no link 2 -> 0"):
            run_synchronous(g, spec)

    def test_max_rounds_guard(self):
        class Ping(NodeProgram):
            def on_start(self, api):
                api.send(self.info.neighbors[0], 0)

            def on_pulse(self, api, arrived):
                for sender, value in arrived:
                    api.send(sender, value + 1)

        g = topology.path_graph(2)
        from repro.net import SyncRuntime

        with pytest.raises(RuntimeError, match="exceeded"):
            SyncRuntime(g, ProgramSpec("ping", Ping, all_nodes_initiate)).run(max_rounds=50)

    def test_sender_only_trigger(self):
        """A node that sent at pulse p-1 but received nothing is still pulsed."""

        class TwoStep(NodeProgram):
            def __init__(self, info):
                super().__init__(info)
                self.steps = 0

            def on_start(self, api):
                if self.info.node_id == 0:
                    api.send(self.info.neighbors[0], "a")

            def on_pulse(self, api, arrived):
                self.steps += 1
                if self.info.node_id == 0 and self.steps == 1:
                    assert arrived == ()
                    api.set_output("sender-pulsed")

        g = topology.path_graph(2)
        result = run_synchronous(
            g, ProgramSpec("two-step", TwoStep, all_nodes_initiate)
        )
        assert result.outputs[0] == "sender-pulsed"

    def test_arrivals_sorted_by_sender(self):
        class Recorder(NodeProgram):
            def on_start(self, api):
                if self.info.node_id != 1:
                    api.send(1, self.info.node_id)

            def on_pulse(self, api, arrived):
                if self.info.node_id == 1 and arrived:
                    api.set_output([s for s, _ in arrived])

        g = topology.star_graph(6)  # center 0; re-wire so node 1 is the hub
        g = topology.complete_graph(5)
        result = run_synchronous(
            g, ProgramSpec("recorder", Recorder, all_nodes_initiate)
        )
        assert result.outputs[1] == [0, 2, 3, 4]

    def test_record_messages(self):
        g = topology.path_graph(3)
        result = run_synchronous(g, bfs_spec(0), record_messages=True)
        assert (0, 0, 1, 0) in result.pulse_messages
        assert (1, 1, 2, 1) in result.pulse_messages
