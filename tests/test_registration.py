"""Tests for the registration abstraction (Section 3.2).

The harness runs :class:`RegistrationModule` over the asynchronous runtime on
a cluster tree, with an environment driver that makes scripted subsets of
nodes register at adversary-chosen times and deregister some time after their
registration completes.  Register Guarantees 1 and 2 (Lemmas 3.4/3.5) are
asserted verbatim on the recorded event timeline, across delay models.
"""

import random

import pytest

from repro.core.registration import (
    ClusterView,
    RegistrationModule,
    cluster_views_for,
)
from repro.covers import bfs_cluster_tree
from repro.net import (
    AsyncRuntime,
    ConstantDelay,
    Process,
    UniformDelay,
    standard_adversaries,
    topology,
)

TAG = 1


def make_tree(kind: str):
    if kind == "path":
        g = topology.path_graph(9)
        return g, bfs_cluster_tree(g, 0, members=g.nodes, root=0)
    if kind == "star":
        g = topology.star_graph(10)
        return g, bfs_cluster_tree(g, 0, members=g.nodes, root=0)
    if kind == "binary":
        g = topology.balanced_tree(2, 3)
        return g, bfs_cluster_tree(g, 0, members=g.nodes, root=0)
    if kind == "random":
        g = topology.random_tree(14, seed=5)
        return g, bfs_cluster_tree(g, 0, members=g.nodes, root=0)
    raise ValueError(kind)


class Timeline:
    """Shared recorder of registration lifecycle events."""

    def __init__(self):
        self.events = []
        self.registered_at = {}
        self.dereg_called_at = {}
        self.go_ahead_at = {}

    def record(self, time, node, kind):
        self.events.append((time, node, kind))
        if kind == "registered":
            self.registered_at[node] = time
        elif kind == "deregister":
            self.dereg_called_at[node] = time
        elif kind == "go_ahead":
            self.go_ahead_at[node] = time


def make_driver(tree, script, timeline):
    """Build a Process class driving the given register/dereg script.

    ``script``: node -> (register_delay, dereg_delay_after_registered).
    """

    class Driver(Process):
        def __init__(self, ctx):
            super().__init__(ctx)
            node = ctx.node_id
            views = cluster_views_for({0: tree}, node)
            self.module = RegistrationModule(
                node_id=node,
                clusters=views,
                send=lambda to, payload, priority: ctx.send(to, payload, priority),
                on_registered=self._on_registered,
                on_go_ahead=self._on_go_ahead,
                priority_fn=lambda tag: (0,),
            )

        def _on_registered(self, cluster_id, tag):
            node = self.ctx.node_id
            timeline.record(self.ctx.now, node, "registered")
            dereg_delay = script[node][1]
            self.ctx.schedule_environment_event(
                dereg_delay, lambda: self._deregister()
            )

        def _deregister(self):
            timeline.record(self.ctx.now, self.ctx.node_id, "deregister")
            self.module.deregister(0, TAG)

        def _on_go_ahead(self, cluster_id, tag):
            timeline.record(self.ctx.now, self.ctx.node_id, "go_ahead")
            self.ctx.set_output("free")

        def on_start(self):
            node = self.ctx.node_id
            if node in script:
                self.ctx.schedule_environment_event(
                    script[node][0], lambda: self.module.register(0, TAG)
                )

        def on_message(self, sender, payload):
            assert self.module.handle(sender, payload)

    return Driver


def run_scripted(tree_kind, script_seed, delay_model, num_registrants=None):
    graph, tree = make_tree(tree_kind)
    rng = random.Random(script_seed)
    nodes = sorted(tree.tree_nodes)
    if num_registrants is None:
        num_registrants = max(1, len(nodes) // 2)
    chosen = rng.sample(nodes, num_registrants)
    script = {
        v: (rng.uniform(0, 20), rng.uniform(0, 20)) for v in chosen
    }
    timeline = Timeline()
    runtime = AsyncRuntime(
        graph, make_driver(tree, script, timeline), delay_model
    )
    result = runtime.run(max_events=2_000_000)
    assert result.stop_reason == "quiescent"
    return script, timeline, result


ADVERSARIES = standard_adversaries(seed=3)


@pytest.mark.parametrize("tree_kind", ["path", "star", "binary", "random"])
@pytest.mark.parametrize("model", ADVERSARIES, ids=repr)
def test_register_guarantees(tree_kind, model):
    script, timeline, _ = run_scripted(tree_kind, script_seed=11, delay_model=model)

    # Everyone who registered eventually got registered, dereg'd, and freed
    # (Guarantee 2 liveness).
    assert set(timeline.registered_at) == set(script)
    assert set(timeline.dereg_called_at) == set(script)
    assert set(timeline.go_ahead_at) == set(script)

    # Guarantee 1: when v receives its Go-Ahead, every node registered before
    # v deregistered has already deregistered.
    for v, t_go in timeline.go_ahead_at.items():
        v_dereg = timeline.dereg_called_at[v]
        for u, u_registered in timeline.registered_at.items():
            if u_registered < v_dereg:
                assert timeline.dereg_called_at[u] <= t_go, (
                    f"{u} registered at {u_registered} (before {v} deregistered"
                    f" at {v_dereg}) but only deregistered at"
                    f" {timeline.dereg_called_at[u]} > go-ahead {t_go}"
                )

    # Sanity: Go-Ahead only after own deregistration (Lemma 3.9 corollary).
    for v, t_go in timeline.go_ahead_at.items():
        assert t_go >= timeline.dereg_called_at[v]


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_register_guarantees_many_schedules(seed):
    model = UniformDelay(seed=seed + 100)
    script, timeline, _ = run_scripted("random", script_seed=seed, delay_model=model)
    for v, t_go in timeline.go_ahead_at.items():
        v_dereg = timeline.dereg_called_at[v]
        for u, u_registered in timeline.registered_at.items():
            if u_registered < v_dereg:
                assert timeline.dereg_called_at[u] <= t_go


class TestComplexity:
    def test_single_registration_time_linear_in_height(self):
        """Lemma 3.4: registration and deregistration take O(h) time."""
        for n in (4, 8, 16, 32):
            g = topology.path_graph(n)
            tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
            script = {n - 1: (0.0, 1.0)}
            timeline = Timeline()
            runtime = AsyncRuntime(
                g, make_driver(tree, script, timeline), ConstantDelay(1.0)
            )
            runtime.run()
            h = n - 1
            # Register: up + down = 2h; go-ahead after dereg: 2h more.
            assert timeline.registered_at[n - 1] <= 2 * h + 1
            assert timeline.go_ahead_at[n - 1] <= timeline.dereg_called_at[n - 1] + 2 * h + 1

    def test_message_proportionality(self):
        """Lemma 3.5: messages O(#registrants * h), not O(tree size)."""
        g = topology.star_graph(64)
        tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
        script = {1: (0.0, 1.0), 2: (0.5, 1.0)}
        timeline = Timeline()
        runtime = AsyncRuntime(
            g, make_driver(tree, script, timeline), ConstantDelay(1.0)
        )
        result = runtime.run()
        # Two registrants at depth 1: a handful of messages, independent of
        # the 63 other leaves.
        assert result.messages <= 16

    def test_pipelined_registrations_share_dirty_path(self):
        """Registrations overlapping on a path reuse the dirty prefix."""
        g = topology.path_graph(16)
        tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
        script = {v: (0.0, 5.0) for v in range(8, 16)}
        timeline = Timeline()
        runtime = AsyncRuntime(
            g, make_driver(tree, script, timeline), ConstantDelay(1.0)
        )
        result = runtime.run()
        assert set(timeline.go_ahead_at) == set(script)


class TestApiErrors:
    def _module(self):
        recorded = []
        view = {0: ClusterView(cluster_id=0, parent=None, children=(1,))}
        return RegistrationModule(
            node_id=0,
            clusters=view,
            send=lambda *a: recorded.append(a),
            on_registered=lambda *a: None,
            on_go_ahead=lambda *a: None,
            priority_fn=lambda tag: (0,),
        )

    def test_double_register_rejected(self):
        module = self._module()
        module.register(0, TAG)
        with pytest.raises(ValueError, match="double-register"):
            module.register(0, TAG)

    def test_dereg_before_register_rejected(self):
        module = self._module()
        with pytest.raises(ValueError, match="deregisters"):
            module.deregister(0, TAG)

    def test_unknown_cluster_rejected(self):
        module = self._module()
        with pytest.raises(ValueError, match="not in cluster"):
            module.register(7, TAG)

    def test_foreign_payload_ignored(self):
        module = self._module()
        assert module.handle(1, ("other", "stuff")) is False

    def test_root_self_cycle(self):
        """Root registering and deregistering alone frees itself."""
        events = []
        view = {0: ClusterView(cluster_id=0, parent=None, children=())}
        module = RegistrationModule(
            node_id=0,
            clusters=view,
            send=lambda *a: events.append(("send", a)),
            on_registered=lambda c, t: events.append(("registered", c, t)),
            on_go_ahead=lambda c, t: events.append(("go", c, t)),
            priority_fn=lambda tag: (0,),
        )
        module.register(0, TAG)
        module.deregister(0, TAG)
        assert ("registered", 0, TAG) in events
        assert ("go", 0, TAG) in events
        assert not [e for e in events if e[0] == "send"]


class TestLinkPairResolution:
    """Supplying exactly one of links/send_link is a wiring bug: the module
    silently degrades to node-id sends, so it must at least warn, naming
    the missing half (DESIGN.md §10)."""

    def _make(self, **kwargs):
        view = {0: ClusterView(cluster_id=0, parent=None, children=())}
        return RegistrationModule(
            node_id=0,
            clusters=view,
            send=lambda *a: None,
            on_registered=lambda *a: None,
            on_go_ahead=lambda *a: None,
            priority_fn=lambda tag: (0,),
            **kwargs,
        )

    def test_links_without_send_link_warns(self):
        with pytest.warns(RuntimeWarning, match="'links' supplied without 'send_link'"):
            module = self._make(links={0: 0})
        # ...and the pair degrades to node-id sends as documented.
        assert module._send_link is not None
        module.register(0, TAG)  # runs on the identity fallback

    def test_send_link_without_links_warns(self):
        with pytest.warns(RuntimeWarning, match="'send_link' supplied without 'links'"):
            self._make(send_link=lambda *a: None)

    def test_both_or_neither_do_not_warn(self, recwarn):
        self._make()
        self._make(links={0: 0}, send_link=lambda *a: None)
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]
