"""Tests for CoverRegistry — the node-local cover views."""

import pytest

from repro.core import CoverRegistry
from repro.covers import build_ap_layered_cover, build_trivial_cover
from repro.covers.cover import LayeredCover
from repro.net import topology


@pytest.fixture
def registry():
    g = topology.grid_graph(4, 4)
    return g, CoverRegistry(build_ap_layered_cover(g, 4))


class TestRegistry:
    def test_global_ids_unique_across_levels(self, registry):
        g, reg = registry
        seen = set()
        for level in (0, 1, 2):
            for cid in reg.clusters_at_level(level):
                assert cid not in seen
                seen.add(cid)
                assert reg.cluster(cid).level == level

    def test_member_clusters_cover_every_node(self, registry):
        g, reg = registry
        for level in (0, 1, 2):
            for v in g.nodes:
                cids = reg.member_clusters(v, level)
                assert cids, (v, level)
                for cid in cids:
                    assert v in reg.cluster(cid).tree.members

    def test_views_include_steiner_participants(self, registry):
        g, reg = registry
        for v in g.nodes:
            views = reg.views_of(v)
            for cid, view in views.items():
                tree = reg.cluster(cid).tree
                assert v in tree.parent
                assert view.parent == tree.parent[v]

    def test_clamp_level(self, registry):
        _, reg = registry
        assert reg.clamp_level(-5) == 0
        assert reg.clamp_level(99) == reg.top_level
        assert reg.clamp_level(1) == 1

    def test_tree_clusters_filter_by_level(self, registry):
        g, reg = registry
        for v in g.nodes:
            for level in (0, 1, 2):
                for cid in reg.tree_clusters_of(v, level):
                    assert reg.cluster(cid).level == level
                    assert v in reg.cluster(cid).tree.parent

    def test_is_member(self, registry):
        g, reg = registry
        cid = reg.member_clusters(0, 1)[0]
        assert reg.is_member(0, cid)

    def test_views_consistent_parent_child(self, registry):
        """If u's view lists child c, then c's view lists parent u."""
        g, reg = registry
        for v in g.nodes:
            for cid, view in reg.views_of(v).items():
                for c in view.children:
                    child_view = reg.views_of(c)[cid]
                    assert child_view.parent == v
