"""Tests for the 2^t-thresholded asynchronous BFS (Sections 4.1/4.2).

The master correctness criterion is Lemma 4.10: under every adversary,
``pulse(v) == dist(v, S)`` for nodes within the threshold and unreached
nodes output infinity.
"""

import pytest

from repro.core import registry_for_threshold, run_thresholded_bfs
from repro.core.thresholded_bfs import UNREACHED, ThresholdedBFSCore
from repro.net import ConstantDelay, standard_adversaries, topology
from repro.net.graph import INFINITY, validate_tree

ADVERSARIES = standard_adversaries(seed=13)


def assert_correct(graph, sources, threshold, outcome):
    source_set = {sources} if isinstance(sources, int) else set(sources)
    expected = graph.bfs_distances(frozenset(source_set))
    for v in graph.nodes:
        want = expected[v] if expected[v] <= threshold else INFINITY
        assert outcome.distances[v] == want, (v, outcome.distances[v], want)
    # Parent pointers of reached non-sources form shortest-path edges.
    for v in graph.nodes:
        parent = outcome.parents[v]
        if outcome.distances[v] in (0, INFINITY):
            assert parent is None
        else:
            assert graph.has_edge(v, parent)
            assert expected[parent] == expected[v] - 1


class TestLemma410SingleSource:
    @pytest.mark.parametrize("model", ADVERSARIES, ids=repr)
    def test_path_deep(self, model):
        """Depth > 8 exercises the non-base dirty-mark registrations."""
        g = topology.path_graph(20)
        outcome = run_thresholded_bfs(g, 0, 16, model)
        assert_correct(g, 0, 16, outcome)

    @pytest.mark.parametrize("family", ["cycle", "grid", "tree", "barbell", "caterpillar"])
    def test_families(self, family):
        g = topology.make_topology(family, 24, seed=5)
        outcome = run_thresholded_bfs(g, 0, 8, ADVERSARIES[3])
        assert_correct(g, 0, 8, outcome)

    @pytest.mark.parametrize("threshold", [1, 2, 4, 8])
    def test_thresholds_cut(self, threshold):
        g = topology.path_graph(14)
        outcome = run_thresholded_bfs(g, 0, threshold, ADVERSARIES[2])
        assert_correct(g, 0, threshold, outcome)

    def test_single_node_graph(self):
        from repro.net import Graph

        g = Graph(1, [])
        outcome = run_thresholded_bfs(g, 0, 4, ConstantDelay(1.0))
        assert outcome.distances == {0: 0}

    def test_source_not_node_zero(self):
        g = topology.grid_graph(4, 4)
        outcome = run_thresholded_bfs(g, 9, 8, ADVERSARIES[4])
        assert_correct(g, 9, 8, outcome)


class TestLemma410MultiSource:
    @pytest.mark.parametrize("model", ADVERSARIES, ids=repr)
    def test_two_sources_grid(self, model):
        g = topology.grid_graph(5, 5)
        outcome = run_thresholded_bfs(g, {0, 24}, 8, model)
        assert_correct(g, {0, 24}, 8, outcome)

    def test_many_sources(self):
        g = topology.random_tree(30, seed=4)
        sources = {1, 7, 13, 22}
        outcome = run_thresholded_bfs(g, sources, 8, ADVERSARIES[5])
        assert_correct(g, sources, 8, outcome)

    def test_all_nodes_sources(self):
        g = topology.cycle_graph(10)
        outcome = run_thresholded_bfs(g, set(g.nodes), 2, ADVERSARIES[1])
        assert all(d == 0 for d in outcome.distances.values())


class TestComplexityShape:
    def test_message_bound_near_linear(self):
        """Theorem 4.11: O(m polylog) messages."""
        import math

        for n in (16, 32, 64):
            g = topology.cycle_graph(n)
            outcome = run_thresholded_bfs(g, 0, 8, ConstantDelay(1.0))
            polylog = math.log2(n) ** 3
            assert outcome.messages <= 40 * g.num_edges * polylog

    def test_registry_reuse(self):
        g = topology.grid_graph(4, 4)
        registry = registry_for_threshold(g, 8)
        a = run_thresholded_bfs(g, 0, 8, ConstantDelay(1.0), registry=registry)
        b = run_thresholded_bfs(g, 5, 8, ConstantDelay(1.0), registry=registry)
        assert_correct(g, 0, 8, a)
        assert_correct(g, 5, 8, b)

    def test_deterministic(self):
        g = topology.grid_graph(4, 4)
        model = ADVERSARIES[2]
        a = run_thresholded_bfs(g, 0, 8, model)
        b = run_thresholded_bfs(g, 0, 8, model)
        assert a.distances == b.distances
        assert a.messages == b.messages
        assert a.result.time_to_quiescence == b.result.time_to_quiescence


class TestApiErrors:
    def test_threshold_must_be_power_of_two(self):
        g = topology.path_graph(4)
        with pytest.raises(ValueError, match="power of two"):
            run_thresholded_bfs(g, 0, 3, ConstantDelay(1.0))

    def test_requires_sources(self):
        g = topology.path_graph(4)
        with pytest.raises(ValueError, match="source"):
            run_thresholded_bfs(g, set(), 4, ConstantDelay(1.0))

    def test_core_rejects_double_activation(self):
        g = topology.path_graph(4)
        registry = registry_for_threshold(g, 2)
        core = ThresholdedBFSCore(
            node_id=0,
            neighbors=g.neighbors(0),
            registry=registry,
            threshold=2,
            send=lambda *a: None,
            on_complete=lambda *a: None,
        )
        core.activate(False)
        with pytest.raises(ValueError, match="twice"):
            core.activate(False)

    def test_covered_source_rejected(self):
        g = topology.path_graph(4)
        registry = registry_for_threshold(g, 2)
        core = ThresholdedBFSCore(
            node_id=0,
            neighbors=g.neighbors(0),
            registry=registry,
            threshold=2,
            send=lambda *a: None,
            on_complete=lambda *a: None,
        )
        with pytest.raises(ValueError, match="covered"):
            core.activate(True, covered=True)
