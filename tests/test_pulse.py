"""Tests for pulse arithmetic — Definitions 4.3/4.4 and Lemmas 4.7/4.13/4.14/4.16."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pulse import (
    COVER_LEVEL_OFFSET,
    INFINITE_LEVEL,
    cover_level,
    gating_pulses_at,
    level,
    prev,
    prev_prev,
    registration_pulses_at,
    source_pulses,
)

PULSES = st.integers(min_value=1, max_value=1 << 16)


class TestLevel:
    def test_zero_has_infinite_level(self):
        assert level(0) == INFINITE_LEVEL

    @pytest.mark.parametrize(
        "p,expected", [(1, 0), (2, 1), (3, 0), (4, 2), (6, 1), (8, 3), (12, 2), (96, 5)]
    )
    def test_known_values(self, p, expected):
        assert level(p) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            level(-1)

    @settings(max_examples=200, deadline=None)
    @given(p=PULSES)
    def test_definition(self, p):
        lev = int(level(p))
        assert p % (1 << lev) == 0
        assert p % (1 << (lev + 1)) != 0


class TestPrev:
    @pytest.mark.parametrize(
        "p,expected",
        [(0, 0), (1, 0), (2, 0), (3, 2), (4, 0), (5, 2), (6, 4), (7, 6), (8, 0), (9, 6), (12, 8)],
    )
    def test_known_values(self, p, expected):
        assert prev(p) == expected

    @settings(max_examples=300, deadline=None)
    @given(p=PULSES)
    def test_definition_4_4(self, p):
        """prev(p) is the largest pulse of level l(p)+1 at most p - 2^l(p)."""
        lev = int(level(p))
        q = prev(p)
        if q > 0:
            assert level(q) == lev + 1
            assert q <= p - (1 << lev)
        # Maximality: no pulse of level l(p)+1 in (q, p - 2^l(p)].
        for candidate in range(max(q + 1, 1), p - (1 << lev) + 1):
            assert level(candidate) != lev + 1

    @settings(max_examples=300, deadline=None)
    @given(p=PULSES)
    def test_lemma_4_7_first_bound(self, p):
        assert p - prev(p) <= 3 * (1 << int(level(p)))

    @settings(max_examples=300, deadline=None)
    @given(p=PULSES)
    def test_lemma_4_7_second_bound(self, p):
        assert p - prev_prev(p) <= 9 * (1 << int(level(p)))

    @settings(max_examples=200, deadline=None)
    @given(p=PULSES)
    def test_prev_decreases(self, p):
        assert prev(p) < p

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            prev(-3)


class TestLemma413:
    """sum over p <= 2^t of 2^l(p) is O(t * 2^t)."""

    @pytest.mark.parametrize("t", [1, 3, 5, 8, 10])
    def test_sum_bound(self, t):
        total = sum(1 << int(level(p)) for p in range(1, (1 << t) + 1))
        assert total <= (t + 1) * (1 << t)


class TestLemma414:
    """For any p1, only O(t) pulses p <= 2^t have prev_prev(p) <= p1 <= p."""

    @pytest.mark.parametrize("t", [4, 6, 8])
    def test_window_count(self, t):
        max_pulse = 1 << t
        for p1 in range(0, max_pulse + 1, max(1, max_pulse // 16)):
            count = sum(
                1 for p in range(1, max_pulse + 1) if prev_prev(p) <= p1 <= p
            )
            assert count <= 10 * (t + 1)


class TestRegistrationPulses:
    def test_source_pulses_lemma_4_16(self):
        for t in (3, 5, 8, 10):
            pulses = source_pulses(1 << t)
            assert len(pulses) <= 10 * (t + 1)
            assert all(prev_prev(p) == 0 for p in pulses)

    def test_registration_pulses_match_definition(self):
        max_pulse = 64
        for w in range(0, 33):
            pulses = registration_pulses_at(w, max_pulse)
            assert pulses == [
                p for p in range(1, max_pulse + 1) if prev_prev(p) == w
            ]

    def test_gating_pulses_match_definition(self):
        max_pulse = 64
        for q in range(0, 33):
            pulses = gating_pulses_at(q, max_pulse)
            assert pulses == [p for p in range(1, max_pulse + 1) if prev(p) == q]

    @settings(max_examples=100, deadline=None)
    @given(p=st.integers(min_value=1, max_value=512))
    def test_gating_and_registration_consistent(self, p):
        """p is gated at pulse prev(p) and registered at pulse prev_prev(p)."""
        q = prev(p)
        w = prev_prev(p)
        assert p in gating_pulses_at(q, p)
        assert p in registration_pulses_at(w, p)


class TestCoverLevel:
    def test_offset(self):
        assert cover_level(1) == COVER_LEVEL_OFFSET
        assert cover_level(4) == 2 + COVER_LEVEL_OFFSET

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            cover_level(0)
