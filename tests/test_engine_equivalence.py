"""Trace-equivalence of the typed-record transport against a reference engine.

The seed revision's transport scheduled one lambda-closure event per delivery
and per acknowledgment.  The rebuilt engine (typed records, fused
acknowledgments with reserved sequence numbers, per-link delay streams) must
be *observationally identical*: same delivery order, same delivery times,
same metrics, same outputs — for every delay model in the standard adversary
family, across topologies and seeds, for plain protocols and for the full
synchronizer stack.

``ReferenceRuntime`` below is a faithful port of the seed engine (closure
events, ack delay drawn at delivery time).  The one metric excluded from the
comparison is ``events_fired``: the fused engine intentionally does not fire
an event for acknowledgments nobody waits on, so it reports fewer events (the
acks themselves are still counted and still bound quiescence time).
"""

import heapq
from math import inf

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.programs import bfs_spec, broadcast_echo_spec, flood_max_spec
from repro.core.bfs_runner import registry_for_threshold
from repro.core.sweep import SynchronizerSweep
from repro.core.synchronizer import SynchronizerProcess, pulse_bound_for
from repro.net import topology
from repro.net.async_runtime import AsyncResult, AsyncRuntime, Process
from repro.net.delays import standard_adversaries
from repro.net.faults import DETECT_TIMEOUT, FaultSchedule
from repro.net.graph import Graph
from repro.net.sweep import AsyncSweep


class _RefLink:
    __slots__ = ("busy", "outbox", "seq", "injected")

    def __init__(self):
        self.busy = False
        self.outbox = []
        self.seq = 0
        self.injected = 0


class _RefContext:
    """Seed-equivalent ProcessContext."""

    __slots__ = ("_runtime", "node_id", "neighbors")

    def __init__(self, runtime, node_id):
        self._runtime = runtime
        self.node_id = node_id
        self.neighbors = runtime.graph.neighbors(node_id)

    @property
    def now(self):
        return self._runtime.now

    def send(self, to, payload, priority=(0,)):
        self._runtime._enqueue(self.node_id, to, payload, priority)

    def schedule_environment_event(self, delay, callback):
        runtime = self._runtime
        if runtime._faults is not None:
            # Same crash guard as the packed engine: the event stays on the
            # heap (schedules are immutable) but fires as a no-op once the
            # owner is dead.  Dead window is [crash, rejoin).
            t_crash = runtime._crash_t[self.node_id]
            if t_crash != inf:
                t_rejoin = runtime._rejoin_t[self.node_id]
                inner = callback

                def callback(_cb=inner, _rt=runtime, _t=t_crash, _r=t_rejoin):
                    if _rt._now < _t or _rt._now >= _r:
                        _cb()

        runtime._schedule(delay, callback)

    def set_output(self, value):
        self._runtime._record_output(self.node_id, value)

    def edge_weight(self, to):
        return self._runtime.graph.weight(self.node_id, to)


class ReferenceRuntime:
    """Direct port of the seed engine: closure events, two per message."""

    def __init__(self, graph, process_factory, delay_model, trace=None,
                 faults=None, detect_timeout=DETECT_TIMEOUT):
        self.graph = graph
        self.delay_model = delay_model
        self.trace = trace
        self._factory = process_factory
        self._heap = []
        self._seq = 0
        self._now = 0.0
        self._fired = 0
        self._links = {}
        for u, v in graph.edges:
            self._links[(u, v)] = _RefLink()
            self._links[(v, u)] = _RefLink()
        self.messages = 0
        self.acks = 0
        self.dropped = 0
        self.rejoined = {}
        if faults is not None and faults.is_empty():
            faults = None
        self._faults = faults
        self.detect_timeout = detect_timeout
        # Per-node incarnation counters: a transport closure captures the
        # epochs of both endpoints when it is scheduled and is *void* at
        # fire time if either changed — the reference reading of the
        # packed engine's stale-seq watermarks (DESIGN.md §15).
        self._epoch = {v: 0 for v in graph.nodes}
        if faults is not None:
            self._crash_t = {v: faults.crash_time(v) for v in graph.nodes}
            self._rejoin_t = {v: faults.rejoin_time(v) for v in graph.nodes}
            self._down = {
                pair: faults.down_checker(*pair) for pair in self._links
            }
            self._drop = {
                pair: faults.drop_checker(*pair) for pair in self._links
            }
        else:
            self._rejoin_t = {v: inf for v in graph.nodes}
        self.outputs = {}
        self.output_time = {}
        self._time_to_output = 0.0
        self.processes = {
            v: process_factory(_RefContext(self, v)) for v in graph.nodes
        }

    @property
    def now(self):
        return self._now

    def _schedule(self, delay, callback):
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback))
        self._seq += 1

    def _record_output(self, node, value):
        self.outputs[node] = value
        self.output_time[node] = self._now
        self._time_to_output = max(self._time_to_output, self._now)

    def _enqueue(self, u, v, payload, priority):
        link = self._links.get((u, v))
        if link is None:
            raise ValueError(f"no link {u} -> {v}")
        heapq.heappush(link.outbox, (priority, link.seq, payload))
        link.seq += 1
        if not link.busy:
            self._inject(u, v, link)

    def _void(self, u, v, eu, ev):
        """True when a transport closure scheduled at epochs ``(eu, ev)``
        fires after either endpoint re-joined — it was in flight at the
        rejoin instant and the new incarnation owns the link now."""
        epoch = self._epoch
        return epoch[u] != eu or epoch[v] != ev

    def _inject(self, u, v, link):
        _, _, payload = heapq.heappop(link.outbox)
        link.busy = True
        link.injected += 1
        self.messages += 1
        delay = self.delay_model(u, v, link.injected, self._now)
        eu, ev = self._epoch[u], self._epoch[v]
        self._schedule(delay, lambda: self._deliver(u, v, payload, eu, ev))

    def _deliver(self, u, v, payload, eu, ev):
        link = self._links[(u, v)]
        if self._faults is not None:
            if self._void(u, v, eu, ev):
                # Void across a rejoin: the message vanishes without an
                # acknowledgment, but the link was already reset at the
                # rejoin so nothing stays jammed.
                self.dropped += 1
                return
            if self._crash_t[v] <= self._now < self._rejoin_t[v]:
                # Receiver is dead: the message is lost and the link jams —
                # no acknowledgment ever frees it (fail-stop semantics).
                self.dropped += 1
                return
            down = self._down[(u, v)]
            if down is not None:
                end = down(self._now)
                if end > 0.0:
                    # Down interval: deferral, not loss — retry at its end
                    # (injection-time epochs ride along the retries).
                    self._schedule(
                        end - self._now,
                        lambda: self._deliver(u, v, payload, eu, ev)
                    )
                    return
            drop = self._drop[(u, v)]
            if drop is not None and drop(link.injected):
                # Receiver-side loss with a link-layer acknowledgment: the
                # payload never reaches the process but the link frees.
                self.dropped += 1
                self.acks += 1
                ack_delay = self.delay_model(v, u, -link.injected, self._now)
                aeu, aev = self._epoch[u], self._epoch[v]
                self._schedule(
                    ack_delay, lambda: self._ack_only(u, v, aeu, aev)
                )
                return
        if self.trace is not None:
            self.trace(self._now, u, v, payload)
        self.acks += 1
        ack_delay = self.delay_model(v, u, -link.injected, self._now)
        aeu, aev = self._epoch[u], self._epoch[v]
        self._schedule(
            ack_delay, lambda: self._ack(u, v, payload, aeu, aev)
        )
        self.processes[v].on_message(u, payload)

    def _ack(self, u, v, payload, eu, ev):
        link = self._links[(u, v)]
        if self._faults is not None:
            if self._void(u, v, eu, ev):
                # Void ack: the new incarnation owns the link state.
                return
            down = self._down[(u, v)]
            if down is not None:
                end = down(self._now)
                if end > 0.0:
                    self._schedule(
                        end - self._now,
                        lambda: self._ack(u, v, payload, eu, ev)
                    )
                    return
            link.busy = False
            if self._crash_t[u] <= self._now < self._rejoin_t[u]:
                # Dead sender: no callback, and its outbox dies with it.
                return
            self.processes[u].on_delivered(v, payload)
            if link.outbox:
                self._inject(u, v, link)
            return
        link.busy = False
        self.processes[u].on_delivered(v, payload)
        if link.outbox:
            self._inject(u, v, link)

    def _ack_only(self, u, v, eu, ev):
        """Link-layer ack of a dropped payload: frees and drains, but the
        sender gets no ``on_delivered`` (the message was lost)."""
        if self._void(u, v, eu, ev):
            return
        link = self._links[(u, v)]
        down = self._down[(u, v)]
        if down is not None:
            end = down(self._now)
            if end > 0.0:
                self._schedule(
                    end - self._now, lambda: self._ack_only(u, v, eu, ev)
                )
                return
        link.busy = False
        if self._crash_t[u] <= self._now < self._rejoin_t[u]:
            return
        if link.outbox:
            self._inject(u, v, link)

    def run(self, max_time=None):
        if self._faults is not None:
            return self._run_faulty(max_time)
        for v in sorted(self.graph.nodes):
            self._schedule(0.0, self.processes[v].on_start)
        stop_reason = "quiescent"
        while self._heap:
            if max_time is not None and self._heap[0][0] > max_time:
                stop_reason = "max_time"
                break
            time, _, callback = heapq.heappop(self._heap)
            self._now = time
            self._fired += 1
            callback()
        return AsyncResult(
            time_to_output=self._time_to_output,
            time_to_quiescence=self._now,
            messages=self.messages,
            acks=self.acks,
            outputs=dict(self.outputs),
            output_time=dict(self.output_time),
            events_fired=self._fired,
            stop_reason=stop_reason,
        )

    def _rejoin(self, v):
        """Node ``v`` returns with fresh state: bump its epoch (voiding
        every in-flight incident closure), reset both directions of every
        incident link, rebuild the process, start it, and arm the
        ``on_neighbor_alive`` recovery detectors — mirroring the packed
        engine's ``_rejoin_node`` step for step."""
        self._epoch[v] += 1
        for w in self.graph.neighbors(v):
            for pair in ((v, w), (w, v)):
                link = self._links[pair]
                link.busy = False
                link.outbox.clear()
        self.processes[v] = self._factory(_RefContext(self, v))
        self.rejoined[v] = self._now
        # Blank state includes the output register (time_to_output keeps
        # its high-water mark, matching the packed engine).
        self.outputs.pop(v, None)
        self.output_time.pop(v, None)
        self.processes[v].on_start()
        crash_t = self._crash_t
        rejoin_t = self._rejoin_t
        base_alive = Process.on_neighbor_alive
        t_fire = self._now + self.detect_timeout
        for u in sorted(self.graph.neighbors(v)):
            if crash_t[u] <= t_fire < rejoin_t[u]:
                continue  # observer dead at the fire time
            if type(self.processes[u]).on_neighbor_alive is base_alive:
                continue
            self._schedule(
                t_fire - self._now,
                lambda uu=u, vv=v: self.processes[uu].on_neighbor_alive(vv),
            )

    def _run_faulty(self, max_time=None):
        # Mirrors the packed engine's fault loop: on_start runs directly
        # (ascending node order, crashed-at-zero nodes skipped), then the
        # failure detectors are scheduled, then the rejoin closures, then
        # the heap drains.
        crash_t = self._crash_t
        rejoin_t = self._rejoin_t
        for v in sorted(self.graph.nodes):
            if crash_t[v] <= 0.0:
                continue
            self.processes[v].on_start()
        base_dead = Process.on_neighbor_dead
        for c in sorted(self.graph.nodes):
            t_crash = crash_t[c]
            if t_crash == inf:
                continue
            t_fire = t_crash + self.detect_timeout
            if rejoin_t[c] <= t_fire:
                continue  # back before the timeout: no accusation
            for u in sorted(self.graph.neighbors(c)):
                if crash_t[u] <= t_fire < rejoin_t[u]:
                    continue
                proc = self.processes[u]
                if type(proc).on_neighbor_dead is base_dead:
                    continue
                # Fire-time lookup, like the packed engine: a re-joined
                # observer's fresh incarnation gets the callback.
                self._schedule(
                    t_fire,
                    lambda uu=u, cc=c: self.processes[uu].on_neighbor_dead(cc),
                )
        for v in sorted(self.graph.nodes):
            t_rejoin = rejoin_t[v]
            if t_rejoin < inf:
                self._schedule(t_rejoin, lambda vv=v: self._rejoin(vv))
        stop_reason = "quiescent"
        while self._heap:
            if max_time is not None and self._heap[0][0] > max_time:
                stop_reason = "max_time"
                break
            time, _, callback = heapq.heappop(self._heap)
            self._now = time
            self._fired += 1
            callback()
        return AsyncResult(
            time_to_output=self._time_to_output,
            time_to_quiescence=self._now,
            messages=self.messages,
            acks=self.acks,
            outputs=dict(self.outputs),
            output_time=dict(self.output_time),
            events_fired=self._fired,
            stop_reason=stop_reason,
            dropped=self.dropped,
        )


# ----------------------------------------------------------------------
# Workload protocols
# ----------------------------------------------------------------------
class Gossip(Process):
    """Max-flood: every node spreads the largest id it has seen."""

    def on_start(self):
        self.best = self.ctx.node_id
        for v in self.ctx.neighbors:
            self.ctx.send(v, self.best)

    def on_message(self, sender, value):
        if value > self.best:
            self.best = value
            self.ctx.set_output(value)
            for v in self.ctx.neighbors:
                self.ctx.send(v, value)


class PriorityPingPong(Process):
    """Exercises the outbox: interleaved priorities plus an ack-driven tail."""

    ROUNDS = 6

    def on_start(self):
        if self.ctx.node_id == 0:
            for i in range(3):
                self.ctx.send(self.ctx.neighbors[0], ("lo", i), priority=(2, i))
            for i in range(3):
                self.ctx.send(self.ctx.neighbors[0], ("hi", i), priority=(1, i))

    def on_message(self, sender, payload):
        log = getattr(self, "log", [])
        log.append((self.ctx.now, sender, payload))
        self.log = log
        self.ctx.set_output(list(log))
        kind, k = payload
        if kind == "hi" and k < self.ROUNDS:
            self.ctx.send(sender, ("hi", k + 1))

    def on_delivered(self, to, payload):
        tally = getattr(self, "tally", 0)
        self.tally = tally + 1


class AckChainSender(Process):
    """Bursts on one link and keeps sending from ``on_delivered``.

    This drives the reference engine's double-inject quirk: the callback
    fires after ``busy`` clears but before the outbox drains, so its send
    and the drain each inject — two messages in flight on one link.  The
    rebuilt transport must then *discard* the ack delay pre-drawn by the
    pair stream and re-draw it at the link's latest injection number
    (``_ack_delay``), or the schedules diverge.
    """

    burst = 3
    extra = 5

    def on_start(self):
        if self.ctx.node_id == 0:
            for i in range(self.burst):
                self.ctx.send(1, ("m", i))

    def on_message(self, sender, payload):
        log = getattr(self, "log", [])
        log.append((self.ctx.now, payload))
        self.log = log
        self.ctx.set_output(list(log))

    def on_delivered(self, to, payload):
        sent = getattr(self, "sent_extra", 0)
        if self.ctx.node_id == 0 and sent < self.extra:
            self.sent_extra = sent + 1
            self.ctx.send(to, ("x", sent))


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    burst=st.integers(min_value=1, max_value=4),
    extra=st.integers(min_value=0, max_value=6),
    model_idx=st.integers(min_value=0, max_value=7),
)
def test_double_inject_ack_fallback_equivalence(seed, burst, extra, model_idx):
    """Property: an ``on_delivered`` callback injecting onto the same link
    observes the re-drawn ack delay at the *latest* injection number on
    both engines — the pre-drawn pair-stream value must be discarded
    whenever the callback's send slipped an extra injection in first."""
    graph = topology.path_graph(2)
    process_cls = type(
        "AckChain", (AckChainSender,), {"burst": burst, "extra": extra}
    )
    # Fresh model instances per engine: the hashed models memoize per-link
    # state, and the draws must come out identical from a cold start.
    ref_model = standard_adversaries(seed)[model_idx]
    new_model = standard_adversaries(seed)[model_idx]
    ref_trace, new_trace = [], []
    ref_result = ReferenceRuntime(
        graph, process_cls, ref_model,
        trace=lambda t, u, v, p: ref_trace.append((t, u, v, p)),
    ).run()
    new_result = AsyncRuntime(
        graph, process_cls, new_model,
        trace=lambda t, u, v, p: new_trace.append((t, u, v, p)),
    ).run()
    _assert_equivalent(ref_trace, ref_result, new_trace, new_result)


class EnvResender(Process):
    """Sends on one link at environment-chosen times.

    Each later send races the previous message's *fused* acknowledgment
    (nothing waits on these acks, so they are reservations, not events):
    depending on the adversary's draws the send either waits on the
    materialized drain — which must fire at exactly the reserved
    (time, seq) identity — or finds the reservation in the logical past and
    injects immediately.  Trace equivalence against the reference engine
    (which pushes every ack eagerly with the same sequence numbers) pins
    the identity on both engines, including ties at the drain instant.
    """

    times = (0.5, 1.5)

    def on_start(self):
        if self.ctx.node_id == 0:
            self.ctx.send(1, ("m", 0))
            for i, delay in enumerate(self.times):
                self.ctx.schedule_environment_event(
                    delay, lambda i=i: self.ctx.send(1, ("m", i + 1))
                )

    def on_message(self, sender, payload):
        log = getattr(self, "log", [])
        log.append((self.ctx.now, payload))
        self.log = log
        self.ctx.set_output(list(log))


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    model_idx=st.integers(min_value=0, max_value=7),
    times=st.lists(
        st.floats(min_value=0.01, max_value=6.0, allow_nan=False,
                  allow_infinity=False),
        min_size=1, max_size=5,
    ),
)
def test_reserved_ack_identity_under_materialization(seed, model_idx, times):
    """Property: deferred drains fire at exactly their reserved (time, seq)
    on both engines — environment sends at arbitrary times race the fused
    acknowledgments of earlier messages on the same link, covering both the
    materialize (reservation in the logical future) and drop (logical past)
    paths across the whole adversary family."""
    graph = topology.path_graph(2)
    process_cls = type("EnvResend", (EnvResender,), {"times": tuple(times)})
    ref_model = standard_adversaries(seed)[model_idx]
    new_model = standard_adversaries(seed)[model_idx]
    ref_trace, new_trace = [], []
    ref_result = ReferenceRuntime(
        graph, process_cls, ref_model,
        trace=lambda t, u, v, p: ref_trace.append((t, u, v, p)),
    ).run()
    new_result = AsyncRuntime(
        graph, process_cls, new_model,
        trace=lambda t, u, v, p: new_trace.append((t, u, v, p)),
    ).run()
    _assert_equivalent(ref_trace, ref_result, new_trace, new_result)


TOPOLOGIES = {
    "cycle12": lambda: topology.cycle_graph(12),
    "grid3x4": lambda: topology.grid_graph(3, 4),
    "tree13": lambda: topology.random_tree(13, seed=5),
}


def _run_both(graph, factory, model):
    ref_trace, new_trace = [], []
    ref = ReferenceRuntime(
        graph, factory, model, trace=lambda t, u, v, p: ref_trace.append((t, u, v, p))
    )
    ref_result = ref.run()
    new = AsyncRuntime(
        graph, factory, model, trace=lambda t, u, v, p: new_trace.append((t, u, v, p))
    )
    new_result = new.run()
    return ref_trace, ref_result, new_trace, new_result


def _assert_equivalent(ref_trace, ref_result, new_trace, new_result):
    assert new_trace == ref_trace  # identical delivery order, times, payloads
    assert new_result.outputs == ref_result.outputs
    assert new_result.output_time == ref_result.output_time
    assert new_result.messages == ref_result.messages
    assert new_result.acks == ref_result.acks
    assert new_result.time_to_output == ref_result.time_to_output
    assert new_result.time_to_quiescence == ref_result.time_to_quiescence
    assert new_result.stop_reason == ref_result.stop_reason
    assert new_result.dropped == ref_result.dropped


class FaultObservantGossip(Gossip):
    """Gossip plus failure/recovery-detector recorders: the detection times
    and the order the detectors fire in are part of the pinned schedule —
    including the ``on_neighbor_alive`` firings a rejoin arms."""

    def _publish(self):
        self.ctx.set_output((
            "best", self.best,
            "dead", tuple(getattr(self, "dead_log", ())),
            "alive", tuple(getattr(self, "alive_log", ())),
        ))

    def on_neighbor_dead(self, neighbor):
        log = getattr(self, "dead_log", [])
        log.append((self.ctx.now, neighbor))
        self.dead_log = log
        self._publish()

    def on_neighbor_alive(self, neighbor):
        log = getattr(self, "alive_log", [])
        log.append((self.ctx.now, neighbor))
        self.alive_log = log
        self._publish()


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fault_seed=st.integers(min_value=0, max_value=10_000),
    model_idx=st.integers(min_value=0, max_value=7),
    topo=st.sampled_from(sorted(TOPOLOGIES)),
    crash_rate=st.floats(min_value=0.0, max_value=0.4, allow_nan=False),
    down_rate=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    drop_rate=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
    rejoin_rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    recurrent=st.booleans(),
)
def test_fault_schedule_equivalence(
    seed, fault_seed, model_idx, topo, crash_rate, down_rate, drop_rate,
    rejoin_rate, recurrent,
):
    """Property: for an arbitrary seeded ``FaultSchedule`` — now including
    rejoins and recurrent (flapping) links — crossed with every delay model
    in the adversary family, the packed engine's faulty run is
    byte-identical to the reference engine's — same delivery trace, same
    drop count, same detector firings (dead *and* alive), same metrics."""
    graph = TOPOLOGIES[topo]()
    faults = FaultSchedule(
        seed=fault_seed, crash_rate=crash_rate,
        down_rate=down_rate, drop_rate=drop_rate,
        rejoin_rate=rejoin_rate,
        # recurrent=True requires down intervals to repeat.
        recurrent=recurrent and down_rate > 0.0,
    )
    ref_model = standard_adversaries(seed)[model_idx]
    new_model = standard_adversaries(seed)[model_idx]
    ref_trace, new_trace = [], []
    ref_result = ReferenceRuntime(
        graph, FaultObservantGossip, ref_model, faults=faults,
        trace=lambda t, u, v, p: ref_trace.append((t, u, v, p)),
    ).run()
    new_result = AsyncRuntime(
        graph, FaultObservantGossip, new_model, faults=faults,
        trace=lambda t, u, v, p: new_trace.append((t, u, v, p)),
    ).run()
    _assert_equivalent(ref_trace, ref_result, new_trace, new_result)


@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_gossip_faulty_equivalence_across_adversaries(topo, seed):
    """Deterministic cousin of the property above: a fixed mixed fault
    schedule (crashes + downs + drops) against all eight adversaries."""
    graph = TOPOLOGIES[topo]()
    faults = FaultSchedule(
        seed=seed + 17, crash_rate=0.2, down_rate=0.3, drop_rate=0.1
    )
    for model in standard_adversaries(seed):
        ref_trace, new_trace = [], []
        ref_result = ReferenceRuntime(
            graph, FaultObservantGossip, model, faults=faults,
            trace=lambda t, u, v, p: ref_trace.append((t, u, v, p)),
        ).run()
        new_result = AsyncRuntime(
            graph, FaultObservantGossip, model, faults=faults,
            trace=lambda t, u, v, p: new_trace.append((t, u, v, p)),
        ).run()
        _assert_equivalent(ref_trace, ref_result, new_trace, new_result)


@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_gossip_dynamic_equivalence_across_adversaries(topo, seed):
    """Dynamic-network cousin: every crash re-joins and the down intervals
    recur (flapping links) — the full §15 semantics, pinned against the
    reference engine for all eight adversaries."""
    graph = TOPOLOGIES[topo]()
    faults = FaultSchedule(
        seed=seed + 29, crash_rate=0.3, down_rate=0.25, drop_rate=0.1,
        rejoin_rate=1.0, recurrent=True,
    )
    for model in standard_adversaries(seed):
        ref_trace, new_trace = [], []
        ref_result = ReferenceRuntime(
            graph, FaultObservantGossip, model, faults=faults,
            trace=lambda t, u, v, p: ref_trace.append((t, u, v, p)),
        ).run()
        new_result = AsyncRuntime(
            graph, FaultObservantGossip, model, faults=faults,
            trace=lambda t, u, v, p: new_trace.append((t, u, v, p)),
        ).run()
        _assert_equivalent(ref_trace, ref_result, new_trace, new_result)


@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_gossip_equivalence_across_adversaries(topo, seed):
    graph = TOPOLOGIES[topo]()
    for model in standard_adversaries(seed):
        _assert_equivalent(*_run_both(graph, Gossip, model))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_priority_and_ack_equivalence(seed):
    graph = topology.path_graph(2)
    for model in standard_adversaries(seed):
        _assert_equivalent(*_run_both(graph, PriorityPingPong, model))


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("max_time", [0.5, 1.5, 2.5, 7.0])
def test_max_time_equivalence(seed, max_time):
    """Deadline semantics must agree even when the last pending work is a
    fused acknowledgment (which never enters the new engine's heap)."""
    graph = topology.path_graph(3)
    for model in standard_adversaries(seed):
        ref = ReferenceRuntime(graph, Gossip, model).run(max_time=max_time)
        new = AsyncRuntime(graph, Gossip, model).run(max_time=max_time)
        assert new.stop_reason == ref.stop_reason, repr(model)
        assert new.time_to_quiescence == ref.time_to_quiescence, repr(model)
        assert new.outputs == ref.outputs
        assert new.messages == ref.messages


@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
@pytest.mark.parametrize("seed", [0, 1])
def test_raw_event_accounting_matches_reference(topo, seed):
    """``count_fused_acks=True`` restores the seed engine's exact event
    count: fused vs raw diverge only by the fused-ack count."""
    graph = TOPOLOGIES[topo]()
    for model in standard_adversaries(seed):
        ref = ReferenceRuntime(graph, Gossip, model).run()
        raw = AsyncRuntime(graph, Gossip, model, count_fused_acks=True).run()
        fused = AsyncRuntime(graph, Gossip, model).run()
        assert raw.events_fired == ref.events_fired, repr(model)
        assert 0 <= raw.events_fired - fused.events_fired <= raw.acks


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("max_time", [0.5, 1.5, 2.5, 7.0])
def test_raw_event_accounting_under_deadline(seed, max_time):
    """Raw accounting agrees with the reference engine even when the run is
    cut off with reservations outstanding on both sides of the deadline."""
    graph = topology.path_graph(3)
    for model in standard_adversaries(seed):
        ref = ReferenceRuntime(graph, Gossip, model).run(max_time=max_time)
        raw = AsyncRuntime(graph, Gossip, model, count_fused_acks=True).run(
            max_time=max_time
        )
        assert raw.events_fired == ref.events_fired, repr(model)
        assert raw.stop_reason == ref.stop_reason, repr(model)


@pytest.mark.parametrize("seed", [0, 2])
def test_sweep_replays_match_reference_engine(seed):
    """AsyncSweep replays are trace-identical to the reference engine for
    every delay model, over one shared skeleton."""
    graph = topology.grid_graph(3, 4)
    sweep = AsyncSweep(graph, Gossip)
    for model in standard_adversaries(seed):
        ref_trace, new_trace = [], []
        ref_result = ReferenceRuntime(
            graph, Gossip, model,
            trace=lambda t, u, v, p: ref_trace.append((t, u, v, p)),
        ).run()
        new_result = sweep.run(
            model, trace=lambda t, u, v, p: new_trace.append((t, u, v, p))
        )
        _assert_equivalent(ref_trace, ref_result, new_trace, new_result)


@pytest.mark.parametrize("seed", [0, 2])
def test_synchronizer_sweep_replays_match_reference_engine(seed):
    """The full synchronizer stack through SynchronizerSweep is
    trace-equivalent to the reference engine per delay model — one shared
    cover/registry/pulse-bound setup cannot perturb a single event."""
    graph = topology.cycle_graph(12)
    spec = bfs_spec(0)
    sweep = SynchronizerSweep(graph, spec)
    for model in standard_adversaries(seed):
        ref_trace, new_trace = [], []
        ref_result = ReferenceRuntime(
            graph, sweep.process_cls, model,
            trace=lambda t, u, v, p: ref_trace.append((t, u, v, p)),
        ).run()
        runtime = sweep._sweep.runtime(
            model, trace=lambda t, u, v, p: new_trace.append((t, u, v, p))
        )
        new_result = runtime.run()
        _assert_equivalent(ref_trace, ref_result, new_trace, new_result)


@pytest.mark.parametrize("spec_factory", [
    lambda: bfs_spec(0),
    lambda: broadcast_echo_spec(0),
    flood_max_spec,
])
@pytest.mark.parametrize("seed", [0, 2])
def test_synchronizer_equivalence(spec_factory, seed):
    """The full synchronizer stack is trace-equivalent on both engines."""
    graph = topology.cycle_graph(12)
    spec = spec_factory()
    max_pulse = pulse_bound_for(graph, spec)
    registry = registry_for_threshold(graph, max_pulse)
    namespace = dict(
        spec=spec,
        registry=registry,
        max_pulse=max_pulse,
        initiators=frozenset(spec.initiators(graph)),
        infos=spec.make_infos(graph),
    )
    process_cls = type("EquivSynchronizer", (SynchronizerProcess,), namespace)
    for model in standard_adversaries(seed):
        _assert_equivalent(*_run_both(graph, process_cls, model))
