"""Tests for the deterministic event queue."""

import pytest

from repro.net import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        assert q.run() == "quiescent"
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_creation_order(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(1.0, lambda i=i: fired.append(i))
        q.run()
        assert fired == list(range(10))

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(0.5, lambda: seen.append(q.now))
        q.schedule(1.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [0.5, 1.5]  # both scheduled at time 0

    def test_nested_scheduling(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append(("first", q.now))
            q.schedule(1.0, lambda: fired.append(("second", q.now)))

        q.schedule(1.0, first)
        q.run()
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: q.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError):
            q.run()


class TestRunLimits:
    def test_max_time_stops_before_event(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(10.0, lambda: fired.append(2))
        assert q.run(max_time=5.0) == "max_time"
        assert fired == [1]
        assert q.pending == 1

    def test_max_events(self):
        q = EventQueue()
        for _ in range(5):
            q.schedule(1.0, lambda: None)
        assert q.run(max_events=3) == "max_events"
        assert q.fired == 3

    def test_step_on_empty(self):
        assert EventQueue().step() is False
