"""Tests for the deterministic event queue and the packed record codes."""

import pytest

from repro.net import EventQueue
from repro.net.events import (
    CODE_ACK,
    CODE_ACK_PAYLOAD,
    CODE_DELIVER,
    CODE_DELIVER_PAYLOAD,
    EV_ACK,
    EV_ACK_PAYLOAD,
    EV_CALLBACK,
    EV_DELIVER,
    EV_DELIVER_PAYLOAD,
    LINK_BITS,
    LINK_MASK,
)


class TestPackedCodes:
    def test_code_packs_kind_and_link_id(self):
        for kind, base in [
            (EV_DELIVER_PAYLOAD, CODE_DELIVER_PAYLOAD),
            (EV_ACK_PAYLOAD, CODE_ACK_PAYLOAD),
            (EV_ACK, CODE_ACK),
            (EV_DELIVER, CODE_DELIVER),
        ]:
            for lid in (0, 1, 517, LINK_MASK):
                code = base + lid
                assert code >> LINK_BITS == kind
                assert code & LINK_MASK == lid

    def test_kind_ranges_are_disjoint_and_ordered(self):
        """Dispatch compares codes against the bases directly, so every
        kind's code range must sit strictly between its neighbors."""
        assert EV_CALLBACK == 0
        bases = [CODE_DELIVER_PAYLOAD, CODE_ACK_PAYLOAD, CODE_ACK, CODE_DELIVER]
        assert bases == sorted(bases)
        for lo, hi in zip(bases, bases[1:]):
            assert lo + LINK_MASK < hi

    def test_dispatch_error_names_the_kind(self):
        q = EventQueue()
        with pytest.raises(ValueError, match=f"{EV_DELIVER}"):
            q.dispatch((0.0, 0, CODE_DELIVER + 3))


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        assert q.run() == "quiescent"
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_creation_order(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(1.0, lambda i=i: fired.append(i))
        q.run()
        assert fired == list(range(10))

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(0.5, lambda: seen.append(q.now))
        q.schedule(1.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [0.5, 1.5]  # both scheduled at time 0

    def test_nested_scheduling(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append(("first", q.now))
            q.schedule(1.0, lambda: fired.append(("second", q.now)))

        q.schedule(1.0, first)
        q.run()
        assert fired == [("first", 1.0), ("second", 2.0)]

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: q.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError):
            q.run()


class TestRunLimits:
    def test_max_time_stops_before_event(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(10.0, lambda: fired.append(2))
        assert q.run(max_time=5.0) == "max_time"
        assert fired == [1]
        assert q.pending == 1

    def test_max_events(self):
        q = EventQueue()
        for _ in range(5):
            q.schedule(1.0, lambda: None)
        assert q.run(max_events=3) == "max_events"
        assert q.fired == 3

    def test_step_on_empty(self):
        assert EventQueue().step() is False
