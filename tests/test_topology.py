"""Tests for the deterministic topology generators."""

import pytest

from repro.net import topology
from repro.net.topology import TOPOLOGY_FAMILIES, make_topology


class TestExactFamilies:
    def test_path(self):
        g = topology.path_graph(6)
        assert (g.num_nodes, g.num_edges) == (6, 5)
        assert g.diameter() == 5

    def test_cycle(self):
        g = topology.cycle_graph(8)
        assert (g.num_nodes, g.num_edges) == (8, 8)
        assert all(g.degree(v) == 2 for v in g.nodes)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            topology.cycle_graph(2)

    def test_star(self):
        g = topology.star_graph(7)
        assert g.num_edges == 6
        assert g.degree(0) == 6

    def test_complete(self):
        g = topology.complete_graph(5)
        assert g.num_edges == 10

    def test_grid(self):
        g = topology.grid_graph(3, 5)
        assert g.num_nodes == 15
        assert g.num_edges == 3 * 4 + 2 * 5
        assert g.diameter() == 2 + 4

    def test_torus_regular(self):
        g = topology.torus_graph(4, 5)
        assert g.num_nodes == 20
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_torus_too_small(self):
        with pytest.raises(ValueError):
            topology.torus_graph(2, 5)

    def test_balanced_tree(self):
        g = topology.balanced_tree(2, 3)
        assert g.num_nodes == 15
        assert g.num_edges == 14
        assert g.diameter() == 6

    def test_balanced_tree_height_zero(self):
        g = topology.balanced_tree(3, 0)
        assert g.num_nodes == 1

    def test_caterpillar(self):
        g = topology.caterpillar_graph(4, 2)
        assert g.num_nodes == 4 + 8
        assert g.num_edges == 3 + 8

    def test_hypercube(self):
        g = topology.hypercube_graph(3)
        assert g.num_nodes == 8
        assert all(g.degree(v) == 3 for v in g.nodes)
        assert g.diameter() == 3

    def test_barbell(self):
        g = topology.barbell_graph(4, 3)
        assert g.num_nodes == 11
        assert g.is_connected()
        # Bridge dominates the diameter: 1 + (bridge_length + 1) + 1.
        assert g.diameter() == 1 + 4 + 1

    def test_lollipop(self):
        g = topology.lollipop_graph(4, 5)
        assert g.num_nodes == 9
        assert g.is_connected()


class TestRandomFamilies:
    def test_random_tree_deterministic(self):
        a = topology.random_tree(20, seed=1)
        b = topology.random_tree(20, seed=1)
        c = topology.random_tree(20, seed=2)
        assert a.edges == b.edges
        assert a.edges != c.edges

    def test_er_connected_and_deterministic(self):
        a = topology.erdos_renyi_graph(30, 0.05, seed=4)
        b = topology.erdos_renyi_graph(30, 0.05, seed=4)
        assert a.edges == b.edges
        assert a.is_connected()

    def test_er_p_zero_is_tree(self):
        g = topology.erdos_renyi_graph(15, 0.0, seed=0)
        assert g.num_edges == 14
        assert g.is_connected()

    def test_random_regular_connected(self):
        g = topology.random_regular_graph(24, 4, seed=9)
        assert g.is_connected()
        # Near-regular: the skeleton may push a node above d.
        assert max(g.degree(v) for v in g.nodes) <= 4 + 2

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            topology.random_regular_graph(5, 3, seed=0)

    def test_geometric_connected(self):
        g = topology.random_geometric_like_graph(25, 0.3, seed=2)
        assert g.is_connected()


class TestMakeTopology:
    @pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
    def test_families_build_connected(self, family):
        g = make_topology(family, 24, seed=1)
        assert g.is_connected()
        assert g.num_nodes >= 8

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            make_topology("nope", 10)

    def test_deterministic(self):
        a = make_topology("er_sparse", 30, seed=5)
        b = make_topology("er_sparse", 30, seed=5)
        assert a.edges == b.edges
