"""Tests for the asynchronous runtime: ack discipline, priorities, metrics."""

import gc

import pytest

from repro.net import (
    AsyncRuntime,
    ConstantDelay,
    Graph,
    Process,
    UniformDelay,
    UnknownLinkError,
    run_asynchronous,
    standard_adversaries,
    topology,
)


class Echo(Process):
    """Node 0 sends 'ping' to all neighbors; they output the sender."""

    def on_start(self):
        if self.ctx.node_id == 0:
            for v in self.ctx.neighbors:
                self.ctx.send(v, ("ping",))

    def on_message(self, sender, payload):
        self.ctx.set_output(("got", sender))


class Burst(Process):
    """Node 0 fires `count` messages at node 1 at time zero."""

    count = 5

    def on_start(self):
        if self.ctx.node_id == 0:
            for i in range(self.count):
                self.ctx.send(1, ("burst", i))

    def on_message(self, sender, payload):
        arrivals = getattr(self, "arrivals", [])
        arrivals.append((self.ctx.now, payload))
        self.arrivals = arrivals
        self.ctx.set_output(list(arrivals))


class PriorityBurst(Process):
    """Sends interleaved low/high priority messages; receiver records order."""

    def on_start(self):
        if self.ctx.node_id == 0:
            # Stage 2 first so the outbox must reorder: stage 1 must win.
            for i in range(3):
                self.ctx.send(1, ("stage2", i), priority=(2, i))
            for i in range(3):
                self.ctx.send(1, ("stage1", i), priority=(1, i))

    def on_message(self, sender, payload):
        order = getattr(self, "order", [])
        order.append(payload)
        self.order = order
        self.ctx.set_output(order)


class TestAckDiscipline:
    def test_one_in_flight_serializes_bursts(self):
        """5 messages x 1.0 delay each on one link => last arrives at t=5."""
        g = topology.path_graph(2)
        result = run_asynchronous(g, Burst, ConstantDelay(1.0))
        arrivals = result.outputs[1]
        times = [t for t, _ in arrivals]
        # Message k leaves only after ack of k-1: 1, 3, 5, 7, 9.
        assert times == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_fifo_within_priority(self):
        g = topology.path_graph(2)
        result = run_asynchronous(g, Burst, UniformDelay(seed=3))
        payloads = [p for _, p in result.outputs[1]]
        assert payloads == [("burst", i) for i in range(5)]

    def test_ack_counting(self):
        g = topology.path_graph(2)
        result = run_asynchronous(g, Burst, ConstantDelay(1.0))
        assert result.messages == 5
        assert result.acks == 5
        assert result.messages_with_acks == 10


class TestPriorities:
    def test_lower_stage_preempts_outbox(self):
        g = topology.path_graph(2)
        result = run_asynchronous(g, PriorityBurst, ConstantDelay(1.0))
        order = result.outputs[1]
        # First message (stage2, 0) is already in flight when stage1 arrives;
        # after that the outbox drains stage 1 before stage 2.
        assert order[0] == ("stage2", 0)
        assert order[1:4] == [("stage1", 0), ("stage1", 1), ("stage1", 2)]
        assert order[4:] == [("stage2", 1), ("stage2", 2)]


class TestMetricsAndOutputs:
    def test_time_to_output_vs_quiescence(self):
        g = topology.path_graph(3)

        class OutputEarly(Process):
            def on_start(self):
                if self.ctx.node_id == 0:
                    self.ctx.set_output("done")
                    self.ctx.send(1, ("tail",))

            def on_message(self, sender, payload):
                if self.ctx.node_id == 1:
                    self.ctx.send(2, ("tail",))

        result = run_asynchronous(g, OutputEarly, ConstantDelay(1.0))
        assert result.time_to_output == 0.0
        assert result.time_to_quiescence >= 2.0

    def test_send_to_non_neighbor_rejected(self):
        g = topology.path_graph(3)

        class Bad(Process):
            def on_start(self):
                if self.ctx.node_id == 0:
                    self.ctx.send(2, ("skip",))

            def on_message(self, sender, payload):
                pass

        # UnknownLinkError subclasses ValueError and names both endpoints.
        with pytest.raises(ValueError, match="no link"):
            run_asynchronous(g, Bad, ConstantDelay(1.0))
        with pytest.raises(UnknownLinkError, match=r"no link 0 -> 2"):
            run_asynchronous(g, Bad, ConstantDelay(1.0))

    def test_send_from_isolated_node_rejected(self):
        # Node 2 has no incident edges at all: its outgoing link map is
        # empty, and a send from it must fail with the same clear error —
        # not a bare KeyError from deep inside the link table.
        g = Graph(3, [(0, 1)])

        class LonelySender(Process):
            def on_start(self):
                if self.ctx.node_id == 2:
                    self.ctx.send(0, ("hello",))

            def on_message(self, sender, payload):  # pragma: no cover
                pass

        with pytest.raises(UnknownLinkError, match=r"no link 2 -> 0") as exc:
            run_asynchronous(g, LonelySender, ConstantDelay(1.0))
        assert exc.value.u == 2
        assert exc.value.v == 0

    def test_stop_reason_quiescent(self):
        g = topology.path_graph(2)
        result = run_asynchronous(g, Echo, ConstantDelay(1.0))
        assert result.stop_reason == "quiescent"
        assert result.outputs[1] == ("got", 0)

    def test_max_events_guard(self):
        g = topology.path_graph(2)

        class PingPong(Process):
            def on_start(self):
                if self.ctx.node_id == 0:
                    self.ctx.send(1, ("ping",))

            def on_message(self, sender, payload):
                self.ctx.send(sender, ("ping",))

        result = run_asynchronous(g, PingPong, ConstantDelay(1.0), max_events=100)
        assert result.stop_reason == "max_events"


class TestMaxTimeBoundary:
    """Deadline semantics at exactly ``max_time``.

    The audit of the trace-replay branch pinned one rule everywhere: an
    event scheduled *at* exactly ``max_time`` fires (the stop checks are
    strictly ``> deadline``), and the same strict comparison governs the
    fused-acknowledgment reconciliation at exit — a reserved ack at exactly
    the deadline counts as fired, one strictly past it turns the stop reason
    into ``max_time``.
    """

    def _burst(self, max_time, **kwargs):
        g = topology.path_graph(2)
        runtime = AsyncRuntime(g, Burst, ConstantDelay(1.0), **kwargs)
        return runtime.run(max_time=max_time)

    def test_delivery_at_exact_deadline_fires(self):
        # Deliveries land at t = 1, 3, 5, 7, 9 (acks at 2, 4, ..., 10).
        result = self._burst(max_time=9.0)
        times = [t for t, _ in result.outputs[1]]
        assert times == [1.0, 3.0, 5.0, 7.0, 9.0]
        # The last ack (t=10, fused: nothing waits on it) lies strictly past
        # the deadline, so the run was cut short by the horizon.
        assert result.stop_reason == "max_time"

    def test_event_just_before_deadline_excluded_semantics(self):
        result = self._burst(max_time=8.999)
        times = [t for t, _ in result.outputs[1]]
        assert times == [1.0, 3.0, 5.0, 7.0]
        assert result.stop_reason == "max_time"

    def test_fused_ack_at_exact_deadline_counts_as_fired(self):
        # All deliveries and acks (last at t=10, fused) fit exactly.
        result = self._burst(max_time=10.0)
        assert result.stop_reason == "quiescent"
        assert result.time_to_quiescence == 10.0

    def test_callback_at_exact_deadline_fires(self):
        g = topology.path_graph(2)
        fired = []

        class Env(Process):
            def on_start(self):
                if self.ctx.node_id == 0:
                    self.ctx.schedule_environment_event(
                        2.5, lambda: fired.append("at-deadline")
                    )

            def on_message(self, sender, payload):  # pragma: no cover
                pass

        result = AsyncRuntime(g, Env, ConstantDelay(1.0)).run(max_time=2.5)
        assert fired == ["at-deadline"]
        assert result.stop_reason == "quiescent"


class TestReservedAckIdentity:
    """A fused ack's reserved (time, seq) identity survives materialization.

    When a later send has to wait on a fused acknowledgment, the deferred
    drain event must fire at *exactly* the (time, seq) the reservation
    recorded at fuse time — not at a freshly drawn sequence number — or
    packed-record schedules drift from the reference engine wherever
    another event ties at the same instant.
    """

    def test_materialized_drain_fires_at_reserved_time_and_seq(self):
        g = topology.path_graph(2)
        seen = []

        class Resend(Process):
            def on_start(self):
                if self.ctx.node_id == 0:
                    self.ctx.send(1, ("m", 0))
                    # t=1.25: schedule a probe for t=2.0.  Its sequence
                    # number is allocated at t=1.25 — *after* the fuse at
                    # t=1.0 reserved the ack's identity — so the drain
                    # (reserved seq) must fire first at t=2.0 even though
                    # the probe entered the heap before the drain was
                    # materialized.
                    self.ctx.schedule_environment_event(1.25, self._arm)
                    self.ctx.schedule_environment_event(1.5, self._resend)

            def _arm(self):
                self.ctx.schedule_environment_event(
                    0.75, lambda: seen.append(runtime._injected[lid])
                )

            def _resend(self):
                # Materializes the reservation (free_at=2.0 > now=1.5) and
                # queues behind it.
                self.ctx.send(1, ("m", 1))

            def on_message(self, sender, payload):
                arrivals = getattr(self, "arrivals", [])
                arrivals.append((self.ctx.now, payload))
                self.arrivals = arrivals
                self.ctx.set_output(list(arrivals))

        runtime = AsyncRuntime(g, Resend, ConstantDelay(1.0))
        lid = runtime._out[0][1]
        result = runtime.run()
        # msg0 delivered at 1.0 (ack fused, due 2.0); msg1 waits on the
        # materialized drain at exactly (2.0, reserved seq) and lands at 3.0.
        assert [t for t, _ in result.outputs[1]] == [1.0, 3.0]
        # The probe fired at the same instant (2.0) but with a later seq:
        # the drain had already injected msg1 when it ran.  A fresh-seq
        # materialization would have run the probe first and seen 1.
        assert seen == [2]
        assert result.time_to_quiescence == 4.0  # msg1's ack (fused) at 4.0

    def test_drop_path_when_reservation_lies_in_the_past(self):
        g = topology.path_graph(2)

        class LateResend(Process):
            def on_start(self):
                if self.ctx.node_id == 0:
                    self.ctx.send(1, ("m", 0))
                    # t=2.5 > free_at=2.0: the reservation is logically
                    # dead; the send must inject immediately, not wait.
                    self.ctx.schedule_environment_event(
                        2.5, lambda: self.ctx.send(1, ("m", 1))
                    )

            def on_message(self, sender, payload):
                arrivals = getattr(self, "arrivals", [])
                arrivals.append((self.ctx.now, payload))
                self.arrivals = arrivals
                self.ctx.set_output(list(arrivals))

        result = run_asynchronous(g, LateResend, ConstantDelay(1.0))
        assert [t for t, _ in result.outputs[1]] == [1.0, 3.5]


class TestFusedAckAccounting:
    """The ``count_fused_acks`` opt-out restores raw event accounting."""

    def test_raw_accounting_diverges_only_by_fused_ack_count(self):
        g = topology.path_graph(2)
        fused = run_asynchronous(g, Burst, ConstantDelay(1.0))
        raw = run_asynchronous(
            g, Burst, ConstantDelay(1.0), count_fused_acks=True
        )
        # Everything but the event count is identical.
        assert raw.outputs == fused.outputs
        assert raw.messages == fused.messages
        assert raw.acks == fused.acks
        assert raw.time_to_quiescence == fused.time_to_quiescence
        # Burst(5) on one link: the first four acks are materialized (the
        # outbox is non-empty), only the final ack is fused — so raw
        # accounting reports exactly one more event, and never more than one
        # extra event per acknowledgment.
        assert raw.events_fired - fused.events_fired == 1
        assert raw.events_fired - fused.events_fired <= raw.acks

    def test_raw_accounting_across_adversaries(self):
        g = topology.grid_graph(3, 3)

        class Gossip(Process):
            def on_start(self):
                self.best = self.ctx.node_id
                for v in self.ctx.neighbors:
                    self.ctx.send(v, self.best)

            def on_message(self, sender, value):
                if value > self.best:
                    self.best = value
                    self.ctx.set_output(value)
                    for v in self.ctx.neighbors:
                        self.ctx.send(v, value)

        for model in standard_adversaries(9):
            fused = run_asynchronous(g, Gossip, model)
            raw = run_asynchronous(g, Gossip, model, count_fused_acks=True)
            # Raw accounting: one event per start, delivery, and ack.  The
            # fused engine drops exactly the fused-ack events.
            assert raw.events_fired == g.num_nodes + 2 * raw.messages, repr(model)
            diverged = raw.events_fired - fused.events_fired
            assert 0 <= diverged <= raw.acks, repr(model)
            assert raw.outputs == fused.outputs


class TestGcPauseRestoration:
    """The dispatch loop's GC pause must not leak a disabled collector."""

    def test_gc_reenabled_after_raising_process(self):
        g = topology.path_graph(2)

        class Exploder(Process):
            def on_start(self):
                if self.ctx.node_id == 0:
                    self.ctx.send(1, ("boom",))

            def on_message(self, sender, payload):
                raise RuntimeError("handler exploded mid-run")

        assert gc.isenabled()
        with pytest.raises(RuntimeError, match="exploded"):
            run_asynchronous(g, Exploder, ConstantDelay(1.0))
        assert gc.isenabled()

    def test_gc_left_alone_when_disabled_by_caller(self):
        g = topology.path_graph(2)
        gc.disable()
        try:
            result = run_asynchronous(g, Echo, ConstantDelay(1.0))
            assert result.stop_reason == "quiescent"
            # The runtime must not have re-enabled a collector the caller
            # (e.g. a sweep-wide pause) had turned off.
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_metrics_written_back_after_raising_process(self):
        g = topology.path_graph(2)
        delivered = []

        class Exploder(Process):
            def on_start(self):
                if self.ctx.node_id == 0:
                    self.ctx.send(1, ("a",))
                    self.ctx.send(1, ("b",))

            def on_message(self, sender, payload):
                delivered.append(payload)
                if payload == ("b",):
                    raise RuntimeError("late failure")

        runtime = AsyncRuntime(g, Exploder, ConstantDelay(1.0))
        with pytest.raises(RuntimeError, match="late failure"):
            runtime.run()
        # The finally block recovered the injection counters.
        assert runtime.messages == 2
        assert delivered == [("a",), ("b",)]


class TestDeterminism:
    @pytest.mark.parametrize("model", standard_adversaries(7), ids=repr)
    def test_identical_reruns(self, model):
        g = topology.grid_graph(3, 3)

        class Gossip(Process):
            def on_start(self):
                self.best = self.ctx.node_id
                for v in self.ctx.neighbors:
                    self.ctx.send(v, self.best)

            def on_message(self, sender, value):
                if value > self.best:
                    self.best = value
                    self.ctx.set_output(value)
                    for v in self.ctx.neighbors:
                        self.ctx.send(v, value)

        first = run_asynchronous(g, Gossip, model)
        second = run_asynchronous(g, Gossip, model)
        assert first.outputs == second.outputs
        assert first.messages == second.messages
        assert first.time_to_quiescence == second.time_to_quiescence

    def test_delay_bound_enforced(self):
        g = topology.path_graph(2)

        def bad_delay(u, v, seq, now):
            return 2.0

        with pytest.raises(ValueError, match="outside"):
            run_asynchronous(g, Echo, bad_delay)
