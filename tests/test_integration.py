"""End-to-end integration: the full stack at moderate scale.

These are the closest runs to "using the library in anger": bigger graphs,
application pipelines, and cross-checks between the independent paths
through the codebase (dedicated BFS machinery vs. synchronized BFS program).
"""

import pytest

from repro.apps import (
    ElectionStructure,
    bfs_spec,
    leader_election_spec,
    mst_edges_from_outputs,
    mst_spec,
    reference_mst,
)
from repro.core import (
    registry_for_threshold,
    run_full_bfs,
    run_synchronized,
    run_thresholded_bfs,
)
from repro.net import SlowEdgesDelay, UniformDelay, run_synchronous, topology


class TestModerateScale:
    def test_full_bfs_on_64_node_graph(self):
        g = topology.erdos_renyi_graph(64, 3.0 / 64, seed=17)
        outcome = run_full_bfs(g, 0, UniformDelay(seed=17))
        expected = g.bfs_distances(0)
        assert all(outcome.distances[v] == expected[v] for v in g.nodes)

    def test_two_bfs_implementations_agree(self):
        """The dedicated Section-4 machinery and the Section-5 synchronizer
        running the BFS *program* must compute identical distances."""
        g = topology.grid_graph(5, 5)
        model = UniformDelay(seed=3)
        machinery = run_thresholded_bfs(g, 0, 8, model)
        program = run_synchronized(g, bfs_spec(0), model)
        for v in g.nodes:
            dist, _ = program.outputs[v]
            assert machinery.distances[v] == dist

    def test_election_then_bfs_from_leader(self):
        """Pipeline: elect a leader, then BFS from it."""
        g = topology.erdos_renyi_graph(30, 0.1, seed=9)
        model = SlowEdgesDelay(seed=2)
        election = run_synchronized(
            g, leader_election_spec(ElectionStructure.build(g)), model
        )
        leaders = set(election.outputs.values())
        assert leaders == {0}
        leader = leaders.pop()
        outcome = run_full_bfs(g, leader, model)
        expected = g.bfs_distances(leader)
        assert all(outcome.distances[v] == expected[v] for v in g.nodes)

    def test_mst_on_40_nodes_with_slow_edges(self):
        g = topology.with_random_weights(
            topology.erdos_renyi_graph(40, 0.08, seed=21), seed=22
        )
        result = run_synchronized(g, mst_spec(), SlowEdgesDelay(seed=8))
        assert mst_edges_from_outputs(result.outputs) == reference_mst(g)

    def test_shared_registry_many_protocols(self):
        """One registry serving thresholded BFS runs from many sources."""
        g = topology.torus_graph(5, 5)
        registry = registry_for_threshold(g, 4)
        model = UniformDelay(seed=5)
        for source in (0, 7, 13, 24):
            outcome = run_thresholded_bfs(g, source, 4, model, registry=registry)
            expected = g.bfs_distances(source)
            for v in g.nodes:
                want = expected[v] if expected[v] <= 4 else float("inf")
                assert outcome.distances[v] == want


class TestCostAccountingConsistency:
    def test_ack_count_equals_message_count(self):
        """Appendix B: exactly one acknowledgment per delivered message."""
        g = topology.grid_graph(4, 4)
        outcome = run_thresholded_bfs(g, 0, 4, UniformDelay(seed=1))
        assert outcome.result.acks == outcome.result.messages

    def test_quiescence_never_precedes_output(self):
        g = topology.cycle_graph(20)
        outcome = run_full_bfs(g, 0, UniformDelay(seed=2))
        assert outcome.result.time_to_quiescence >= outcome.result.time_to_output

    def test_synchronous_baseline_is_cheapest(self):
        """Sanity: no synchronizer beats the synchronous message count."""
        g = topology.grid_graph(4, 4)
        spec = bfs_spec(0)
        sync = run_synchronous(g, spec)
        result = run_synchronized(g, spec, UniformDelay(seed=4))
        assert result.messages > sync.messages
