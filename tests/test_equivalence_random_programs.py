"""Adversarial property test: random event-driven programs through every
synchronizer must replay the synchronous execution exactly (Theorem 5.2).

A seeded :class:`RandomReactionProgram` reacts to each pulse batch with a
deterministic hash of (node id, batch): it picks a pseudo-random subset of
neighbors and payload values, with a TTL so executions terminate.  This
explores message patterns no hand-written workload covers — bursty fan-outs,
silent rounds, asymmetric chains — and any divergence between the
synchronous and synchronized executions fails loudly.
"""

import hashlib

import pytest

from repro.baselines import run_alpha, run_beta, run_gamma
from repro.core import run_synchronized
from repro.net import (
    NodeProgram,
    ProgramSpec,
    UniformDelay,
    fixed_initiators,
    run_synchronous,
    standard_adversaries,
    topology,
)


def _hash(*parts) -> int:
    digest = hashlib.blake2b(repr(parts).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RandomReactionProgram(NodeProgram):
    """Deterministic pseudo-random reactions with a TTL budget."""

    seed = 0
    ttl = 6

    def __init__(self, info):
        super().__init__(info)
        self.log = []

    def _react(self, api, token):
        ttl, value = token
        self.log.append(value)
        api.set_output(tuple(self.log))
        if ttl <= 0:
            return
        h = _hash(self.seed, self.info.node_id, value, ttl)
        neighbors = self.info.neighbors
        # Pseudo-randomly pick a subset (possibly empty) of neighbors.
        chosen = [v for i, v in enumerate(neighbors) if (h >> i) & 1]
        for v in chosen:
            api.send(v, (ttl - 1, _hash(self.seed, value, v) % 997))

    def on_start(self, api):
        self._react(api, (self.ttl, _hash(self.seed, self.info.node_id) % 997))

    def on_pulse(self, api, arrived):
        if not arrived:
            return
        # Fold the whole batch into one deterministic token.
        ttl = max(t for _, (t, _) in arrived)
        folded = _hash(self.seed, tuple(v for _, (_, v) in arrived)) % 997
        self._react(api, (ttl, folded))


def random_spec(seed: int, initiators) -> ProgramSpec:
    program = type(
        f"RandomProgram{seed}", (RandomReactionProgram,), {"seed": seed}
    )
    return ProgramSpec(f"random-{seed}", program, fixed_initiators(initiators))


FAMILIES = ["path", "grid", "er_sparse", "tree"]


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_program_equivalence_main(family, seed):
    g = topology.make_topology(family, 14, seed=seed)
    spec = random_spec(seed, {0, seed % g.num_nodes})
    sync = run_synchronous(g, spec)
    model = standard_adversaries(seed)[seed % 8]
    result = run_synchronized(g, spec, model)
    assert result.outputs == sync.outputs, (family, seed)


@pytest.mark.parametrize("seed", [6, 7, 8])
def test_random_program_equivalence_baselines(seed):
    g = topology.make_topology("grid", 12, seed=seed)
    spec = random_spec(seed, {0, 5})
    sync = run_synchronous(g, spec)
    for runner in (run_alpha, run_beta, run_gamma):
        result = runner(g, spec, UniformDelay(seed=seed))
        assert result.outputs == sync.outputs, runner.__name__


@pytest.mark.parametrize("seed", [9, 10])
def test_random_program_many_adversaries(seed):
    g = topology.make_topology("barbell", 14, seed=seed)
    spec = random_spec(seed, {0})
    sync = run_synchronous(g, spec)
    for model in standard_adversaries(seed):
        result = run_synchronized(g, spec, model)
        assert result.outputs == sync.outputs, repr(model)
