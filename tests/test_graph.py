"""Unit and property tests for repro.net.graph."""

import pytest

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.net import Graph, edge_key, topology, validate_tree
from repro.net.graph import INFINITY


def to_networkx(graph: Graph) -> "nx.Graph":
    g = nx.Graph()
    g.add_nodes_from(graph.nodes)
    g.add_edges_from(graph.edges)
    return g


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key(5, 2) == (2, 5)
        assert edge_key(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            edge_key(3, 3)


class TestGraphBasics:
    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1
        assert g.neighbors(0) == (1,)

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 2)])

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            Graph(0, [])

    def test_neighbors_sorted(self):
        g = Graph(4, [(2, 0), (0, 3), (1, 0)])
        assert g.neighbors(0) == (1, 2, 3)

    def test_degree(self):
        g = topology.star_graph(5)
        assert g.degree(0) == 4
        assert all(g.degree(v) == 1 for v in range(1, 5))

    def test_has_edge(self):
        g = topology.path_graph(3)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)


class TestWeights:
    def test_default_weight_is_one(self):
        g = topology.path_graph(3)
        assert g.weight(0, 1) == 1.0

    def test_explicit_weights(self):
        g = Graph(3, [(0, 1), (1, 2)], {(0, 1): 2.5})
        assert g.weight(1, 0) == 2.5
        assert g.weight(1, 2) == 1.0

    def test_weight_for_non_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1)], {(1, 2): 1.0})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1)], {(0, 1): 0.0})

    def test_with_random_weights_unique(self):
        g = topology.with_random_weights(topology.grid_graph(4, 4), seed=7)
        values = list(g.weights.values())
        assert len(set(values)) == len(values)


class TestDistances:
    def test_path_distances(self):
        g = topology.path_graph(5)
        assert g.bfs_distances(0) == (0, 1, 2, 3, 4)

    def test_multi_source(self):
        g = topology.path_graph(5)
        assert g.bfs_distances({0, 4}) == (0, 1, 2, 1, 0)

    def test_unreachable_is_infinite(self):
        g = Graph(3, [(0, 1)])
        assert g.bfs_distances(0)[2] == INFINITY

    def test_requires_a_source(self):
        g = topology.path_graph(3)
        with pytest.raises(ValueError):
            g.bfs_distances(set())

    def test_source_out_of_range(self):
        g = topology.path_graph(3)
        with pytest.raises(ValueError):
            g.bfs_distances(7)

    def test_ball(self):
        g = topology.path_graph(7)
        assert g.ball(3, 1) == frozenset({2, 3, 4})

    def test_diameter_known_values(self):
        assert topology.path_graph(10).diameter() == 9
        assert topology.cycle_graph(10).diameter() == 5
        assert topology.star_graph(10).diameter() == 2
        assert topology.complete_graph(6).diameter() == 1
        assert topology.grid_graph(3, 4).diameter() == 5
        assert topology.hypercube_graph(4).diameter() == 4

    def test_diameter_rejects_disconnected(self):
        with pytest.raises(ValueError):
            Graph(3, [(0, 1)]).diameter()

    def test_radius_center_of_path(self):
        radius, center = topology.path_graph(9).radius_center()
        assert radius == 4
        assert center == 4

    def test_bfs_tree_depths_match_distances(self):
        g = topology.grid_graph(5, 5)
        parent = g.bfs_tree(0)
        dist = g.bfs_distances(0)
        for v in g.nodes:
            depth = 0
            cur = v
            while parent[cur] is not None:
                cur = parent[cur]
                depth += 1
            assert depth == dist[v]


class TestAgainstNetworkx:
    @pytest.mark.parametrize("family", ["grid", "er_sparse", "regular", "tree"])
    def test_single_source_distances(self, family):
        g = topology.make_topology(family, 40, seed=3)
        nxg = to_networkx(g)
        expected = nx.single_source_shortest_path_length(nxg, 0)
        got = g.bfs_distances(0)
        for v in g.nodes:
            assert got[v] == expected.get(v, INFINITY)

    def test_diameter_matches(self):
        g = topology.erdos_renyi_graph(30, 0.15, seed=5)
        assert g.diameter() == nx.diameter(to_networkx(g))


class TestInducedSubgraph:
    def test_subgraph_structure(self):
        g = topology.cycle_graph(6)
        sub, remap = g.induced_subgraph([0, 1, 2, 3])
        assert sub.num_nodes == 4
        assert sub.num_edges == 3  # the cycle edge 5-0 and 3-4-5 drop out
        assert remap[0] == 0 and remap[3] == 3

    def test_subgraph_keeps_weights(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], {(1, 2): 9.0})
        sub, remap = g.induced_subgraph([1, 2])
        assert sub.weight(remap[1] if remap[1] < remap[2] else remap[2],
                          max(remap[1], remap[2])) == 9.0

    def test_empty_subgraph_rejected(self):
        with pytest.raises(ValueError):
            topology.path_graph(3).induced_subgraph([])


class TestValidateTree:
    def test_accepts_bfs_tree(self):
        g = topology.grid_graph(4, 4)
        validate_tree(16, g.bfs_tree(0), 0)

    def test_rejects_cycle(self):
        with pytest.raises(ValueError):
            validate_tree(2, {0: 1, 1: 0}, 0)

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            validate_tree(3, {0: None, 1: 0}, 0)

    def test_rejects_rooted_root(self):
        with pytest.raises(ValueError):
            validate_tree(2, {0: 1, 1: None}, 0)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_random_tree_is_tree(n, seed):
    g = topology.random_tree(n, seed)
    assert g.num_edges == n - 1
    assert g.is_connected()


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=20),
    p=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=1_000),
    source=st.integers(min_value=0, max_value=19),
)
def test_er_distances_match_networkx(n, p, seed, source):
    source %= n
    g = topology.erdos_renyi_graph(n, p, seed)
    nxg = to_networkx(g)
    expected = nx.single_source_shortest_path_length(nxg, source)
    got = g.bfs_distances(source)
    for v in g.nodes:
        assert got[v] == expected.get(v, INFINITY)
