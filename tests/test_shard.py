"""The sharded sweep executor must be byte-identical to the serial engine.

DESIGN.md §14: the process-pool executor ships one immutable bundle per
worker and merges per-cell summaries in canonical index order, so a sharded
``run_all`` with any ``jobs`` / start method must reproduce the serial
``run_all``'s message counts, times, and output digests exactly — on every
sweep cell, not just benchmark spot-checks.  ``jobs=1`` must never touch
multiprocessing at all.
"""

import gc
import importlib.util
import pickle
import sys
from multiprocessing import get_all_start_methods
from pathlib import Path

import pytest

from repro.apps.programs import bfs_spec, multi_bfs_spec
from repro.core import SynchronizerSweep, ThresholdedBFSSweep, run_sweeps_sharded
from repro.net import AsyncSweep, topology
from repro.net.async_runtime import (
    LinkSkeleton,
    adopt_skeleton,
    link_skeleton_for,
)
from repro.net.delays import UniformDelay, standard_adversaries
from repro.net.program import fixed_initiators, sampled_initiators, single_initiator
from repro.net import shard
from repro.net.shard import (
    CellSummary,
    digest_outputs,
    run_serial,
    run_sharded,
    run_timed,
    summarize,
)

#: Both POSIX start methods where the platform has them; at minimum one.
START_METHODS = [m for m in ("fork", "spawn") if m in get_all_start_methods()]


def _comparable(summaries):
    return [s.comparable() for s in summaries]


def _serial_reference(sweep, models):
    """Serial-engine ground truth, summarized for comparison (wall=0)."""
    return [summarize(i, r) for i, r in enumerate(sweep.run_all(models))]


# -- tentpole equivalence: every existing sweep cell, both start methods ----

@pytest.mark.parametrize("start_method", START_METHODS)
def test_sharded_synchronizer_matches_serial_on_all_adversaries(start_method):
    graph = topology.grid_graph(3, 4)
    sweep = SynchronizerSweep(graph, multi_bfs_spec(3))
    models = standard_adversaries(1)
    serial = _serial_reference(sweep, models)
    sharded = sweep.run_all_sharded(models, jobs=2, start_method=start_method)
    assert _comparable(sharded) == _comparable(serial)


@pytest.mark.parametrize("start_method", START_METHODS)
def test_sharded_tbfs_matches_serial_on_all_adversaries(start_method):
    graph = topology.cycle_graph(17)
    sweep = ThresholdedBFSSweep(graph, [0, 6], 8)
    models = standard_adversaries(2)
    serial = _serial_reference(sweep, models)
    sharded = sweep.run_all_sharded(models, jobs=3, start_method=start_method)
    assert _comparable(sharded) == _comparable(serial)


def test_sharded_matches_serial_on_seed_family():
    """(graph, seed) cells — one model class, many seeds — shard identically."""
    graph = topology.cycle_graph(16)
    sweep = SynchronizerSweep(graph, bfs_spec(0))
    models = [UniformDelay(seed=s) for s in range(6)]
    serial = _serial_reference(sweep, models)
    sharded = sweep.run_all_sharded(models, jobs=2)
    assert _comparable(sharded) == _comparable(serial)


def test_matrix_driver_spans_sweeps_with_per_sweep_indices():
    """One pool over a sweeps x models matrix; each sweep's summaries come
    back in model order with sweep-local indices (same shape as run_all)."""
    graph = topology.cycle_graph(12)
    sync = SynchronizerSweep(graph, bfs_spec(0))
    tbfs = ThresholdedBFSSweep(graph, [0, 5], 8)
    models = standard_adversaries(3)
    per_sweep = run_sweeps_sharded([sync, tbfs], models, jobs=2)
    assert _comparable(per_sweep[0]) == _comparable(_serial_reference(sync, models))
    assert _comparable(per_sweep[1]) == _comparable(_serial_reference(tbfs, models))


def test_jobs1_short_circuits_without_multiprocessing(monkeypatch):
    """jobs=1 (and single-cell bundles) must never create a pool."""
    def boom(*a, **k):  # pragma: no cover - failing is the assertion
        raise AssertionError("jobs=1 must not touch multiprocessing")

    monkeypatch.setattr(shard.multiprocessing, "get_context", boom)
    graph = topology.cycle_graph(10)
    sweep = SynchronizerSweep(graph, bfs_spec(0))
    models = standard_adversaries(4)
    serial = _serial_reference(sweep, models)
    assert _comparable(sweep.run_all_sharded(models, jobs=1)) == _comparable(serial)
    # A one-cell bundle short-circuits too, whatever jobs says.
    one = sweep.run_all_sharded(models[:1], jobs=8)
    assert _comparable(one) == _comparable(serial[:1])


def test_run_sharded_rejects_bad_jobs():
    graph = topology.cycle_graph(8)
    sweep = SynchronizerSweep(graph, bfs_spec(0))
    with pytest.raises(ValueError):
        sweep.run_all_sharded(standard_adversaries(0), jobs=0)


# -- satellite: skeleton serialization round-trip ---------------------------

def test_link_skeleton_pickle_roundtrip_preserves_assignment():
    graph = topology.grid_graph(4, 5)
    skeleton = link_skeleton_for(graph)
    clone = pickle.loads(pickle.dumps(skeleton))
    assert clone.lu == skeleton.lu
    assert clone.lv == skeleton.lv
    assert clone.num_links == skeleton.num_links
    assert {v: dict(m) for v, m in clone.out.items()} == {
        v: dict(m) for v, m in skeleton.out.items()
    }
    assert clone.deliver_codes == skeleton.deliver_codes
    assert clone.ack_codes == skeleton.ack_codes
    assert clone.ack_payload_codes == skeleton.ack_payload_codes
    assert clone.fat_codes == skeleton.fat_codes
    assert clone.blk_lims == skeleton.blk_lims
    # Read-only views survive the trip: protocols still cannot mutate them.
    with pytest.raises(TypeError):
        clone.out[0][99] = 1


def test_adopt_skeleton_seeds_the_per_graph_cache():
    parent_graph = topology.cycle_graph(9)
    shipped = pickle.loads(pickle.dumps(link_skeleton_for(parent_graph)))
    child_graph = pickle.loads(pickle.dumps(parent_graph))
    adopted = adopt_skeleton(child_graph, shipped)
    assert adopted is shipped
    assert link_skeleton_for(child_graph) is shipped
    # First-cached wins when the child already derived its own table.
    other = LinkSkeleton(child_graph)
    assert adopt_skeleton(child_graph, other) is shipped


def test_bundle_roundtrip_replays_byte_identically():
    """Pinned satellite: a pickled/unpickled (graph, skeleton, registry,
    infos, process class) bundle replays with the same traces, outputs, and
    message counts as the parent's copy."""
    graph = topology.grid_graph(3, 4)
    parent = SynchronizerSweep(graph, multi_bfs_spec(3))
    bundle = (
        parent.graph,
        link_skeleton_for(parent.graph),
        parent.registry,
        parent.spec.make_infos(parent.graph),
        parent.process_cls,
    )
    graph2, skeleton2, registry2, infos2, cls2 = pickle.loads(
        pickle.dumps(bundle)
    )
    assert graph2 is not graph
    assert cls2.registry is registry2
    assert cls2.infos == infos2
    adopt_skeleton(graph2, skeleton2)
    child_sweep = AsyncSweep(graph2, cls2)
    for model in standard_adversaries(5):
        parent_trace, child_trace = [], []
        parent_result = parent._sweep.run(
            model, trace=lambda t, u, v, p: parent_trace.append((t, u, v, p))
        )
        child_result = child_sweep.run(
            model, trace=lambda t, u, v, p: child_trace.append((t, u, v, p))
        )
        assert child_trace == parent_trace
        assert child_result.outputs == parent_result.outputs
        assert child_result.messages == parent_result.messages
        assert child_result.events_fired == parent_result.events_fired


@pytest.mark.parametrize("start_method", START_METHODS)
def test_shipped_sweep_replays_identically_in_worker(start_method):
    """The full shipped state replays identically inside a real pool worker
    under each available start method (pickle for spawn, COW for fork)."""
    graph = topology.cycle_graph(14)
    sweep = ThresholdedBFSSweep(graph, [0, 4], 8)
    models = standard_adversaries(6)[:3]
    serial = _serial_reference(sweep, models)
    sharded = sweep.run_all_sharded(models, jobs=2, start_method=start_method)
    assert _comparable(sharded) == _comparable(serial)


def test_initiator_factories_pickle_with_identical_behavior():
    graph = topology.cycle_graph(10)
    for pick in (single_initiator(3), fixed_initiators([1, 4]),
                 sampled_initiators(4)):
        clone = pickle.loads(pickle.dumps(pick))
        assert clone(graph) == pick(graph)
    bad = pickle.loads(pickle.dumps(single_initiator(99)))
    with pytest.raises(ValueError, match="initiator 99 not in graph"):
        bad(graph)


# -- satellite: GC handling across worker boundaries ------------------------

def test_worker_initializer_normalizes_inherited_gc_pause():
    """A fork during a paused_gc window must not leave the child's collector
    disabled forever: the pool initializer re-enables unconditionally."""
    assert gc.isenabled()
    try:
        gc.disable()
        shard._init_worker(None)
        assert gc.isenabled()
    finally:
        if not gc.isenabled():
            gc.enable()
    shard._WORKER_BUNDLE = None


def test_sharded_run_leaves_parent_gc_enabled():
    assert gc.isenabled()
    graph = topology.cycle_graph(8)
    sweep = SynchronizerSweep(graph, bfs_spec(0))
    sweep.run_all_sharded(standard_adversaries(7)[:3], jobs=2)
    assert gc.isenabled()


# -- summaries and digests --------------------------------------------------

def test_digest_matches_perf_regression_formula():
    """One digest implementation: the committed BENCH_core.json digests and
    worker-side summaries must stay comparable forever."""
    path = Path(__file__).parent.parent / "benchmarks" / "perf_regression.py"
    spec = importlib.util.spec_from_file_location("perf_regression", path)
    mod = importlib.util.module_from_spec(spec)
    saved = sys.path[:]
    try:
        spec.loader.exec_module(mod)
    finally:
        sys.path[:] = saved
    sample = {3: (1, "a"), 0: (2, "b"), 7: (0, "c")}
    assert digest_outputs(sample) == mod._digest(sample)


def test_summarize_folds_results_and_outcome_wrappers():
    graph = topology.cycle_graph(12)
    sweep = ThresholdedBFSSweep(graph, [0], 8)
    model = standard_adversaries(0)[2]
    outcome = sweep.run(model)
    direct = summarize(4, outcome.result, wall=1.25)
    wrapped = summarize(4, outcome, wall=9.0)
    assert isinstance(direct, CellSummary)
    assert direct.index == 4
    assert direct.messages == outcome.result.messages
    assert direct.outputs_digest == digest_outputs(outcome.result.outputs)
    assert direct.wall == 1.25
    # comparable() ignores the wall clock — the one nondeterministic field.
    assert wrapped.comparable() == direct.comparable()


def test_run_timed_measures_and_run_serial_orders():
    graph = topology.cycle_graph(10)
    sweep = SynchronizerSweep(graph, bfs_spec(0))
    models = standard_adversaries(1)[:3]

    class Cells:
        def __len__(self):
            return len(models)

        def run_cell(self, index):
            return run_timed(index, lambda: sweep.run(models[index]))

    summaries = run_serial(Cells())
    assert [s.index for s in summaries] == [0, 1, 2]
    assert all(s.wall >= 0.0 for s in summaries)
    assert _comparable(run_sharded(Cells(), jobs=1)) == _comparable(summaries)
