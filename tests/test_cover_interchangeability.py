"""The asynchronous machinery must be agnostic to which valid cover feeds it.

Definition 2.1 is the only contract between the cover constructions and the
synchronizer stack: any validated sparse cover — Awerbuch–Peleg, the
Rozhoň–Ghaffari deterministic construction, or the trivial single-cluster
cover — must yield identical (correct) outputs, differing only in cost.
"""

import pytest

from repro.apps.programs import bfs_spec
from repro.core import (
    CoverRegistry,
    run_synchronized,
    run_thresholded_bfs,
)
from repro.covers import build_layered_cover
from repro.net import UniformDelay, run_synchronous, topology

BUILDERS = ["ap", "trivial", "rg"]


@pytest.mark.parametrize("builder", BUILDERS)
class TestBfsMachineryAcrossBuilders:
    def test_thresholded_bfs(self, builder):
        g = topology.grid_graph(4, 4)
        outcome = run_thresholded_bfs(
            g, 0, 4, UniformDelay(seed=9), builder=builder
        )
        expected = g.bfs_distances(0)
        for v in g.nodes:
            want = expected[v] if expected[v] <= 4 else float("inf")
            assert outcome.distances[v] == want

    def test_synchronizer(self, builder):
        g = topology.path_graph(10)
        spec = bfs_spec(0)
        sync = run_synchronous(g, spec)
        result = run_synchronized(
            g, spec, UniformDelay(seed=4), builder=builder
        )
        assert result.outputs == sync.outputs


class TestCostsDifferButOutputsMatch:
    def test_trivial_cover_costs_more_time(self):
        """The trivial whole-graph cluster forces diameter-scale
        registration waves; AP clusters keep them local."""
        g = topology.cycle_graph(32)
        model = UniformDelay(seed=2)
        ap = run_thresholded_bfs(g, 0, 4, model, builder="ap")
        trivial = run_thresholded_bfs(g, 0, 4, model, builder="trivial")
        assert ap.distances == trivial.distances
        assert trivial.result.time_to_output > ap.result.time_to_output

    def test_registry_from_prebuilt_layered_cover(self):
        g = topology.grid_graph(4, 4)
        layered = build_layered_cover(g, 1 << 7, builder="ap")
        registry = CoverRegistry(layered)
        outcome = run_thresholded_bfs(
            g, 0, 4, UniformDelay(seed=6), registry=registry
        )
        expected = g.bfs_distances(0)
        for v in g.nodes:
            want = expected[v] if expected[v] <= 4 else float("inf")
            assert outcome.distances[v] == want
