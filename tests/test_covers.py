"""Tests for sparse covers: data structures, AP construction, validation."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.covers import (
    ClusterTree,
    LayeredCover,
    SparseCover,
    ap_membership_bound,
    bfs_cluster_tree,
    build_ap_cover,
    build_ap_layered_cover,
    build_cover,
    build_layered_cover,
    build_trivial_cover,
    required_top_level,
    steiner_tree_from_paths,
    validate_cover,
)
from repro.net import topology


class TestClusterTree:
    def test_bfs_tree_structure(self):
        g = topology.grid_graph(4, 4)
        tree = bfs_cluster_tree(g, 0, members=range(16), root=0)
        tree.validate(g)
        assert tree.height == g.eccentricity(0)
        assert tree.members == frozenset(range(16))

    def test_pruning_drops_memberless_branches(self):
        g = topology.star_graph(6)
        tree = bfs_cluster_tree(g, 0, members=[0, 1], root=0)
        assert tree.tree_nodes == frozenset({0, 1})

    def test_path_to_root(self):
        g = topology.path_graph(5)
        tree = bfs_cluster_tree(g, 0, members=range(5), root=0)
        assert tree.path_to_root(4) == [4, 3, 2, 1, 0]

    def test_allowed_restriction(self):
        g = topology.cycle_graph(6)
        tree = bfs_cluster_tree(
            g, 0, members=[0, 1, 2], root=0, allowed=frozenset({0, 1, 2})
        )
        tree.validate(g)
        assert tree.height == 2  # cannot shortcut around the cycle

    def test_unreachable_member_rejected(self):
        g = topology.path_graph(4)
        with pytest.raises(ValueError, match="unreachable"):
            bfs_cluster_tree(g, 0, members=[0, 3], root=0, allowed=frozenset({0, 3}))

    def test_empty_members_rejected(self):
        g = topology.path_graph(3)
        with pytest.raises(ValueError):
            bfs_cluster_tree(g, 0, members=[])

    def test_validate_rejects_non_edge(self):
        g = topology.path_graph(4)
        bad = ClusterTree(0, 0, frozenset({0, 2}), {0: None, 2: 0})
        with pytest.raises(ValueError, match="not in graph"):
            bad.validate(g)

    def test_validate_rejects_missing_member(self):
        g = topology.path_graph(4)
        bad = ClusterTree(0, 0, frozenset({0, 3}), {0: None, 1: 0})
        with pytest.raises(ValueError, match="not in tree"):
            bad.validate(g)

    def test_steiner_tree_from_paths(self):
        g = topology.path_graph(5)
        tree = steiner_tree_from_paths(
            g, 7, root=0, members=[0, 4], attach_paths=[[0, 1, 2, 3, 4]]
        )
        tree.validate(g)
        assert 2 in tree.tree_nodes and 2 not in tree.members

    def test_steiner_tree_bad_path(self):
        g = topology.path_graph(5)
        with pytest.raises(ValueError, match="does not start"):
            steiner_tree_from_paths(g, 0, root=0, members=[0], attach_paths=[[3, 4]])


class TestTrivialCover:
    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_valid_for_every_radius(self, d):
        g = topology.grid_graph(4, 4)
        cover = build_trivial_cover(g, d)
        validate_cover(g, cover, max_membership=1)

    def test_root_is_center(self):
        g = topology.path_graph(9)
        cover = build_trivial_cover(g, 2)
        assert cover.clusters[0].root == 4


class TestApCover:
    @pytest.mark.parametrize("family", ["path", "cycle", "grid", "tree", "er_sparse", "barbell"])
    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_definition_2_1(self, family, d):
        g = topology.make_topology(family, 30, seed=3)
        cover = build_ap_cover(g, d)
        validate_cover(
            g,
            cover,
            max_membership=ap_membership_bound(g.num_nodes),
            max_stretch=1 + 2 * math.log2(g.num_nodes) + 2,
        )

    def test_edge_load_bounded_by_membership(self):
        g = topology.grid_graph(6, 6)
        cover = build_ap_cover(g, 2)
        assert cover.max_edge_load <= ap_membership_bound(g.num_nodes)

    def test_deterministic(self):
        g = topology.erdos_renyi_graph(25, 0.1, seed=9)
        a = build_ap_cover(g, 2)
        b = build_ap_cover(g, 2)
        assert [c.members for c in a.clusters] == [c.members for c in b.clusters]

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            build_ap_cover(topology.path_graph(4), 0)

    def test_rejects_disconnected(self):
        from repro.net import Graph

        with pytest.raises(ValueError, match="connected"):
            build_ap_cover(Graph(4, [(0, 1), (2, 3)]), 1)

    def test_single_cluster_when_radius_covers_graph(self):
        g = topology.path_graph(6)
        cover = build_ap_cover(g, 6)
        assert len(cover.clusters) == 1


class TestLayeredCover:
    def test_levels_present(self):
        g = topology.grid_graph(5, 5)
        layered = build_ap_layered_cover(g, 8)
        assert set(layered.levels) == {0, 1, 2, 3}
        assert layered.covers_radius(8)
        for j, cover in layered.levels.items():
            assert cover.radius == 1 << j
            validate_cover(g, cover)

    def test_level_clamps_below_zero(self):
        g = topology.path_graph(6)
        layered = build_ap_layered_cover(g, 2)
        assert layered.level(-3) is layered.levels[0]

    def test_required_top_level(self):
        assert required_top_level(1) == 0
        assert required_top_level(2) == 1
        assert required_top_level(5) == 3
        with pytest.raises(ValueError):
            required_top_level(0)


class TestBuilderFacade:
    @pytest.mark.parametrize("builder", ["ap", "trivial", "rg"])
    def test_build_cover(self, builder):
        g = topology.grid_graph(4, 4)
        cover = build_cover(g, 2, builder=builder)
        validate_cover(g, cover)

    @pytest.mark.parametrize("builder", ["ap", "trivial"])
    def test_build_layered(self, builder):
        g = topology.grid_graph(4, 4)
        layered = build_layered_cover(g, 4, builder=builder)
        for cover in layered.levels.values():
            validate_cover(g, cover)

    def test_unknown_builder(self):
        with pytest.raises(ValueError):
            build_cover(topology.path_graph(4), 1, builder="nope")


class TestSparseCoverHelpers:
    def test_duplicate_ids_rejected(self):
        g = topology.path_graph(4)
        t = bfs_cluster_tree(g, 5, members=range(4), root=0)
        with pytest.raises(ValueError, match="duplicate"):
            SparseCover.from_clusters(1, [t, t], {v: 5 for v in range(4)})

    def test_cluster_lookup(self):
        g = topology.path_graph(4)
        cover = build_trivial_cover(g, 1)
        assert cover.cluster(0).members == frozenset(range(4))
        with pytest.raises(KeyError):
            cover.cluster(99)

    def test_validation_catches_bad_home(self):
        g = topology.path_graph(6)
        small = bfs_cluster_tree(g, 0, members=[0, 1], root=0)
        cover = SparseCover.from_clusters(
            2, [small], {v: 0 for v in g.nodes}
        )
        with pytest.raises(ValueError, match="misses ball"):
            validate_cover(g, cover)

    def test_tree_participants_includes_steiner(self):
        g = topology.path_graph(5)
        tree = steiner_tree_from_paths(
            g, 0, root=0, members=[0, 4], attach_paths=[[0, 1, 2, 3, 4]]
        )
        cover = SparseCover.from_clusters(1, [tree], {0: 0, 4: 0})
        assert cover.tree_participants(2) == (0,)
        assert cover.clusters_of.get(2) is None


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=28),
    p=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=500),
    d=st.integers(min_value=1, max_value=3),
)
def test_ap_cover_property(n, p, seed, d):
    g = topology.erdos_renyi_graph(n, p, seed)
    cover = build_ap_cover(g, d)
    validate_cover(g, cover, max_membership=ap_membership_bound(n))
