"""Sweep engines must be byte-identical to standalone runs, per delay model.

The whole point of :class:`repro.net.sweep.AsyncSweep` and the protocol
sweeps in :mod:`repro.core.sweep` is to amortize setup *without changing a
single event*: every replay must equal the corresponding standalone run —
same delivery traces, outputs, message counts, times — and replay order must
not leak state between models.
"""

import pytest

from repro.apps.programs import bfs_spec, broadcast_echo_spec, flood_max_spec
from repro.core import (
    SynchronizerSweep,
    ThresholdedBFSSweep,
    run_synchronized,
    run_thresholded_bfs,
    sweep_synchronized,
)
from repro.net import AsyncRuntime, AsyncSweep, Process, topology
from repro.net.delays import standard_adversaries


class Gossip(Process):
    def on_start(self):
        self.best = self.ctx.node_id
        for v in self.ctx.neighbors:
            self.ctx.send(v, self.best)

    def on_message(self, sender, value):
        if value > self.best:
            self.best = value
            self.ctx.set_output(value)
            for v in self.ctx.neighbors:
                self.ctx.send(v, value)


def _trace_run(runner, model):
    trace = []
    result = runner(model, lambda t, u, v, p: trace.append((t, u, v, p)))
    return trace, result


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_async_sweep_matches_standalone_runs(seed):
    """One AsyncSweep instance replayed over the whole adversary family is
    trace-identical to fresh per-model AsyncRuntime runs."""
    graph = topology.grid_graph(3, 4)
    sweep = AsyncSweep(graph, Gossip)
    for model in standard_adversaries(seed):
        sweep_trace, sweep_result = _trace_run(
            lambda m, t: sweep.run(m, trace=t), model
        )
        solo_trace, solo_result = _trace_run(
            lambda m, t: AsyncRuntime(graph, Gossip, m, trace=t).run(), model
        )
        assert sweep_trace == solo_trace
        assert sweep_result == solo_result


def test_async_sweep_replays_are_order_independent():
    """Replaying A, B, A must give A the same result both times (no state
    can leak through the shared skeleton)."""
    graph = topology.cycle_graph(10)
    models = standard_adversaries(3)
    sweep = AsyncSweep(graph, Gossip)
    first = sweep.run(models[2])
    for model in models:
        sweep.run(model)
    again = sweep.run(models[2])
    assert first == again


def test_sweep_shares_one_block_buffer_across_replays():
    """The flat delay-block buffer is allocated once per sweep and handed
    to every replay (DESIGN.md §9); replays reset their cursors, so the
    shared scratch cannot leak one model's draws into the next — pinned by
    the byte-identity tests above, asserted structurally here."""
    graph = topology.cycle_graph(10)
    models = standard_adversaries(4)
    sweep = AsyncSweep(graph, Gossip)
    rt1 = sweep.runtime(models[2])
    buf = sweep._block_buffer
    assert buf is not None and rt1._blk_buf is buf
    rt2 = sweep.runtime(models[3])
    assert rt2._blk_buf is buf
    assert sweep._block_buffer is buf  # no reallocation per replay
    # A standalone runtime allocates its own scratch: nothing is shared
    # outside the sweep's sequential replays.
    from repro.net import AsyncRuntime

    solo = AsyncRuntime(graph, Gossip, models[2])
    assert solo._blk_buf is not buf


def test_interleaved_runtime_construction_over_shared_buffer():
    """Construct-construct-run-run over one sweep buffer: each run() resets
    its block cursors on entry, so a replay constructed before another
    replay dirtied the shared scratch still reproduces its model's draws
    exactly (the refill start is the current injection number)."""
    graph = topology.grid_graph(3, 4)
    models = standard_adversaries(6)
    sweep = AsyncSweep(graph, Gossip)
    rt_a = sweep.runtime(models[2])
    rt_b = sweep.runtime(models[3])
    result_b = rt_b.run()   # dirties the buffer rt_a captured
    result_a = rt_a.run()
    assert result_a == sweep.run(models[2])
    assert result_b == sweep.run(models[3])


@pytest.mark.parametrize("spec_factory", [
    lambda: bfs_spec(0),
    lambda: broadcast_echo_spec(0),
    flood_max_spec,
])
def test_synchronizer_sweep_matches_run_synchronized(spec_factory):
    graph = topology.cycle_graph(12)
    spec = spec_factory()
    sweep = SynchronizerSweep(graph, spec)
    for model in standard_adversaries(1):
        solo = run_synchronized(graph, spec, model)
        replay = sweep.run(model)
        assert replay == solo, repr(model)


def test_sweep_synchronized_wrapper_aligns_with_models():
    graph = topology.grid_graph(3, 3)
    spec = bfs_spec(0)
    models = standard_adversaries(5)
    results = sweep_synchronized(graph, spec, models)
    assert len(results) == len(models)
    for model, result in zip(models, results):
        assert result == run_synchronized(graph, spec, model), repr(model)


@pytest.mark.parametrize("threshold", [4, 8])
def test_thresholded_bfs_sweep_matches_standalone(threshold):
    graph = topology.cycle_graph(24)
    sweep = ThresholdedBFSSweep(graph, 0, threshold)
    for model in standard_adversaries(2):
        solo = run_thresholded_bfs(graph, 0, threshold, model)
        replay = sweep.run(model)
        assert replay.distances == solo.distances, repr(model)
        assert replay.parents == solo.parents, repr(model)
        assert replay.result == solo.result, repr(model)


def test_thresholded_bfs_sweep_distances_are_model_independent():
    """Correctness across the family: every adversary yields the oracle
    distances (the guarantee the sweep exists to measure cheaply)."""
    graph = topology.grid_graph(4, 4)
    truth = graph.bfs_distances(0)
    sweep = ThresholdedBFSSweep(graph, 0, 8)
    for outcome in sweep.run_all(standard_adversaries(7)):
        for v in graph.nodes:
            expected = truth[v] if truth[v] <= 8 else float("inf")
            assert outcome.distances[v] == expected
