"""Tests for the analysis helpers (fits and tables)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    Series,
    fit_polylog_exponent,
    fit_power_law,
    format_table,
    growth_ratios,
)


class TestPowerLaw:
    def test_exact_recovery(self):
        xs = [4, 8, 16, 32, 64]
        ys = [3 * x ** 1.5 for x in xs]
        exponent, coefficient = fit_power_law(xs, ys)
        assert abs(exponent - 1.5) < 1e-9
        assert abs(coefficient - 3.0) < 1e-9

    def test_constant_series(self):
        exponent, _ = fit_power_law([2, 4, 8], [5, 5, 5])
        assert abs(exponent) < 1e-9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 3])

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_rejects_degenerate_x(self):
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [1, 2])

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.floats(min_value=-2, max_value=2),
        c=st.floats(min_value=0.1, max_value=100),
    )
    def test_property_recovery(self, a, c):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [c * x ** a for x in xs]
        exponent, coefficient = fit_power_law(xs, ys)
        assert abs(exponent - a) < 1e-6
        assert abs(coefficient - c) < 1e-4 * max(1, c)


class TestPolylog:
    def test_exact_recovery(self):
        xs = [16, 64, 256, 1024]
        ys = [7 * math.log2(x) ** 3 for x in xs]
        k, c = fit_polylog_exponent(xs, ys)
        assert abs(k - 3.0) < 1e-9
        assert abs(c - 7.0) < 1e-6

    def test_rejects_small_x(self):
        with pytest.raises(ValueError):
            fit_polylog_exponent([2, 4], [1, 2])


class TestGrowthRatios:
    def test_basic(self):
        assert growth_ratios([1, 2, 6]) == [2.0, 3.0]

    def test_short_rejected(self):
        with pytest.raises(ValueError):
            growth_ratios([1])


class TestSeries:
    def test_add_and_column(self):
        s = Series("t", ["a", "b"])
        s.add(1, 2)
        s.add(3, 4)
        assert s.column("a") == [1, 3]
        assert s.column("b") == [2, 4]

    def test_wrong_arity_rejected(self):
        s = Series("t", ["a", "b"])
        with pytest.raises(ValueError):
            s.add(1)

    def test_render_alignment(self):
        s = Series("demo", ["name", "value"])
        s.add("x", 1.25)
        s.add("longer", 10)
        out = s.render()
        assert "== demo ==" in out
        assert "1.25" in out and "longer" in out

    def test_format_table_empty(self):
        out = format_table("empty", ["a"], [])
        assert "empty" in out

    def test_float_formatting(self):
        out = format_table("f", ["v"], [[2.0], [2.345]])
        assert " 2" in out and "2.35" in out
