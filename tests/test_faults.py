"""Deterministic tests for the fault-injection layer (DESIGN.md §11).

Covers, per fault kind, the exact transport semantics the equivalence
property pins statistically: down intervals defer (never lose), crashed
receivers jam the link until an explicit ``reset_link``, per-link drops are
receiver-side losses with a link-layer acknowledgment.  Plus the draw-time
delay validation (:class:`InvalidDelayError`), the pooled-stage poison
regression, schedule validation, sweep-replay byte-identity, and the sync
engine's round-granular fault mode.
"""

from math import inf, nan

import pytest

from repro.apps.programs import bfs_spec
from repro.core.recovery import run_churn
from repro.core.registration import ClusterView, RegistrationModule
from repro.net import topology
from repro.net.async_runtime import AsyncRuntime, Process
from repro.net.delays import ConstantDelay, InvalidDelayError, standard_adversaries
from repro.net.faults import DETECT_TIMEOUT, FaultSchedule, FaultScheduleError
from repro.net.sweep import AsyncSweep
from repro.net.sync_runtime import run_synchronous

TAG = 1


# ----------------------------------------------------------------------
# schedule validation
# ----------------------------------------------------------------------
class TestScheduleValidation:
    def test_rate_out_of_range(self):
        with pytest.raises(FaultScheduleError, match="crash_rate"):
            FaultSchedule(crash_rate=1.5)
        with pytest.raises(FaultScheduleError, match="drop_rate"):
            FaultSchedule(drop_rate=-0.1)
        with pytest.raises(FaultScheduleError, match="down_rate"):
            FaultSchedule(down_rate=nan)

    def test_down_lengths_need_positive_minimum(self):
        with pytest.raises(FaultScheduleError, match="down_lengths"):
            FaultSchedule(down_rate=0.5, down_lengths=(0.0, 1.0))
        with pytest.raises(FaultScheduleError, match="up_lengths"):
            FaultSchedule(down_rate=0.5, up_lengths=(0.0, 1.0))

    def test_bad_interval_rejected(self):
        with pytest.raises(FaultScheduleError, match="start < end"):
            FaultSchedule(downs={(0, 1): [(2.0, 1.0)]})
        with pytest.raises(FaultScheduleError, match="sorted and disjoint"):
            FaultSchedule(downs={(0, 1): [(0.0, 2.0), (1.0, 3.0)]})
        with pytest.raises(FaultScheduleError, match="start < end"):
            FaultSchedule(downs={(0, 1): [(0.0, inf)]})

    def test_bad_crash_time_rejected(self):
        with pytest.raises(FaultScheduleError, match="crash time"):
            FaultSchedule(crashes={1: -1.0})
        with pytest.raises(FaultScheduleError, match="crash time"):
            FaultSchedule(crashes={1: inf})

    def test_protect_crash_conflict(self):
        with pytest.raises(FaultScheduleError, match="protected and crashed"):
            FaultSchedule(crashes={1: 0.5}, protect=(1,))

    def test_negative_drop_seq_rejected(self):
        with pytest.raises(FaultScheduleError, match="injection counts"):
            FaultSchedule(drops=[(0, 1, -1)])

    def test_infinite_horizon_rejected(self):
        with pytest.raises(FaultScheduleError, match="horizon"):
            FaultSchedule(down_rate=0.5, horizon=inf)

    def test_bad_rejoin_rate_rejected(self):
        with pytest.raises(FaultScheduleError, match="rejoin_rate"):
            FaultSchedule(rejoin_rate=1.5)

    def test_rejoin_delays_need_positive_minimum(self):
        with pytest.raises(FaultScheduleError, match="rejoin_delays"):
            FaultSchedule(crash_rate=0.5, rejoin_rate=0.5,
                          rejoin_delays=(0.0, 1.0))

    def test_explicit_rejoin_needs_a_crash(self):
        with pytest.raises(FaultScheduleError, match="never crashes"):
            FaultSchedule(rejoins={1: 2.0})

    def test_explicit_rejoin_must_follow_crash(self):
        with pytest.raises(FaultScheduleError, match="exceed its crash"):
            FaultSchedule(crashes={1: 3.0}, rejoins={1: 2.0})
        with pytest.raises(FaultScheduleError, match="finite"):
            FaultSchedule(crashes={1: 1.0}, rejoins={1: inf})

    def test_recurrent_needs_down_churn(self):
        with pytest.raises(FaultScheduleError, match="recurrent"):
            FaultSchedule(recurrent=True)


class TestScheduleDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultSchedule(seed=42, crash_rate=0.3, down_rate=0.4, drop_rate=0.2)
        b = FaultSchedule(seed=42, crash_rate=0.3, down_rate=0.4, drop_rate=0.2)
        for v in range(40):
            assert a.crash_time(v) == b.crash_time(v)
        for u, v in [(0, 1), (3, 7), (12, 5)]:
            assert a.down_intervals(u, v) == b.down_intervals(u, v)
            da, db = a.drop_checker(u, v), b.drop_checker(u, v)
            assert [da(s) for s in range(1, 64)] == [db(s) for s in range(1, 64)]

    def test_down_intervals_undirected(self):
        s = FaultSchedule(seed=3, down_rate=1.0)
        assert s.down_intervals(2, 9) == s.down_intervals(9, 2)

    def test_protect_wins(self):
        s = FaultSchedule(seed=0, crash_rate=1.0, protect=(5,))
        assert s.crash_time(5) == inf

    def test_is_empty(self):
        assert FaultSchedule(seed=7).is_empty()
        assert not FaultSchedule(seed=7, crash_rate=0.1).is_empty()
        assert not FaultSchedule(crashes={0: 1.0}).is_empty()

    def test_half_open_checker(self):
        s = FaultSchedule(downs={(0, 1): [(1.0, 2.0)]})
        down = s.down_checker(0, 1)
        assert down(0.5) == 0.0
        assert down(1.0) == 2.0   # down at the start...
        assert down(1.999) == 2.0
        assert down(2.0) == 0.0   # ...up at the end: deferred events progress

    def test_rejoin_stream_independent_of_crash_draw(self):
        base = FaultSchedule(seed=17, crash_rate=0.4)
        flappy = FaultSchedule(seed=17, crash_rate=0.4, rejoin_rate=1.0)
        lo, hi = flappy.rejoin_delays
        for v in range(32):
            # Toggling re-joins never perturbs the crash draw (the rejoin
            # sub-stream is domain-separated).
            assert base.crash_time(v) == flappy.crash_time(v)
            t_crash = flappy.crash_time(v)
            t_rejoin = flappy.rejoin_time(v)
            if t_crash == inf:
                assert t_rejoin == inf  # never crashed, never returns
            else:
                assert t_crash + lo <= t_rejoin <= t_crash + hi
        assert base.rejoining_nodes(range(32)) == []
        assert flappy.has_rejoins(range(32))
        assert flappy.rejoining_nodes(range(32)) == (
            flappy.crashed_nodes(range(32))  # rejoin_rate=1.0: all return
        )

    def test_recurrent_flaps_past_horizon(self):
        once = FaultSchedule(seed=4, down_rate=1.0)
        recur = FaultSchedule(seed=4, down_rate=1.0, recurrent=True)
        iv = recur.down_intervals(2, 5)
        # Same base train inside the first period...
        assert iv == once.down_intervals(2, 5)
        span = iv[-1][1]
        assert once.down_checker(2, 5)(span + 100.0) == 0.0
        # ...but the recurrent link is still flapping far past the horizon
        # where the one-shot schedule has healed for good.  (Every down
        # interval is >= 0.25 long, so a 0.125-step scan cannot miss one.)
        down = recur.down_checker(2, 5)
        far = 50.0 * recur.horizon
        assert any(down(far + 0.125 * i) > 0.0 for i in range(800))


# ----------------------------------------------------------------------
# transport semantics, one fault kind at a time
# ----------------------------------------------------------------------
class TwoBurst(Process):
    """Node 0 sends two messages to node 1; both sides log everything."""

    def on_start(self):
        if self.ctx.node_id == 0:
            self.ctx.send(1, ("m", 0))
            self.ctx.send(1, ("m", 1))

    def on_message(self, sender, payload):
        log = getattr(self, "log", [])
        log.append((self.ctx.now, payload))
        self.log = log
        self.ctx.set_output(tuple(log))

    def on_delivered(self, to, payload):
        self.acked = getattr(self, "acked", 0) + 1


class Detecting(TwoBurst):
    def on_neighbor_dead(self, neighbor):
        self.ctx.reset_link(neighbor)
        self.ctx.set_output(("dead", neighbor, self.ctx.now))


def test_down_interval_defers_never_loses():
    graph = topology.path_graph(2)
    faults = FaultSchedule(downs={(0, 1): [(0.25, 2.0)]})
    result = AsyncRuntime(
        graph, TwoBurst, ConstantDelay(0.5), faults=faults
    ).run()
    # First delivery would fire at 0.5, inside [0.25, 2.0): deferred to 2.0.
    log = result.outputs[1]
    assert log[0] == (2.0, ("m", 0))
    assert len(log) == 2
    assert result.dropped == 0
    assert result.messages == 2
    assert result.stop_reason == "quiescent"


def test_crashed_receiver_jams_link():
    graph = topology.path_graph(2)
    faults = FaultSchedule(crashes={1: 0.25})
    result = AsyncRuntime(
        graph, TwoBurst, ConstantDelay(0.5), faults=faults
    ).run()
    # Delivery at 0.5 finds node 1 dead: lost, no ack, second message never
    # injected — the link jams exactly like a real missing-ack timeout.
    assert result.outputs.get(1) is None
    assert result.messages == 1
    assert result.acks == 0
    assert result.dropped == 1
    assert result.stop_reason == "quiescent"


def test_detector_fires_and_reset_link_clears_outbox():
    graph = topology.path_graph(2)
    faults = FaultSchedule(crashes={1: 0.25})
    result = AsyncRuntime(
        graph, Detecting, ConstantDelay(0.5), faults=faults
    ).run()
    # Detection at crash + DETECT_TIMEOUT, and reset_link discards the
    # jammed outbox (the queued second message is never injected).
    assert result.outputs[0] == ("dead", 1, 0.25 + DETECT_TIMEOUT)
    assert result.messages == 1
    assert result.dropped == 1


def test_no_detector_for_base_process():
    """Processes that don't override on_neighbor_dead get no detector
    events at all — the schedule is identical to a detector-free run."""
    graph = topology.path_graph(2)
    faults = FaultSchedule(crashes={1: 0.25})
    result = AsyncRuntime(
        graph, TwoBurst, ConstantDelay(0.5), faults=faults
    ).run()
    # quiescence right after the jammed delivery, not after the timeout
    assert result.time_to_quiescence == 0.5


def test_crashed_node_skips_start_and_environment_events():
    class EnvStarter(TwoBurst):
        def on_start(self):
            if self.ctx.node_id == 1:
                self.ctx.send(0, ("from-dead", 0))
            self.ctx.schedule_environment_event(
                3.0, lambda: self.ctx.send(1 - self.ctx.node_id, ("late", 0))
            )

    graph = topology.path_graph(2)
    # Node 1 dead from the start: no on_start, no environment sends.
    faults = FaultSchedule(crashes={1: 0.0})
    result = AsyncRuntime(
        graph, EnvStarter, ConstantDelay(0.5), faults=faults
    ).run()
    assert result.outputs.get(0) is None  # nothing ever reached node 0
    # node 0's own late environment send was still made (and then lost)
    assert result.messages == 1
    assert result.dropped == 1


def test_drop_gets_link_layer_ack():
    graph = topology.path_graph(2)
    faults = FaultSchedule(drops=[(0, 1, 1)])  # first injection on 0 -> 1
    result = AsyncRuntime(
        graph, TwoBurst, ConstantDelay(0.5), faults=faults
    ).run()
    # m0 is lost at 0.5 but its ack frees the link at 1.0; m1 injects then
    # and delivers at 1.5.  The sender's on_delivered fires only for m1.
    assert result.outputs[1] == ((1.5, ("m", 1)),)
    assert result.messages == 2
    assert result.acks == 2
    assert result.dropped == 1


# ----------------------------------------------------------------------
# re-join transport semantics, per fault-kind combination (DESIGN.md §15)
# ----------------------------------------------------------------------
class RejoinAware(TwoBurst):
    """Node 0's view of a flapping neighbor: reset the jammed link on
    death, greet the returned incarnation with a fresh two-burst."""

    def on_neighbor_dead(self, neighbor):
        self.ctx.reset_link(neighbor)
        self.events = getattr(self, "events", [])
        self.events.append(("dead", neighbor, self.ctx.now))

    def on_neighbor_alive(self, neighbor):
        self.events = getattr(self, "events", [])
        self.events.append(("alive", neighbor, self.ctx.now))
        self.ctx.send(neighbor, ("post", 0))
        self.ctx.send(neighbor, ("post", 1))


def test_rejoin_after_jam_delivers_in_post_send_order():
    graph = topology.path_graph(2)
    faults = FaultSchedule(crashes={1: 0.25}, rejoins={1: 3.0})
    rt = AsyncRuntime(graph, RejoinAware, ConstantDelay(0.5), faults=faults)
    result = rt.run()
    # m0 dies against the crash (jamming the link), the detector resets
    # the jam at crash + timeout, and the greeting pair sent at the alive
    # detect reaches the fresh incarnation in plain injection order — the
    # rejoin-time delivery order is exactly the post-rejoin send order,
    # never a resurrected pre-crash packet.
    assert rt.processes[0].events == [
        ("dead", 1, 0.25 + DETECT_TIMEOUT),
        ("alive", 1, 3.0 + DETECT_TIMEOUT),
    ]
    assert result.outputs[1] == (
        (3.0 + DETECT_TIMEOUT + 0.5, ("post", 0)),
        (3.0 + DETECT_TIMEOUT + 1.5, ("post", 1)),
    )
    assert result.messages == 3  # m0 + the greeting pair; m1 never injects
    assert result.dropped == 1
    assert result.stop_reason == "quiescent"


def test_rejoin_voids_pre_crash_output_and_discards_queue():
    graph = topology.path_graph(2)
    faults = FaultSchedule(crashes={1: 0.75}, rejoins={1: 3.5})
    result = AsyncRuntime(
        graph, TwoBurst, ConstantDelay(0.5), faults=faults
    ).run()
    # m0 answered at 0.5; the crash at 0.75 loses m1 and jams the link;
    # the rejoin wipes the incarnation wholesale — output register
    # included — and TwoBurst has no detectors, so nobody re-sends: the
    # returned node ends blank even though its predecessor had answered.
    assert result.outputs.get(1) is None
    assert result.messages == 2
    assert result.dropped == 1
    assert result.time_to_output == 0.5  # scalar high-water mark survives


def test_fast_flap_never_accused_but_voids_in_flight():
    graph = topology.path_graph(2)
    faults = FaultSchedule(crashes={1: 0.25}, rejoins={1: 1.0})
    rt = AsyncRuntime(graph, RejoinAware, ConstantDelay(0.5), faults=faults)
    result = rt.run()
    # The rejoin (1.0) beats crash + DETECT_TIMEOUT (2.5): a flap faster
    # than the timeout is indistinguishable from slowness, so no observer
    # is ever told of the death — but the crash still voided m0, and the
    # rejoin-time link reset discarded the queued m1 instead of
    # resurrecting it at the fresh incarnation.
    assert rt.processes[0].events == [("alive", 1, 1.0 + DETECT_TIMEOUT)]
    assert result.outputs[1] == (
        (1.0 + DETECT_TIMEOUT + 0.5, ("post", 0)),
        (1.0 + DETECT_TIMEOUT + 1.5, ("post", 1)),
    )
    assert result.messages == 3
    assert result.dropped == 1


def test_post_rejoin_delivery_defers_through_down_interval():
    graph = topology.path_graph(2)
    faults = FaultSchedule(
        crashes={1: 0.25}, rejoins={1: 3.0},
        downs={(0, 1): [(5.5, 7.0)]},
    )
    result = AsyncRuntime(
        graph, RejoinAware, ConstantDelay(0.5), faults=faults
    ).run()
    # The greeting injects at the alive detect (5.25); its delivery would
    # fire at 5.75, inside [5.5, 7.0): deferred to the interval's end.
    # Down intervals and re-joins compose — deferral still never becomes
    # loss on the fresh incarnation's link.
    assert result.outputs[1] == (
        (7.0, ("post", 0)),
        (8.0, ("post", 1)),
    )
    assert result.dropped == 1  # only the original crash loss


def test_drop_stream_counts_across_incarnations():
    graph = topology.path_graph(2)
    faults = FaultSchedule(
        crashes={1: 0.25}, rejoins={1: 3.0}, drops=[(0, 1, 2)],
    )
    result = AsyncRuntime(
        graph, RejoinAware, ConstantDelay(0.5), faults=faults
    ).run()
    # The drop schedule keys the link's *injection* count, which a rejoin
    # does not reset: m0 was injection 1 (lost to the crash), so the first
    # greeting is injection 2 and the schedule drops it — receiver-side,
    # with the link-layer ack keeping the sender's pipeline moving.
    assert result.outputs[1] == ((3.0 + DETECT_TIMEOUT + 1.5, ("post", 1)),)
    assert result.dropped == 2
    assert result.messages == 3


def test_empty_schedule_is_byte_identical_to_no_schedule():
    graph = topology.cycle_graph(8)
    empty = FaultSchedule(seed=9)
    for model_idx in (0, 3, 6):
        plain_trace, empty_trace = [], []
        plain = AsyncRuntime(
            graph, TwoBurst, standard_adversaries(4)[model_idx],
            trace=lambda t, u, v, p: plain_trace.append((t, u, v, p)),
        ).run()
        with_empty = AsyncRuntime(
            graph, TwoBurst, standard_adversaries(4)[model_idx],
            faults=empty,
            trace=lambda t, u, v, p: empty_trace.append((t, u, v, p)),
        ).run()
        assert empty_trace == plain_trace
        assert with_empty == plain  # dataclass equality: every field


def test_sweep_replays_pin_faulty_schedules():
    """One schedule across sweep replays: every replay under the same delay
    model is byte-identical to a standalone faulty run (the pinnable-churn
    contract), and fault decisions are shared across models."""
    graph = topology.grid_graph(3, 4)
    faults = FaultSchedule(seed=21, crash_rate=0.2, down_rate=0.3,
                           drop_rate=0.1)
    sweep = AsyncSweep(graph, TwoBurst, faults=faults)
    for model_idx in (1, 5):
        model = standard_adversaries(2)[model_idx]
        sweep_trace, solo_trace, again_trace = [], [], []
        sweep_result = sweep.run(
            model, trace=lambda t, u, v, p: sweep_trace.append((t, u, v, p))
        )
        again_result = sweep.run(
            model, trace=lambda t, u, v, p: again_trace.append((t, u, v, p))
        )
        solo_result = AsyncRuntime(
            graph, TwoBurst, model, faults=faults,
            trace=lambda t, u, v, p: solo_trace.append((t, u, v, p)),
        ).run()
        assert sweep_trace == solo_trace == again_trace
        assert sweep_result == solo_result == again_result


# ----------------------------------------------------------------------
# draw-time delay validation (InvalidDelayError)
# ----------------------------------------------------------------------
class _BadGeneric:
    """No stream attributes: exercises the generic injection path."""

    def __init__(self, value):
        self.value = value

    def __call__(self, u, v, seq, now):
        return self.value


class _BadPair:
    """pair_stream producing an invalid forward delay."""

    def __init__(self, delay, ack=0.5):
        self._pair = (delay, ack)

    def __call__(self, u, v, seq, now):
        return self._pair[0]

    def link_stream(self, u, v):
        d = self._pair[0]
        return lambda seq: d

    def pair_stream(self, u, v):
        pair = self._pair
        return lambda seq: pair


class _BadBlock:
    """block_stream filling the buffer with an invalid delay."""

    def __init__(self, value):
        self.value = value

    def __call__(self, u, v, seq, now):
        return self.value

    def link_stream(self, u, v):
        value = self.value
        return lambda seq: value

    def block_stream(self, u, v):
        value = self.value

        def fill(buf, base, start, n):
            for i in range(base, base + 2 * n):
                buf[i] = value

        return fill


class _Sender(Process):
    def on_start(self):
        if self.ctx.node_id == 0:
            self.ctx.send(1, "x")

    def on_message(self, sender, payload):
        pass


@pytest.mark.parametrize("bad", [0.0, -1.0, nan, inf, 1.0000001])
def test_generic_path_rejects_bad_delay(bad):
    with pytest.raises(InvalidDelayError):
        AsyncRuntime(topology.path_graph(2), _Sender, _BadGeneric(bad)).run()


@pytest.mark.parametrize("bad", [0.0, nan, inf])
def test_pair_stream_path_rejects_bad_delay(bad):
    with pytest.raises(InvalidDelayError):
        AsyncRuntime(topology.path_graph(2), _Sender, _BadPair(bad)).run()


def test_pair_stream_path_rejects_bad_ack():
    with pytest.raises(InvalidDelayError):
        AsyncRuntime(
            topology.path_graph(2), _Sender, _BadPair(0.5, ack=nan)
        ).run()


@pytest.mark.parametrize("bad", [0.0, nan, inf])
def test_block_stream_path_rejects_bad_delay(bad):
    with pytest.raises(InvalidDelayError):
        AsyncRuntime(topology.path_graph(2), _Sender, _BadBlock(bad)).run()


def test_environment_event_rejects_bad_delay():
    class NegativeEnv(Process):
        def on_start(self):
            self.ctx.schedule_environment_event(-0.5, lambda: None)

    with pytest.raises(InvalidDelayError):
        AsyncRuntime(
            topology.path_graph(2), NegativeEnv, ConstantDelay(0.5)
        ).run()

    class NanEnv(Process):
        def on_start(self):
            self.ctx.schedule_environment_event(nan, lambda: None)

    with pytest.raises(InvalidDelayError):
        AsyncRuntime(
            topology.path_graph(2), NanEnv, ConstantDelay(0.5)
        ).run()


def test_invalid_delay_error_is_value_error():
    # Existing callers catching ValueError keep working.
    assert issubclass(InvalidDelayError, ValueError)


# ----------------------------------------------------------------------
# pooled-stage poison regression (satellite 2)
# ----------------------------------------------------------------------
class TestStagePoisoning:
    def _module(self, children, events):
        views = {
            0: ClusterView(cluster_id=0, parent=None, children=tuple(children))
        }
        return RegistrationModule(
            node_id=0,
            clusters=views,
            send=lambda to, payload, priority: events.append(("send", to, payload)),
            on_registered=lambda c, t: events.append(("registered", c, t)),
            on_go_ahead=lambda c, t: events.append(("go", c, t)),
            priority_fn=lambda tag: (0,),
        )

    def test_clean_cycle_recycles_slot(self):
        events = []
        module = self._module((), events)
        module.register(0, TAG)
        module.deregister(0, TAG)
        assert ("go", 0, TAG) in events
        assert len(module._free) == 1

    def test_crash_during_stage_poisons_slot(self):
        events = []
        module = self._module((1,), events)
        module.register(0, TAG)
        stage = next(iter(module._stages.values()))
        # The only child crashes mid-wave: the stage completes over the
        # survivors but its slot must never reach the free list.
        module.prune_child(1)
        assert stage.poisoned
        assert ("registered", 0, TAG) in events
        module.deregister(0, TAG)
        assert ("go", 0, TAG) in events
        assert module._free == []

    def test_poisoned_slot_never_reused(self):
        events = []
        module = self._module((1,), events)
        module.register(0, TAG)
        stage = next(iter(module._stages.values()))
        module.prune_child(1)
        module.deregister(0, TAG)
        # A later stage allocates fresh: it must not be the poisoned slot.
        module.register(0, TAG + 1)
        new_stage = module._stages.get((0 << 32) | (TAG + 1))
        assert new_stage is not None
        assert new_stage is not stage

    def test_poisoned_slot_stays_unpooled_after_readmit(self):
        """Re-join hygiene (DESIGN.md §15): readmission restores the
        pristine cluster view but is not absolution — a crash-touched
        slot never reaches the free list, and the next stage allocates
        fresh while addressing the returned child again."""
        events = []
        module = self._module((1,), events)
        module.register(0, TAG)
        stage = next(iter(module._stages.values()))
        module.prune_child(1)
        assert stage.poisoned
        module.readmit_child(1)
        assert stage.poisoned                         # stays poisoned
        assert module.clusters[0].children == (1,)    # pristine view back
        module.deregister(0, TAG)
        assert module._free == []                     # never pooled
        module.register(0, TAG + 1)
        new_stage = module._stages.get((0 << 32) | (TAG + 1))
        assert new_stage is not None and new_stage is not stage
        assert not new_stage.poisoned
        # Stages created after the readmission wait on the returned child
        # again (the live, re-closed stage kept its survivor view).
        assert new_stage.view.children == (1,)
        assert stage.view.children == ()

    def test_orphaned_stage_poisoned_on_parent_crash(self):
        events = []
        views = {
            0: ClusterView(cluster_id=0, parent=1, children=())
        }
        module = RegistrationModule(
            node_id=0,
            clusters=views,
            send=lambda to, payload, priority: events.append(("send", to, payload)),
            on_registered=lambda c, t: events.append(("registered", c, t)),
            on_go_ahead=lambda c, t: events.append(("go", c, t)),
            priority_fn=lambda tag: (0,),
        )
        module.register(0, TAG)
        stage = next(iter(module._stages.values()))
        module.prune_child(1)  # the parent died: the stage is orphaned
        assert stage.poisoned
        assert module._free == []


# ----------------------------------------------------------------------
# sync engine fault mode
# ----------------------------------------------------------------------
class TestSyncFaults:
    def test_crashed_relay_blocks_bfs(self):
        graph = topology.path_graph(3)
        faults = FaultSchedule(crashes={1: 0.0})
        result = run_synchronous(graph, bfs_spec(0), faults=faults)
        assert result.outputs == {0: (0, None)}
        assert result.dropped >= 1

    def test_crashed_initiator_never_starts(self):
        graph = topology.path_graph(3)
        faults = FaultSchedule(crashes={0: 0.0})
        result = run_synchronous(graph, bfs_spec(0), faults=faults)
        assert result.outputs == {}
        assert result.messages == 0

    def test_drop_loses_one_message(self):
        graph = topology.path_graph(3)
        faults = FaultSchedule(drops=[(0, 1, 1)])
        result = run_synchronous(graph, bfs_spec(0), faults=faults)
        assert result.outputs == {0: (0, None)}
        assert result.dropped == 1

    def test_down_interval_defers_rounds(self):
        graph = topology.path_graph(3)
        faults = FaultSchedule(downs={(0, 1): [(1.0, 3.0)]})
        result = run_synchronous(graph, bfs_spec(0), faults=faults)
        # 0 -> 1 would arrive at round 1, inside [1, 3): deferred to 3.
        assert result.output_round[1] == 3
        assert result.output_round[2] == 4
        assert result.outputs[2] == (2, 1)
        assert result.dropped == 0

    def test_seeded_schedule_deterministic(self):
        graph = topology.cycle_graph(16)
        spec = bfs_spec(0)
        faults = FaultSchedule(seed=5, crash_rate=0.25, drop_rate=0.1,
                               protect=(0,))
        a = run_synchronous(graph, spec, faults=faults)
        b = run_synchronous(graph, spec, faults=faults)
        assert a.outputs == b.outputs
        assert a.messages == b.messages
        assert a.dropped == b.dropped

    def test_empty_schedule_identity(self):
        graph = topology.cycle_graph(10)
        spec = bfs_spec(0)
        plain = run_synchronous(graph, spec)
        empty = run_synchronous(graph, spec, faults=FaultSchedule(seed=3))
        assert empty == plain

    def test_rejoined_node_reborn_blank(self):
        graph = topology.path_graph(3)
        # Node 1 relays in round 1, answers, then crashes; its rebirth at
        # round 4 voids the answer and nobody re-floods (plain BFS sends
        # only on improvement), so the returned node ends blank while the
        # downstream answer it enabled survives.
        faults = FaultSchedule(crashes={1: 2.0}, rejoins={1: 4.0})
        result = run_synchronous(graph, bfs_spec(0), faults=faults)
        assert result.outputs == {0: (0, None), 2: (2, 1)}
        assert 1 not in result.output_round


# ----------------------------------------------------------------------
# churn recovery end to end
# ----------------------------------------------------------------------
class TestRunChurn:
    def _distances(self, graph, survivors, root):
        live = set(survivors)
        dist = {root: 0}
        frontier = [root]
        while frontier:
            nxt = []
            for v in frontier:
                for u in graph.neighbors(v):
                    if u in live and u not in dist:
                        dist[u] = dist[v] + 1
                        nxt.append(u)
            frontier = nxt
        return dist

    def test_unprotected_root_rejected(self):
        graph = topology.cycle_graph(8)
        faults = FaultSchedule(crashes={0: 1.0})
        with pytest.raises(ValueError, match="protect"):
            run_churn(graph, bfs_spec, standard_adversaries(0)[0], faults)

    def test_bad_mode_rejected(self):
        graph = topology.cycle_graph(8)
        faults = FaultSchedule(seed=1, crash_rate=0.2, protect=(0,))
        with pytest.raises(ValueError, match="mode"):
            run_churn(graph, bfs_spec, standard_adversaries(0)[0], faults,
                      mode="panic")

    @pytest.mark.parametrize("mode", ["degrade", "rebuild"])
    def test_churn_terminates_with_correct_survivor_outputs(self, mode):
        graph = topology.cycle_graph(24)
        model = standard_adversaries(7)[2]
        faults = FaultSchedule(seed=11, crash_rate=0.15, protect=(0,))
        out = run_churn(graph, bfs_spec, model, faults, mode=mode, root=0)
        assert out.stop_reason == "quiescent"
        assert out.crashed  # the seed does crash somebody
        assert 0 in out.survivors
        dist = self._distances(graph, out.survivors, 0)
        if mode == "rebuild":
            # Exact BFS distances on the surviving component.
            assert out.answered == len(out.survivors)
            for v in out.survivors:
                assert out.outputs[v][0] == dist[v]
            assert out.rebuild_messages > 0
        else:
            # Degrade: every answered survivor is bounded by
            # dist_G(v) <= output <= dist_H(v).
            assert out.rebuild_messages == 0
            for v, (d, _parent) in out.outputs.items():
                assert d <= dist[v]

    def test_reanchor_answers_every_survivor_within_sandwich(self):
        graph = topology.cycle_graph(24)
        model = standard_adversaries(7)[2]
        faults = FaultSchedule(seed=11, crash_rate=0.15, protect=(0,))
        out = run_churn(graph, bfs_spec, model, faults, mode="reanchor")
        degraded = run_churn(graph, bfs_spec, model, faults, mode="degrade")
        assert out.stop_reason == "quiescent"
        # Completeness: the patch wave reaches every orphaned survivor.
        assert out.answered == out.survivor_count >= degraded.answered
        dist_h = self._distances(graph, out.survivors, 0)
        dist_g = self._distances(graph, graph.nodes, 0)
        for v in out.survivors:
            assert dist_g[v] <= out.outputs[v][0] <= dist_h[v]
        # Cost ladder: the wave is cheaper than a full clean rebuild pass.
        rebuilt = run_churn(graph, bfs_spec, model, faults, mode="rebuild")
        assert 0 < out.reanchor_messages < rebuilt.rebuild_messages
        assert out.rebuild_messages == 0

    def test_rejoined_nodes_readmitted_and_reanswered(self):
        graph = topology.cycle_graph(24)
        model = standard_adversaries(7)[2]
        faults = FaultSchedule(seed=11, crash_rate=0.15, rejoin_rate=1.0,
                               protect=(0,))
        out = run_churn(graph, bfs_spec, model, faults, mode="degrade")
        assert out.stop_reason == "quiescent"
        # Every crashed node returned, H's final snapshot is the whole
        # graph, and the answers equal the fault-free run's exactly.
        assert out.rejoined == out.crashed
        assert len(out.survivors) == graph.num_nodes
        from repro.core.synchronizer import run_synchronized

        clean = run_synchronized(graph, bfs_spec(0), model)
        assert out.outputs == clean.outputs

    def test_churn_deterministic_across_runs(self):
        graph = topology.cycle_graph(24)
        model = standard_adversaries(7)[4]
        faults = FaultSchedule(seed=13, crash_rate=0.15, protect=(0,))
        a = run_churn(graph, bfs_spec, model, faults, mode="degrade")
        b = run_churn(graph, bfs_spec, model, faults, mode="degrade")
        assert a == b
        faults = FaultSchedule(seed=13, crash_rate=0.15, rejoin_rate=0.7,
                               protect=(0,))
        c = run_churn(graph, bfs_spec, model, faults, mode="reanchor")
        d = run_churn(graph, bfs_spec, model, faults, mode="reanchor")
        assert c == d

    def test_link_churn_only_matches_fault_free_outputs(self):
        """Down intervals defer but never lose: a crash-free churn run must
        produce exactly the fault-free BFS outputs (only later)."""
        graph = topology.cycle_graph(16)
        model = standard_adversaries(3)[1]
        faults = FaultSchedule(seed=19, down_rate=0.3)
        from repro.core.synchronizer import run_synchronized

        clean = run_synchronized(graph, bfs_spec(0), model)
        churned = run_churn(graph, bfs_spec, model, faults, mode="degrade")
        assert churned.stop_reason == "quiescent"
        assert len(churned.survivors) == graph.num_nodes
        assert churned.outputs == clean.outputs
