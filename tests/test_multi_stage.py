"""Tests for the staged 2^t*l-thresholded BFS (Section 4.3, Theorem 4.17)."""

import pytest

from repro.core import registry_for_threshold, run_multi_stage_bfs
from repro.net import ConstantDelay, standard_adversaries, topology
from repro.net.graph import INFINITY

ADVERSARIES = standard_adversaries(seed=23)


def assert_correct(graph, sources, limit, outcome):
    source_set = {sources} if isinstance(sources, int) else set(sources)
    expected = graph.bfs_distances(frozenset(source_set))
    for v in graph.nodes:
        want = expected[v] if expected[v] <= limit else INFINITY
        assert outcome.distances[v] == want, (v, outcome.distances[v], want)


class TestStaging:
    @pytest.mark.parametrize("model", ADVERSARIES, ids=repr)
    def test_path_small_stage_threshold(self, model):
        """Many stages with a small 2^t: the staging machinery dominates."""
        g = topology.path_graph(20)
        outcome = run_multi_stage_bfs(g, 0, 4, 5, model)
        assert_correct(g, 0, 20, outcome)

    @pytest.mark.parametrize("theta,stages", [(1, 8), (2, 4), (4, 2), (8, 1)])
    def test_same_range_different_splits(self, theta, stages):
        g = topology.path_graph(10)
        outcome = run_multi_stage_bfs(g, 0, theta, stages, ADVERSARIES[3])
        assert_correct(g, 0, theta * stages, outcome)

    def test_multi_source(self):
        g = topology.grid_graph(6, 6)
        outcome = run_multi_stage_bfs(g, {0, 35}, 2, 4, ADVERSARIES[4])
        assert_correct(g, {0, 35}, 8, outcome)

    def test_unreached_beyond_range(self):
        g = topology.path_graph(16)
        outcome = run_multi_stage_bfs(g, 0, 2, 3, ADVERSARIES[2])
        assert_correct(g, 0, 6, outcome)

    def test_stage_sources_at_exact_distance(self):
        """A node at distance exactly T*2^t becomes a stage-T source."""
        g = topology.cycle_graph(17)
        outcome = run_multi_stage_bfs(g, 0, 2, 4, ADVERSARIES[1])
        assert_correct(g, 0, 8, outcome)


class TestRemark418:
    """Arbitrary thresholds d <= 2^t * l via the distance filter."""

    @pytest.mark.parametrize("d", [3, 5, 7, 10, 11])
    def test_arbitrary_threshold(self, d):
        g = topology.path_graph(16)
        outcome = run_multi_stage_bfs(
            g, 0, 4, 3, ADVERSARIES[5], distance_filter=d
        )
        assert_correct(g, 0, d, outcome)

    def test_filter_bound_validated(self):
        g = topology.path_graph(8)
        with pytest.raises(ValueError, match="exceeds"):
            run_multi_stage_bfs(g, 0, 2, 2, ConstantDelay(1.0), distance_filter=5)


class TestCoverEconomy:
    def test_small_stage_needs_small_covers(self):
        """Theorem 4.17's point: a 2^t-cover serves a 2^t*l-range BFS."""
        g = topology.path_graph(24)
        registry = registry_for_threshold(g, 2)  # top radius 2^(1+5)
        outcome = run_multi_stage_bfs(
            g, 0, 2, 12, ADVERSARIES[0], registry=registry
        )
        assert_correct(g, 0, 24, outcome)

    def test_message_scaling_linear_in_stages(self):
        g = topology.cycle_graph(32)
        m4 = run_multi_stage_bfs(g, 0, 4, 2, ConstantDelay(1.0)).messages
        m8 = run_multi_stage_bfs(g, 0, 4, 4, ConstantDelay(1.0)).messages
        # Theorem 4.17: messages O(m * l * polylog); doubling l should not
        # much more than double the traffic.
        assert m8 <= 3 * m4

    def test_errors(self):
        g = topology.path_graph(4)
        with pytest.raises(ValueError, match="stage"):
            run_multi_stage_bfs(g, 0, 2, 0, ConstantDelay(1.0))
        with pytest.raises(ValueError, match="source"):
            run_multi_stage_bfs(g, set(), 2, 2, ConstantDelay(1.0))
