"""Seeded-mutant acceptance tests for repro.check (DESIGN.md §13).

Each test plants one real protocol bug — a guard the fault-tolerance
design depends on, deleted the way a refactor plausibly would delete it —
and asserts the model checker finds it within a bounded budget, shrinks
the counterexample, and serializes a trace that replays bit-exactly.

Mutant 1 drops the recovery synchronizer's straggler guard: answers from
a pruned (dead) child are no longer discarded, so a corpse-sent CHILD_ANS
deferred across the down interval lands in a force-closed wave and trips
the Lemma 5.1 oracle inside the core.  Mutant 2 skips crash poisoning in
the registration pool: ``prune_child`` no longer marks crash-touched
stages, so a torn slot recycles into the free list and the pool-hygiene
probe catches the reuse.  Mutant 3 drops the readmission on
``on_neighbor_alive``: a re-joined neighbor stays pruned forever, and the
rejoin-consistency probe catches the stale prune on every interleaving
where a detect fired before the rejoin (DESIGN.md §15).

The mutants are loaded by source-patching the module text and exec-ing it
under a private module name — the installed package is never modified, and
both the mutated and the pristine class exist side by side so the tests
can also assert the real tree stays clean on the same cells.
"""

import importlib.util
import sys

import pytest

from repro.check import explore
from repro.check.trace import (
    canonical_bytes,
    make_trace,
    replay,
    shrink,
    trace_signature,
)
from repro.check.workloads import RegWorkload, SyncWorkload
from repro.net.topology import cycle_graph, star_graph

#: (module path, substring to replace, replacement) per mutant.  Both
#: replacements are verified to actually occur (see test_mutants_differ).
STRAGGLER_GUARD = (
    "repro/core/recovery.py",
    "if sender in pruned:",
    "if False and sender in pruned:",
)
SKIP_POISONING = (
    "repro/core/registration.py",
    "stage.poisoned = True",
    "stage.poisoned = False",
)
READMIT_DROPPED = (
    "repro/core/recovery.py",
    "self.node.readmit_neighbor(neighbor)",
    "pass  # mutant: readmission dropped",
)


def _load_mutated(which, modname):
    """Exec a source-patched copy of a repro.core module under ``modname``.

    The module must be registered in ``sys.modules`` *before* exec: the
    dataclasses in these modules look their defining module up by name
    during class processing.
    """
    relpath, old, new = which
    import repro

    root = repro.__file__.rsplit("/repro/", 1)[0]
    path = f"{root}/{relpath}"
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    assert old in source, f"mutation site {old!r} missing from {relpath}"
    mutated = source.replace(old, new)
    assert mutated != source
    spec = importlib.util.spec_from_loader(modname, loader=None, origin=path)
    module = importlib.util.module_from_spec(spec)
    module.__package__ = "repro.core"
    sys.modules[modname] = module
    try:
        exec(compile(mutated, f"{path} (mutated)", "exec"), module.__dict__)
    except BaseException:
        del sys.modules[modname]
        raise
    return module


@pytest.fixture(scope="module")
def straggler_mutant():
    mod = _load_mutated(STRAGGLER_GUARD, "repro.core._mut_recovery")
    yield mod
    sys.modules.pop("repro.core._mut_recovery", None)


@pytest.fixture(scope="module")
def poisoning_mutant():
    mod = _load_mutated(SKIP_POISONING, "repro.core._mut_registration")
    yield mod
    sys.modules.pop("repro.core._mut_registration", None)


@pytest.fixture(scope="module")
def readmit_mutant():
    mod = _load_mutated(READMIT_DROPPED, "repro.core._mut_readmit")
    yield mod
    sys.modules.pop("repro.core._mut_readmit", None)


def _straggler_workload(mod):
    return SyncWorkload(
        "churn:cycle:5:crash:2", cycle_graph(5), crashable=(2,),
        base_cls=mod.RecoverySynchronizerProcess,
    )


def _poisoning_workload(mod):
    return RegWorkload(
        "reg:star:4:crash:1", star_graph(4), crashable=(1,),
        module_cls=mod.RegistrationModule,
    )


def _readmit_workload(mod):
    return SyncWorkload(
        "rejoin:cycle:5:crash:2", cycle_graph(5), crashable=(2,),
        rejoinable=(2,), base_cls=mod.RecoverySynchronizerProcess,
    )


def test_mutants_differ(straggler_mutant, poisoning_mutant):
    """The patched classes are genuinely distinct objects from the real
    ones (a no-op patch would make every other test vacuous)."""
    from repro.core.recovery import RecoverySynchronizerProcess
    from repro.core.registration import RegistrationModule

    assert straggler_mutant.RecoverySynchronizerProcess is not (
        RecoverySynchronizerProcess
    )
    assert poisoning_mutant.RegistrationModule is not RegistrationModule


def test_checker_finds_straggler_mutant(straggler_mutant):
    report = explore(_straggler_workload(straggler_mutant), budget=500)
    assert report.violation is not None, (
        f"straggler mutant survived {report.executions} executions"
    )
    probe, message = report.violation
    assert probe == "protocol-exception"
    assert "unexpected child answer" in message
    assert report.violation_choices


def test_checker_finds_poisoning_mutant(poisoning_mutant):
    report = explore(_poisoning_workload(poisoning_mutant), budget=100)
    assert report.violation is not None, (
        f"skip-poisoning mutant survived {report.executions} executions"
    )
    probe, message = report.violation
    assert probe == "pool-hygiene"
    assert "free pool" in message
    assert report.violation_choices


def test_checker_finds_readmit_mutant(readmit_mutant):
    from repro.core.recovery import RecoverySynchronizerProcess

    assert readmit_mutant.RecoverySynchronizerProcess is not (
        RecoverySynchronizerProcess
    )
    report = explore(_readmit_workload(readmit_mutant), budget=500)
    assert report.violation is not None, (
        f"readmit-dropped mutant survived {report.executions} executions"
    )
    probe, message = report.violation
    assert probe == "rejoin-consistency"
    assert "still prunes" in message
    assert report.violation_choices


def test_readmit_counterexample_shrinks_and_replays(readmit_mutant):
    """Full counterexample lifecycle for the rejoin path: find, shrink,
    serialize, strict-replay, and byte-identical re-derivation from a
    second independent run (the ISSUE's replayable-shrunk-trace bar)."""
    traces = []
    for _ in range(2):
        workload = _readmit_workload(readmit_mutant)
        report = explore(workload, budget=500)
        assert report.violation is not None
        choices = shrink(
            workload, report.violation_choices, report.violation
        )
        assert len(choices) <= len(report.violation_choices)
        trace = make_trace(workload.name, choices, report.violation)
        outcome = replay(trace, _readmit_workload(readmit_mutant))
        assert outcome.violation is not None
        assert outcome.violation.signature() == trace_signature(trace)
        traces.append(canonical_bytes(trace))
    assert traces[0] == traces[1]


def test_real_tree_clean_on_rejoin_cell():
    """The rejoin cell stays clean on the pristine tree within the same
    budget the mutant falls in — the finding is the bug's, not the
    cell's.  (Rejoin cells are too deep to exhaust; bounded cleanliness
    is what CI asserts too.)"""
    report = explore(
        SyncWorkload(
            "rejoin:cycle:5:crash:2", cycle_graph(5), crashable=(2,),
            rejoinable=(2,),
        ),
        budget=500,
    )
    assert report.violation is None


def test_real_tree_clean_on_mutant_cells():
    """The same cells exhaust with zero violations on the pristine tree —
    the mutant findings are the bug's, not the cells'."""
    report = explore(
        RegWorkload("reg:star:4:crash:1", star_graph(4), crashable=(1,)),
        budget=2000,
    )
    assert report.exhausted
    assert report.violation is None


def test_poisoning_counterexample_shrinks_and_replays(poisoning_mutant):
    """End-to-end counterexample lifecycle on the cheap mutant: find,
    shrink, serialize, strict-replay, and byte-identical re-derivation
    from a second independent run."""
    traces = []
    for _ in range(2):
        workload = _poisoning_workload(poisoning_mutant)
        report = explore(workload, budget=100)
        assert report.violation is not None
        choices = shrink(
            workload, report.violation_choices, report.violation
        )
        assert len(choices) <= len(report.violation_choices)
        trace = make_trace(workload.name, choices, report.violation)
        outcome = replay(trace, _poisoning_workload(poisoning_mutant))
        assert outcome.violation is not None
        assert outcome.violation.signature() == trace_signature(trace)
        traces.append(canonical_bytes(trace))
    assert traces[0] == traces[1]


def test_straggler_counterexample_replays(straggler_mutant):
    """The straggler counterexample strict-replays unshrunk (shrinking the
    long churn trace is exercised implicitly by the CLI path; here the
    point is bit-exact reproduction of the raw finding)."""
    workload = _straggler_workload(straggler_mutant)
    report = explore(workload, budget=500)
    assert report.violation is not None
    trace = make_trace(workload.name, report.violation_choices, report.violation)
    outcome = replay(trace, _straggler_workload(straggler_mutant))
    assert outcome.violation is not None
    assert outcome.violation.signature() == trace_signature(trace)
    # Two independent finds serialize byte-identically.
    second = explore(_straggler_workload(straggler_mutant), budget=500)
    assert second.violation == report.violation
    assert canonical_bytes(
        make_trace(workload.name, second.violation_choices, second.violation)
    ) == canonical_bytes(trace)
