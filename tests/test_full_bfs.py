"""Tests for the complete doubling BFS (Section 4.6, Theorems 4.23/4.24)."""

import pytest

from repro.core import run_full_bfs
from repro.net import ConstantDelay, standard_adversaries, topology
from repro.net.graph import validate_tree

ADVERSARIES = standard_adversaries(seed=31)


def assert_exact(graph, sources, outcome):
    source_set = {sources} if isinstance(sources, int) else set(sources)
    expected = graph.bfs_distances(frozenset(source_set))
    for v in graph.nodes:
        assert outcome.distances[v] == expected[v], (v, outcome.distances[v])


class TestSingleSource:
    @pytest.mark.parametrize("model", ADVERSARIES, ids=repr)
    def test_path(self, model):
        g = topology.path_graph(12)
        outcome = run_full_bfs(g, 0, model)
        assert_exact(g, 0, outcome)

    @pytest.mark.parametrize("family", ["cycle", "grid", "tree", "star", "er_sparse"])
    def test_families(self, family):
        g = topology.make_topology(family, 20, seed=7)
        outcome = run_full_bfs(g, 0, ADVERSARIES[3])
        assert_exact(g, 0, outcome)

    def test_parents_form_bfs_tree(self):
        g = topology.grid_graph(4, 4)
        outcome = run_full_bfs(g, 0, ADVERSARIES[2])
        parent = {v: outcome.parents[v] for v in g.nodes}
        validate_tree(g.num_nodes, parent, 0)
        expected = g.bfs_distances(0)
        for v in g.nodes:
            if v != 0:
                assert expected[parent[v]] == expected[v] - 1

    def test_single_node(self):
        from repro.net import Graph

        outcome = run_full_bfs(Graph(1, []), 0, ConstantDelay(1.0))
        assert outcome.distances == {0: 0}


class TestMultiSourceTheorem424:
    @pytest.mark.parametrize("model", ADVERSARIES[:5], ids=repr)
    def test_three_sources(self, model):
        g = topology.path_graph(16)
        outcome = run_full_bfs(g, {0, 8, 15}, model)
        assert_exact(g, {0, 8, 15}, outcome)

    def test_d1_much_smaller_than_d(self):
        """Dense sources: outputs must not wait for diameter-scale work."""
        g = topology.path_graph(32)
        sources = set(range(0, 32, 4))
        outcome = run_full_bfs(g, sources, ConstantDelay(1.0))
        assert_exact(g, sources, outcome)
        sparse = run_full_bfs(g, {0}, ConstantDelay(1.0))
        # D1 = 2 vs D1 = 31: time to output should clearly separate.
        assert outcome.result.time_to_output < sparse.result.time_to_output / 2

    def test_sources_die_at_different_iterations(self):
        g = topology.caterpillar_graph(10, 2)
        outcome = run_full_bfs(g, {0, 9}, ADVERSARIES[4])
        assert_exact(g, {0, 9}, outcome)


class TestShape:
    def test_message_scaling(self):
        import math

        for n in (16, 32):
            g = topology.cycle_graph(n)
            outcome = run_full_bfs(g, 0, ConstantDelay(1.0))
            assert outcome.messages <= 120 * g.num_edges * math.log2(n) ** 3

    def test_deterministic(self):
        g = topology.grid_graph(4, 4)
        a = run_full_bfs(g, 0, ADVERSARIES[1])
        b = run_full_bfs(g, 0, ADVERSARIES[1])
        assert a.distances == b.distances
        assert a.messages == b.messages

    def test_requires_sources(self):
        with pytest.raises(ValueError, match="source"):
            run_full_bfs(topology.path_graph(4), set(), ConstantDelay(1.0))
