# det: module=repro.net.delays
"""DET002 does not apply inside the sanctioned entropy modules."""

import random


def draw():
    return random.Random(("stream", 7).__repr__()).random()
