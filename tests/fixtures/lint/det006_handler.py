# det: module=repro.core.fixture_flow_handler
"""DET006 cross-module fixture, consuming half (see det006_emitter.py)."""

from det006_emitter import OP_WAVE_DOWN, OP_WAVE_UP  # noqa: F401


class WaveNode:
    def __init__(self):
        self.on_message_table = (
            self._handle_up,
            self._handle_down,
        )

    def _handle_up(self, sender, payload):
        del sender, payload

    def _handle_down(self, sender, payload):
        del sender, payload
