# det: module=repro.core.fixture_flow_neg
"""DET006 negative fixture: every opcode participates in a full flow."""

OP_PING = 0
OP_PONG = 1
OP_BULK = 2

_KNOWN_OPS = (OP_PING, OP_PONG, OP_BULK)


def send(to, payload):
    del to, payload


def emit_all():
    send(1, (OP_PING, "payload"))
    send(1, (OP_PONG,))
    send(1, (OP_BULK, 1, 2, 3))


class Node:
    def __init__(self):
        self._dispatch = (
            self._handle_ping,
            self._handle_pong,
            self._handle_bulk,
        )

    def _handle_ping(self, sender, payload):
        del sender, payload

    def _handle_pong(self, sender, payload):
        del sender, payload

    def _handle_bulk(self, sender, payload):
        del sender, payload

    def handle(self, sender, payload):
        op = payload[0]
        if op in _KNOWN_OPS:
            self._dispatch[op](sender, payload)
