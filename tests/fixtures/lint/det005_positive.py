# det: module=repro.core.fixture
"""DET005 true positives: mutable defaults on handlers and processes."""


class FakeProcess:
    def __init__(self, ctx, peers=[]):        # flagged: shared list
        self.peers = peers

    def on_message(self, sender, payload, seen={}):   # flagged: shared dict
        seen[sender] = payload


def handler(batch=set()):                     # flagged: shared set
    return batch


def factory(pool=list(), table=dict()):       # flagged twice: ctor calls
    return pool, table


def keyword_only(*, acc=[]):                  # flagged: kw-only default
    return acc
