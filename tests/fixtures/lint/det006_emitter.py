# det: module=repro.core.fixture_flow_emitter
"""DET006 cross-module fixture, emitting half: the consumers live in
``det006_handler.py`` — linting this file alone dangles both opcodes,
linting the pair together is clean."""

OP_WAVE_UP = 0
OP_WAVE_DOWN = 1


def send(to, payload):
    del to, payload


def start_wave():
    send(1, (OP_WAVE_UP, "token"))
    send(2, (OP_WAVE_DOWN, "token"))
