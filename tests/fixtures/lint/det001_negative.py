# det: module=repro.core.fixture
"""DET001 true negatives: sorted wrapping, order-insensitive consumers,
set-to-set flows, and demoted names must all pass."""

from typing import Dict, Set


def sorted_iteration(pending: Set[int]):
    for v in sorted(pending):             # sorted(): sanctioned
        print(v)
    return [v + 1 for v in sorted(pending)]


def order_insensitive_consumers(pending: Set[int]):
    total = sum(v for v in pending)       # sum/any/all/min/max/len: fine
    biggest = max(pending)
    return total, biggest, len(pending), any(v > 2 for v in pending)


def set_to_set(pending: Set[int]):
    return {v + 1 for v in pending}       # set comp over set: no order out


def demoted_name(pending: Set[int]):
    items = sorted(pending)               # reassignment demotes set-ness
    for v in items:
        print(v)


def plain_containers(pairs: Dict[int, int], seq):
    for k, v in pairs.items():            # dict iteration: insertion order
        print(k, v)
    for v in seq:                         # unknown type: never flagged
        print(v)


def membership_only(pending: Set[int], v: int):
    return v in pending                   # membership is order-free


def suppressed(pending: Set[int]):
    for v in pending:  # det: ignore[DET001] -- demo fixture: body is commutative over elements
        print(v)
