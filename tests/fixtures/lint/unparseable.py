# det: module=repro.core.fixture
"""LNT003: this file is deliberately not valid Python."""

def broken(:
    return
