# det: module=repro.core.fixture
"""DET001 true positives: ordered consumption of set-typed values."""

from typing import Dict, Set


def loop_over_set_literal():
    for v in {3, 1, 2}:           # flagged: for over set literal
        print(v)


def loop_over_set_call(items):
    pending = set(items)
    for v in pending:             # flagged: name inferred set-typed
        print(v)


def loop_over_annotated_param(pending: Set[int]):
    for v in pending:             # flagged: param annotation
        print(v)


def materialize(pending: Set[int]):
    ordered = list(pending)       # flagged: list() bakes hash order in
    pairs = [(i, v) for i, v in enumerate(pending)]  # flagged: enumerate()
    return ordered, pairs


def dict_from_set(pending: Set[int]):
    return {v: 0 for v in pending}  # flagged: dict order from set order


def union_iteration(a: Set[int], b: Set[int]):
    for v in a | b:               # flagged: set union is still a set
        print(v)


class Holder:
    def __init__(self):
        self.waiting: Set[int] = set()

    def drain(self):
        for v in self.waiting:    # flagged: self attr annotated as set
            print(v)
