# det: module=repro.core.fixture
"""DET003 true negatives: complete resets in every supported shape."""

from typing import Dict, List


class CompleteStageState:
    """Scalars reassigned, containers cleared — the real pool shape."""

    __slots__ = ("key", "state", "child_marks", "pending")

    def __init__(self, key, state):
        self.child_marks: Dict[int, str] = {}
        self.pending: List[int] = []
        self.key = key
        self.state = state

    def reuse(self, key, state):
        self.key = key
        self.state = state
        self.child_marks.clear()
        self.pending[:] = []          # slice assignment also counts


class ResetNamed:
    """The rule also accepts a method named ``reset``."""

    def __init__(self):
        self.count = 0

    def reset(self):
        self.count = 0


class NoPool:
    """No reuse()/reset() method: the rule does not apply."""

    def __init__(self):
        self.anything = 1

    def clear_view(self):
        self.anything = 2
