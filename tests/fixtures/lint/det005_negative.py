# det: module=repro.core.fixture
"""DET005 true negatives: immutable defaults and the None idiom."""


class FakeProcess:
    def __init__(self, ctx, peers=None, mode="fast", limit=16, pair=(1, 2)):
        self.peers = [] if peers is None else peers
        self.mode = mode
        self.limit = limit
        self.pair = pair

    def on_message(self, sender, payload, retries=0):
        return sender, payload, retries


def handler(batch=None, empty=(), name=""):
    return batch, empty, name
