# det: module=repro.core.fixture_flow_pos
"""DET006 positive fixture: one dangling emission, one dead opcode."""

OP_PING = 0
OP_LOST = 1
OP_DEAD = 2


def send(to, payload):
    del to, payload


def emit_all():
    send(1, (OP_PING, "payload"))
    send(1, (OP_LOST, 42))  # nothing anywhere consumes OP_LOST


def consume(op):
    if op == OP_PING:
        return True
    return False
