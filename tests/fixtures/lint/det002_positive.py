# det: module=repro.net.fixture
"""DET002 true positives: unsanctioned entropy / clock / address reads."""

import random
import time
from random import randrange
from time import perf_counter


def unseeded_randomness():
    return random.random()        # flagged: global RNG


def seeded_but_unsanctioned():
    return random.Random(7)       # flagged: entropy outside delays/faults


def from_import_randomness():
    return randrange(10)          # flagged: from-imported random member


def wall_clock():
    return time.time(), perf_counter()   # flagged twice


def address_ordering(items):
    return sorted(items, key=lambda x: id(x))  # flagged: id()


def salted_hash(name: str):
    return hash(name)             # flagged: str hash is salted per process
