# det: module=repro.core.fixture
"""DET004 true negatives: clean slots, unknown bases, indirect tables."""

from collections import UserDict


class CleanSlots:
    __slots__ = ("count", "total")

    def __init__(self):
        self.count = 0
        self.total = 0


class InheritsSlots(CleanSlots):
    __slots__ = ("extra",)

    def __init__(self):
        super().__init__()
        self.extra = 1            # declared here
        self.count = 2            # declared on the known base


class UnknownBase(UserDict):
    """Base outside the module may carry __dict__: rule stays silent."""

    __slots__ = ("x",)

    def __init__(self):
        super().__init__()
        self.whatever = 1         # not flagged: layout unknowable


class CleanDispatch:
    def __init__(self, agg):
        self.agg = agg
        self._dispatch = (
            self.agg.handle_up,   # nested attribute: not resolvable, skipped
            self._handle_down,    # defined below: fine
        )
        self.on_message_table = self._dispatch   # not a tuple literal: fine

    def _handle_down(self, sender, payload):
        pass
