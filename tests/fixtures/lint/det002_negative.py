# det: module=repro.net.delays_fixture
"""DET002 true negatives: sanctioned module names pass (this fixture does
NOT claim the sanctioned module), shadowed builtins pass, int hash passes."""

import time


def shadowed_id(id):
    return id(3)                  # param shadows the builtin: fine


def int_hash():
    return hash(12345)            # int hash is unsalted: fine


def not_a_clock():
    return time.sleep             # attribute access without a call: fine


def method_named_like_random(rng):
    return rng.random()           # instance method on a seeded stream: fine
