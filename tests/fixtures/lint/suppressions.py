# det: module=repro.core.fixture
"""Suppression hygiene: LNT001 for bare/malformed directives, LNT002 for
stale ones, and justified suppressions silencing real findings."""

from typing import Set


def justified(pending: Set[int]):
    for v in pending:  # det: ignore[DET001] -- fixture: order provably cannot escape this body
        print(v)


def bare(pending: Set[int]):
    for v in pending:  # det: ignore[DET001]
        print(v)       # LNT001: no justification (DET001 NOT silenced? it is
                       # silenced only by valid directives, so it survives too)


def unknown_code(pending: Set[int]):
    for v in pending:  # det: ignore[DET999] -- no such rule
        print(v)


def malformed(pending: Set[int]):
    for v in sorted(pending):  # det: ignore DET001 missing brackets
        print(v)


def stale(pending: Set[int]):
    for v in sorted(pending):  # det: ignore[DET001] -- nothing left to suppress here
        print(v)
