# det: module=repro.core.fixture
"""DET004 true positives: slots violations and broken dispatch tables."""


class SlotsTypo:
    __slots__ = ("count", "total")

    def __init__(self):
        self.count = 0
        self.totl = 0             # flagged: undeclared attribute (typo)

    def bump(self):
        self.coutn = self.count + 1   # flagged: undeclared attribute


class GappyDispatch:
    def __init__(self):
        # flagged twice: a None opcode gap, and a missing handler.
        self._dispatch = (
            self._handle_up,      # 0
            None,                 # 1 — flagged: opcode gap
            self._handle_missing, # 2 — flagged: no such method
        )

    def _handle_up(self, sender, payload):
        pass


class BrokenMessageTable:
    def __init__(self):
        self.on_message_table = (
            self._on_ping,        # 0
            self._on_gone,        # 1 — flagged: no such method
        )

    def _on_ping(self, sender, payload):
        pass
