# det: module=repro.core.fixture
"""DET003 true positive: the PR 5/6 slot-poisoning bug class, reconstructed.

A trimmed copy of ``repro.core.registration._StageState`` with one field —
``deferred_acks`` — added to ``__init__`` but NOT to ``reuse()``.  This is
exactly the hazard the rule exists for: the pool recycles a slot, the new
stage inherits the previous occupant's deferred acks, and the wave
accounting silently corrupts.  The real class keeps every scalar reset in
``reuse()`` and clears its containers there; this fixture proves the
linter would have caught the regression before runtime.
"""

from typing import Dict, List


class BrokenStageState:
    __slots__ = ("key", "state", "child_marks", "pending_child_invokers",
                 "deferred_acks")

    def __init__(self, key, state):
        self.child_marks: Dict[int, str] = {}
        self.pending_child_invokers: List[int] = []
        # The regression: a field added later to __init__ ...
        self.deferred_acks: List[int] = []
        self.reuse(key, state)

    def reuse(self, key, state):
        # ... but never reset here: a recycled slot keeps the previous
        # occupant's deferred_acks.  DET003 fires on the __init__ line.
        self.key = key
        self.state = state
        self.child_marks.clear()
        self.pending_child_invokers.clear()


class BrokenAggInstance:
    """Same bug class for the cluster-agg pool: plain assignment missed."""

    __slots__ = ("key", "value", "child_values", "missing")

    def __init__(self, key):
        self.child_values = {}
        self.missing = 0
        self.reuse(key)

    def reuse(self, key):
        self.key = key
        self.value = None
        self.child_values.clear()
        # self.missing is never reset: DET003 fires.
