"""Smoke tests: every example script runs clean and prints its checkmarks."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_examples_exist():
    assert len(EXAMPLES) >= 3


def test_quickstart_verifies():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=240
    )
    assert "verified" in result.stdout


def test_why_synchronizers_shows_the_failure():
    script = next(p for p in EXAMPLES if p.name == "why_synchronizers.py")
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=240
    )
    assert "WRONG distances: " in result.stdout
    # The naive flood must actually fail on this adversary...
    assert "WRONG distances: 0" not in result.stdout
    # ...and the paper's machinery must succeed.
    assert "all distances correct: True" in result.stdout
