"""Tests for the naive (ablation) registration scheme — correctness + congestion."""

import pytest

from repro.core.registration import RegistrationModule, cluster_views_for
from repro.core.registration_naive import NaiveRegistrationModule
from repro.covers import bfs_cluster_tree
from repro.net import AsyncRuntime, ConstantDelay, Graph, Process, UniformDelay, topology


def broom(k):
    edges = [(0, 1)] + [(1, 2 + i) for i in range(k)]
    return Graph(k + 2, edges)


def run(module_cls, graph, tree, registrants, model):
    finished = {}
    registered_at = {}
    dereg_at = {}

    class Driver(Process):
        def __init__(self, ctx):
            super().__init__(ctx)
            views = cluster_views_for({0: tree}, ctx.node_id)
            self.mod = module_cls(
                ctx.node_id, views,
                lambda to, p, pr: ctx.send(to, p, pr if isinstance(pr, tuple) else (pr,)),
                self._registered, self._go, lambda tag: (0,),
            )

        def _registered(self, c, t):
            registered_at[self.ctx.node_id] = self.ctx.now
            self.ctx.schedule_environment_event(
                0.5, lambda: (dereg_at.__setitem__(self.ctx.node_id, self.ctx.now),
                              self.mod.deregister(c, t)),
            )

        def _go(self, c, t):
            finished[self.ctx.node_id] = self.ctx.now
            self.ctx.set_output("free")

        def on_start(self):
            if self.ctx.node_id in registrants:
                self.mod.register(0, 1)

        def on_message(self, sender, payload):
            assert self.mod.handle(sender, payload)

    runtime = AsyncRuntime(graph, Driver, model)
    result = runtime.run(max_events=20_000_000)
    assert result.stop_reason == "quiescent"
    return finished, registered_at, dereg_at, result


class TestNaiveCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_everyone_freed(self, seed):
        g = topology.random_tree(12, seed=seed)
        tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
        registrants = set(range(1, 9))
        finished, *_ = run(
            NaiveRegistrationModule, g, tree, registrants, UniformDelay(seed=seed)
        )
        assert set(finished) == registrants

    def test_guarantee_1_holds_for_naive_too(self):
        g = topology.path_graph(8)
        tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
        registrants = set(range(2, 8))
        finished, registered_at, dereg_at, _ = run(
            NaiveRegistrationModule, g, tree, registrants, UniformDelay(seed=4)
        )
        for v, t_go in finished.items():
            for u, reg_t in registered_at.items():
                if reg_t < dereg_at[v]:
                    assert dereg_at[u] <= t_go

    def test_api_errors(self):
        from repro.core.registration import ClusterView

        module = NaiveRegistrationModule(
            0, {0: ClusterView(0, None, (1,))}, lambda *a: None,
            lambda *a: None, lambda *a: None, lambda tag: (0,),
        )
        module.register(0, 1)
        with pytest.raises(ValueError, match="double"):
            module.register(0, 1)
        with pytest.raises(ValueError, match="before registration"):
            module.deregister(0, 2)
        assert module.handle(1, ("other",)) is False


class TestCongestionGap:
    def test_naive_is_linear_ours_is_constant(self):
        """The Section 3.2 congestion bug, quantitatively."""
        times = {}
        for k in (8, 64):
            g = broom(k)
            tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
            registrants = set(range(2, k + 2))
            naive_fin, *_ = run(
                NaiveRegistrationModule, g, tree, registrants, ConstantDelay(1.0)
            )
            ours_fin, *_ = run(
                RegistrationModule, g, tree, registrants, ConstantDelay(1.0)
            )
            times[k] = (max(naive_fin.values()), max(ours_fin.values()))
        naive_growth = times[64][0] / times[8][0]
        ours_growth = times[64][1] / times[8][1]
        assert naive_growth >= 6  # ~linear in registrants
        assert ours_growth <= 1.5  # ~constant
