"""Tests for the Rozhoň–Ghaffari decomposition and its d-cover (Thm 4.20/4.21)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.covers import (
    build_rg_cover,
    build_rg_decomposition,
    build_rg_layered_cover,
    validate_cover,
)
from repro.net import topology


class TestDecomposition:
    @pytest.mark.parametrize("family", ["path", "cycle", "grid", "tree", "er_sparse"])
    @pytest.mark.parametrize("k", [1, 3])
    def test_structure(self, family, k):
        g = topology.make_topology(family, 26, seed=4)
        decomposition = build_rg_decomposition(g, k)
        decomposition.validate(g)

    def test_color_count_logarithmic(self):
        g = topology.grid_graph(6, 6)
        decomposition = build_rg_decomposition(g, 2)
        assert decomposition.num_colors <= math.ceil(math.log2(g.num_nodes)) + 1

    def test_every_node_colored_once(self):
        g = topology.erdos_renyi_graph(30, 0.1, seed=7)
        decomposition = build_rg_decomposition(g, 2)
        seen = set()
        for _, cluster in decomposition.all_clusters():
            assert not (seen & cluster.members)
            seen |= cluster.members
        assert seen == set(g.nodes)

    def test_weak_diameter_bound(self):
        g = topology.grid_graph(6, 6)
        k = 2
        decomposition = build_rg_decomposition(g, k)
        n = g.num_nodes
        bound = k * math.ceil(math.log2(n)) ** 3 * 20  # generous O(k log^3 n)
        for _, cluster in decomposition.all_clusters():
            assert cluster.height <= bound

    def test_deterministic(self):
        g = topology.erdos_renyi_graph(24, 0.12, seed=5)
        a = build_rg_decomposition(g, 2)
        b = build_rg_decomposition(g, 2)
        assert [
            [c.members for c in color] for color in a.color_classes
        ] == [[c.members for c in color] for color in b.color_classes]

    def test_cost_accounting_positive(self):
        g = topology.grid_graph(5, 5)
        decomposition = build_rg_decomposition(g, 2)
        assert decomposition.cost.rounds > 0
        assert decomposition.cost.messages > 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            build_rg_decomposition(topology.path_graph(4), 0)
        from repro.net import Graph

        with pytest.raises(ValueError, match="connected"):
            build_rg_decomposition(Graph(4, [(0, 1), (2, 3)]), 1)

    def test_single_node_graph(self):
        from repro.net import Graph

        g = Graph(1, [])
        decomposition = build_rg_decomposition(g, 1)
        assert decomposition.num_colors == 1
        assert decomposition.color_classes[0][0].members == frozenset({0})


class TestRgCover:
    @pytest.mark.parametrize("family", ["path", "grid", "tree"])
    @pytest.mark.parametrize("d", [1, 2])
    def test_definition_2_1(self, family, d):
        g = topology.make_topology(family, 24, seed=2)
        cover, cost = build_rg_cover(g, d)
        validate_cover(g, cover)
        assert cost.rounds > 0

    def test_membership_logarithmic(self):
        g = topology.grid_graph(5, 5)
        cover, _ = build_rg_cover(g, 2)
        # One cluster per color: membership <= number of colors.
        assert cover.max_membership <= math.ceil(math.log2(g.num_nodes)) + 1

    def test_layered(self):
        g = topology.grid_graph(4, 4)
        layered, cost = build_rg_layered_cover(g, 4)
        assert set(layered.levels) == {0, 1, 2}
        for cover in layered.levels.values():
            validate_cover(g, cover)
        assert cost.rounds > 0


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=20),
    p=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=200),
    k=st.integers(min_value=1, max_value=3),
)
def test_decomposition_property(n, p, seed, k):
    g = topology.erdos_renyi_graph(n, p, seed)
    decomposition = build_rg_decomposition(g, k)
    decomposition.validate(g)
