"""Tests for the α/β/γ baseline synchronizers (Appendix A)."""

import pytest

from repro.apps.programs import (
    bfs_spec,
    broadcast_echo_spec,
    flood_max_spec,
    path_token_spec,
    standard_programs,
)
from repro.baselines import GammaStructure, run_alpha, run_beta, run_gamma
from repro.net import ConstantDelay, run_synchronous, standard_adversaries, topology

ADVERSARIES = standard_adversaries(seed=51)
RUNNERS = [("alpha", run_alpha), ("beta", run_beta), ("gamma", run_gamma)]


class TestEquivalence:
    @pytest.mark.parametrize("name,runner", RUNNERS, ids=["alpha", "beta", "gamma"])
    @pytest.mark.parametrize("family", ["path", "grid", "er_sparse", "tree"])
    def test_outputs_match_synchronous(self, name, runner, family):
        g = topology.make_topology(family, 14, seed=3)
        for spec in standard_programs(g):
            sync = run_synchronous(g, spec)
            result = runner(g, spec, ADVERSARIES[3])
            assert result.outputs == sync.outputs, (name, family, spec.name)

    @pytest.mark.parametrize("name,runner", RUNNERS, ids=["alpha", "beta", "gamma"])
    @pytest.mark.parametrize("model", ADVERSARIES, ids=repr)
    def test_every_adversary(self, name, runner, model):
        g = topology.grid_graph(3, 4)
        spec = flood_max_spec()
        sync = run_synchronous(g, spec)
        assert runner(g, spec, model).outputs == sync.outputs


class TestCostCharacteristics:
    def test_alpha_message_blowup_is_per_round_per_edge(self):
        """Appendix A: alpha sends safety over every edge every pulse —
        messages ~ M(A) + 2*T*m."""
        g = topology.path_graph(20)
        spec = path_token_spec(0)  # one message per round: worst case for alpha
        sync = run_synchronous(g, spec)
        result = run_alpha(g, spec, ConstantDelay(1.0))
        expected_floor = 2 * g.num_edges * (sync.rounds_total - 1)
        assert result.messages >= expected_floor
        assert result.messages <= sync.messages + 2 * g.num_edges * (sync.rounds_total + 1)

    def test_alpha_time_overhead_constant(self):
        g = topology.path_graph(16)
        spec = bfs_spec(0)
        sync = run_synchronous(g, spec)
        result = run_alpha(g, spec, ConstantDelay(1.0))
        # O(1) overhead per pulse: ~4 time units (send+ack, safe+implicit).
        assert result.time_to_output <= 8 * sync.rounds_to_output + 8

    def test_beta_message_blowup_is_per_round_per_node(self):
        """beta: ~2n messages per pulse along the tree."""
        g = topology.path_graph(20)
        spec = path_token_spec(0)
        sync = run_synchronous(g, spec)
        result = run_beta(g, spec, ConstantDelay(1.0))
        n = g.num_nodes
        assert result.messages <= sync.messages + 3 * n * (sync.rounds_total + 2)

    def test_beta_time_overhead_is_diameter(self):
        """beta pays a tree round-trip (~2D) per pulse."""
        g = topology.path_graph(16)
        spec = bfs_spec(0)
        sync = run_synchronous(g, spec)
        result = run_beta(g, spec, ConstantDelay(1.0))
        depth = g.num_nodes - 1
        assert result.time_to_output >= sync.rounds_to_output * 1.5
        assert result.time_to_output <= 6 * depth * (sync.rounds_total + 1)

    def test_gamma_between_alpha_and_beta_in_time(self):
        g = topology.path_graph(24)
        spec = bfs_spec(0)
        alpha_t = run_alpha(g, spec, ConstantDelay(1.0)).time_to_output
        beta_t = run_beta(g, spec, ConstantDelay(1.0)).time_to_output
        gamma_t = run_gamma(g, spec, ConstantDelay(1.0)).time_to_output
        assert alpha_t <= gamma_t <= beta_t * 1.5

    def test_gamma_structure_reuse(self):
        g = topology.grid_graph(4, 4)
        structure = GammaStructure(g)
        assert structure.construction_rounds > 0
        spec = flood_max_spec()
        sync = run_synchronous(g, spec)
        result = run_gamma(g, spec, ConstantDelay(1.0), structure=structure)
        assert result.outputs == sync.outputs

    def test_gamma_partition_covers_graph(self):
        g = topology.er_graph = topology.erdos_renyi_graph(24, 0.1, seed=2)
        structure = GammaStructure(g)
        assert set(structure.cluster_of) == set(g.nodes)
