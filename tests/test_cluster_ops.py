"""Tests for tree aggregation (cluster_ops) and cover gathering (Thm 3.1/3.2)."""

import random

import pytest

from repro.core.cluster_ops import ClusterAggregateModule, and_merge, min_merge
from repro.core.gather import GatherModule
from repro.core.registration import ClusterView, cluster_views_for
from repro.covers import bfs_cluster_tree, build_ap_cover
from repro.net import (
    AsyncRuntime,
    ConstantDelay,
    Process,
    UniformDelay,
    standard_adversaries,
    topology,
)


def make_agg_driver(tree, values, on_results):
    """Every node contributes values[node] after a scripted delay."""

    class Driver(Process):
        def __init__(self, ctx):
            super().__init__(ctx)
            views = cluster_views_for({0: tree}, ctx.node_id)
            self.module = ClusterAggregateModule(
                node_id=ctx.node_id,
                clusters=views,
                send=lambda to, payload, priority: ctx.send(to, payload, priority),
                on_result=lambda cid, tag, result: on_results.append(
                    (self.ctx.now, ctx.node_id, result)
                ),
                merge_fn=lambda tag: min_merge,
                priority_fn=lambda tag: (0,),
            )

        def on_start(self):
            node = self.ctx.node_id
            delay, value = values[node]
            self.ctx.schedule_environment_event(
                delay, lambda: self.module.contribute(0, "t", value)
            )

        def on_message(self, sender, payload):
            assert self.module.handle(sender, payload)

    return Driver


class TestAggregate:
    @pytest.mark.parametrize("model", standard_adversaries(2), ids=repr)
    def test_min_aggregation_reaches_everyone(self, model):
        g = topology.balanced_tree(2, 3)
        tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
        rng = random.Random(7)
        values = {v: (rng.uniform(0, 5), v + 100) for v in g.nodes}
        results = []
        runtime = AsyncRuntime(g, make_agg_driver(tree, values, results), model)
        out = runtime.run(max_events=500_000)
        assert out.stop_reason == "quiescent"
        assert len(results) == g.num_nodes
        assert all(r == 100 for _, _, r in results)

    def test_result_only_after_all_contributions(self):
        g = topology.path_graph(5)
        tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
        slow_node, slow_time = 4, 30.0
        values = {v: (0.0, v) for v in g.nodes}
        values[slow_node] = (slow_time, slow_node)
        results = []
        runtime = AsyncRuntime(
            g, make_agg_driver(tree, values, results), ConstantDelay(0.5)
        )
        runtime.run()
        assert min(t for t, _, _ in results) >= slow_time

    def test_message_count_two_per_edge(self):
        g = topology.balanced_tree(3, 2)
        tree = bfs_cluster_tree(g, 0, members=g.nodes, root=0)
        values = {v: (0.0, v) for v in g.nodes}
        results = []
        runtime = AsyncRuntime(
            g, make_agg_driver(tree, values, results), ConstantDelay(1.0)
        )
        out = runtime.run()
        assert out.messages == 2 * (g.num_nodes - 1)

    def test_double_contribute_rejected(self):
        view = {0: ClusterView(0, parent=None, children=())}
        module = ClusterAggregateModule(
            0, view, lambda *a: None, lambda *a: None,
            lambda tag: min_merge, lambda tag: (0,),
        )
        module.contribute(0, "t", 1)
        with pytest.raises(ValueError, match="double-contributes"):
            module.contribute(0, "t", 2)

    def test_double_contribute_rejected_while_live_pooled(self):
        # With pooling opted in, the guard still fires for any instance
        # that has not completed — here the root of a two-node cluster
        # still missing its child's value.
        view = {0: ClusterView(0, parent=None, children=(1,))}
        module = ClusterAggregateModule(
            0, view, lambda *a: None, lambda *a: None,
            lambda tag: min_merge, lambda tag: (0,), pool=True,
        )
        module.contribute(0, "t", 1)
        with pytest.raises(ValueError, match="double-contributes"):
            module.contribute(0, "t", 2)

    def test_merges(self):
        assert and_merge(True, False) is False
        assert and_merge(True, True) is True
        assert min_merge(None, 3) == 3
        assert min_merge(2, None) == 2
        assert min_merge(5, 3) == 3


def make_gather_driver(cover, done_delays, completions, num_stages):
    class Driver(Process):
        def __init__(self, ctx):
            super().__init__(ctx)
            self.module = GatherModule(
                node_id=ctx.node_id,
                cover=cover,
                send=lambda to, payload, priority: ctx.send(to, payload, priority),
                on_complete=lambda stage: completions.append(
                    (self.ctx.now, ctx.node_id, stage)
                ),
                num_stages=num_stages,
            )

        def on_start(self):
            self.module.start()
            delay = done_delays[self.ctx.node_id]
            self.ctx.schedule_environment_event(delay, self.module.mark_done)

        def on_message(self, sender, payload):
            assert self.module.handle(sender, payload)

    return Driver


class TestGather:
    @pytest.mark.parametrize("model", standard_adversaries(5)[:4], ids=repr)
    @pytest.mark.parametrize("d", [1, 2])
    def test_theorem_3_1_semantics(self, model, d):
        """A node learns completion only after its whole d-ball is done."""
        g = topology.grid_graph(4, 4)
        cover = build_ap_cover(g, d)
        rng = random.Random(3)
        done_delays = {v: rng.uniform(0, 10) for v in g.nodes}
        completions = []
        runtime = AsyncRuntime(
            g, make_gather_driver(cover, done_delays, completions, 1), model
        )
        out = runtime.run(max_events=1_000_000)
        assert out.stop_reason == "quiescent"
        learned_at = {v: t for t, v, _ in completions}
        assert set(learned_at) == set(g.nodes)
        for v in g.nodes:
            for u in g.ball(v, d):
                assert done_delays[u] <= learned_at[v], (
                    f"node {v} learned at {learned_at[v]} before neighbor {u}"
                    f" was done at {done_delays[u]}"
                )

    def test_theorem_3_2_multi_stage(self):
        """With l stages the guarantee extends to the d*l-ball."""
        g = topology.path_graph(14)
        d, stages = 1, 3
        cover = build_ap_cover(g, d)
        rng = random.Random(9)
        done_delays = {v: rng.uniform(0, 8) for v in g.nodes}
        completions = []
        runtime = AsyncRuntime(
            g,
            make_gather_driver(cover, done_delays, completions, stages),
            UniformDelay(seed=4),
        )
        out = runtime.run(max_events=1_000_000)
        assert out.stop_reason == "quiescent"
        final = {v: t for t, v, s in completions if s == stages}
        assert set(final) == set(g.nodes)
        for v in g.nodes:
            for u in g.ball(v, d * stages):
                assert done_delays[u] <= final[v]

    def test_stage_monotonicity(self):
        g = topology.path_graph(8)
        cover = build_ap_cover(g, 1)
        done_delays = {v: 0.0 for v in g.nodes}
        completions = []
        runtime = AsyncRuntime(
            g, make_gather_driver(cover, done_delays, completions, 3),
            ConstantDelay(1.0),
        )
        runtime.run()
        per_node = {}
        for t, v, s in completions:
            per_node.setdefault(v, []).append((s, t))
        for v, stages in per_node.items():
            assert [s for s, _ in stages] == [1, 2, 3]
            times = [t for _, t in stages]
            assert times == sorted(times)

    def test_message_bound(self):
        """O(m * stages * membership) messages (Theorem 3.2)."""
        g = topology.grid_graph(5, 5)
        cover = build_ap_cover(g, 2)
        stages = 2
        done_delays = {v: 0.0 for v in g.nodes}
        completions = []
        runtime = AsyncRuntime(
            g, make_gather_driver(cover, done_delays, completions, stages),
            ConstantDelay(1.0),
        )
        out = runtime.run()
        tree_edges = sum(len(c.parent) - 1 for c in cover.clusters)
        assert out.messages == 2 * tree_edges * stages

    def test_double_done_rejected(self):
        g = topology.path_graph(3)
        cover = build_ap_cover(g, 1)
        module = GatherModule(0, cover, lambda *a: None, lambda s: None)
        module.start()
        module.mark_done()
        with pytest.raises(ValueError, match="twice"):
            module.mark_done()

    def test_zero_stages_rejected(self):
        g = topology.path_graph(3)
        cover = build_ap_cover(g, 1)
        with pytest.raises(ValueError):
            GatherModule(0, cover, lambda *a: None, lambda s: None, num_stages=0)


class TestLinkPairResolution:
    """The aggregation module shares the registration module's half-missing
    links/send_link warning (DESIGN.md §10)."""

    def _make(self, **kwargs):
        view = {0: ClusterView(0, parent=None, children=())}
        return ClusterAggregateModule(
            0, view, lambda *a: None, lambda *a: None,
            lambda tag: min_merge, lambda tag: (0,), **kwargs,
        )

    def test_links_without_send_link_warns(self):
        with pytest.warns(RuntimeWarning, match="'links' supplied without 'send_link'"):
            self._make(links={0: 0})

    def test_send_link_without_links_warns(self):
        with pytest.warns(RuntimeWarning, match="'send_link' supplied without 'links'"):
            self._make(send_link=lambda *a: None)

    def test_both_or_neither_do_not_warn(self, recwarn):
        self._make()
        self._make(links={0: 0}, send_link=lambda *a: None)
        assert not [w for w in recwarn.list if issubclass(w.category, RuntimeWarning)]
