"""Tests for the adversarial delay models."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.net import (
    TAU,
    AlternatingDelay,
    BimodalDelay,
    ConstantDelay,
    DirectionalSkewDelay,
    SlowEdgesDelay,
    UniformDelay,
    standard_adversaries,
)
from repro.net.delays import BLOCK_PAIRS

ALL_MODELS = standard_adversaries(seed=11)


@pytest.mark.parametrize("model", ALL_MODELS, ids=[repr(m) for m in ALL_MODELS])
class TestBoundsAndDeterminism:
    def test_delays_within_bound(self, model):
        for u, v in [(0, 1), (3, 2), (7, 9)]:
            for seq in range(1, 30):
                d = model(u, v, seq, now=float(seq))
                assert 0 < d <= TAU

    def test_deterministic(self, model):
        first = [model(0, 1, seq, 0.0) for seq in range(1, 20)]
        second = [model(0, 1, seq, 0.0) for seq in range(1, 20)]
        assert first == second


class TestConstantDelay:
    def test_value(self):
        assert ConstantDelay(0.5)(0, 1, 1, 0.0) == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ConstantDelay(0.0)
        with pytest.raises(ValueError):
            ConstantDelay(1.5)


class TestUniformDelay:
    def test_range_validation(self):
        with pytest.raises(ValueError):
            UniformDelay(seed=0, low=0.8, high=0.2)

    def test_seed_changes_sequence(self):
        a = [UniformDelay(seed=1)(0, 1, s, 0.0) for s in range(1, 30)]
        b = [UniformDelay(seed=2)(0, 1, s, 0.0) for s in range(1, 30)]
        assert a != b

    def test_spreads_over_range(self):
        model = UniformDelay(seed=3)
        values = [model(0, 1, s, 0.0) for s in range(1, 200)]
        assert min(values) < 0.2
        assert max(values) > 0.8


class TestBimodal:
    def test_extreme_fractions(self):
        all_slow = BimodalDelay(seed=0, slow_fraction=1.0)
        assert all(all_slow(0, 1, s, 0.0) == TAU for s in range(1, 10))
        all_fast = BimodalDelay(seed=0, slow_fraction=0.0)
        assert all(all_fast(0, 1, s, 0.0) < 0.1 for s in range(1, 10))

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            BimodalDelay(seed=0, slow_fraction=1.5)


class TestSlowEdges:
    def test_explicit_edge_set(self):
        model = SlowEdgesDelay(seed=0, edges=[(1, 0)])
        assert model(0, 1, 1, 0.0) == TAU
        assert model(1, 0, 1, 0.0) == TAU
        assert model(2, 3, 1, 0.0) < 0.1

    def test_hashed_half_is_stable_per_edge(self):
        model = SlowEdgesDelay(seed=5)
        slow_now = model(4, 9, 1, 0.0) == TAU
        assert (model(9, 4, 7, 3.0) == TAU) == slow_now

    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        u=st.integers(min_value=0, max_value=200),
        v=st.integers(min_value=0, max_value=200),
        edges=st.one_of(
            st.none(),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=200),
                    st.integers(min_value=0, max_value=200),
                ).filter(lambda e: e[0] != e[1]),
                max_size=20,
            ),
        ),
    )
    def test_slow_class_is_symmetric(self, seed, u, v, edges):
        """A link's acknowledgment must share its message's speed class:
        ``_is_slow(u, v) == _is_slow(v, u)`` for hashed halves and explicit
        edge sets alike (either orientation in the set marks the edge)."""
        if u == v:
            v = u + 1
        model = SlowEdgesDelay(seed=seed, edges=edges)
        assert model._is_slow(u, v) == model._is_slow(v, u)
        # The delay *class* (slow = TAU, fast < TAU) is symmetric too, over
        # both the direct-call path and the per-link streams.
        for seq in (1, 2, -1):
            assert (model(u, v, seq, 0.0) == TAU) == (model(v, u, seq, 0.0) == TAU)
        assert (model.link_stream(u, v)(1) == TAU) == (model.link_stream(v, u)(-1) == TAU)


class TestDirectionalSkew:
    def test_directions_differ(self):
        model = DirectionalSkewDelay(seed=0, slow_up=True)
        up = model(2, 7, 1, 0.0)
        down = model(7, 2, 1, 0.0)
        assert up == TAU and down < TAU


class TestAlternating:
    def test_alternates_per_link(self):
        model = AlternatingDelay(seed=0)
        values = {model(0, 1, s, 0.0) for s in range(1, 5)}
        assert values == {0.01, TAU}


@settings(max_examples=100, deadline=None)
@given(
    u=st.integers(min_value=0, max_value=50),
    v=st.integers(min_value=0, max_value=50),
    seq=st.integers(min_value=-1000, max_value=1000),
    now=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    seed=st.integers(min_value=0, max_value=100),
)
def test_every_model_respects_the_bound(u, v, seq, now, seed):
    if u == v:
        v = u + 1
    for model in standard_adversaries(seed):
        d = model(u, v, seq, now)
        assert 0 < d <= TAU


class TestStreamConsistency:
    """The cached per-link fast paths must be bit-equal to direct calls.

    The transport trusts ``link_stream`` / ``pair_stream`` without
    re-validating, and engine equivalence relies on the three APIs never
    drifting apart — cross-checked here for every model over 10k
    (u, v, seq) triples, including the negative (acknowledgment) sequence
    numbers the transport draws with.
    """

    # 50 directed pairs x 100 seqs x 2 signs = 10,000 triples per model.
    PAIRS = [(3 * i % 29, (5 * i + 7) % 31 + 29) for i in range(50)]
    SEQS = [s for k in range(1, 101) for s in (k, -k)]

    @pytest.mark.parametrize("model", ALL_MODELS, ids=[repr(m) for m in ALL_MODELS])
    def test_link_stream_matches_direct_calls(self, model):
        for u, v in self.PAIRS:
            stream = model.link_stream(u, v)
            for seq in self.SEQS:
                assert stream(seq) == model(u, v, seq, 0.0), (u, v, seq)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=[repr(m) for m in ALL_MODELS])
    def test_pair_stream_matches_direct_calls(self, model):
        """pair(seq) == (message draw at seq, reverse-link draw at -seq)."""
        for u, v in self.PAIRS:
            pair = model.pair_stream(u, v)
            for seq in self.SEQS:
                assert pair(seq) == (
                    model(u, v, seq, 0.0),
                    model(v, u, -seq, 0.0),
                ), (u, v, seq)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=[repr(m) for m in ALL_MODELS])
    def test_stream_results_respect_the_bound(self, model):
        for u, v in self.PAIRS[:10]:
            pair = model.pair_stream(u, v)
            for seq in self.SEQS[:40]:
                d, a = pair(seq)
                assert 0 < d <= TAU
                assert 0 < a <= TAU

    @pytest.mark.parametrize("model", ALL_MODELS, ids=[repr(m) for m in ALL_MODELS])
    def test_block_stream_matches_pair_stream_and_direct_calls(self, model):
        """``fill(buf, base, start, n)`` writes exactly the pair_stream /
        direct-call values, bit-for-bit, over 10k (u, v, seq) triples.

        The transport serves BLOCK_PAIRS consecutive injections from one
        fill and refills exactly at block boundaries, so the sweep includes
        block-crossing start positions; per-pair equality against the
        direct ``__call__`` covers the ack at the negated seq too.
        """
        B = BLOCK_PAIRS
        for u, v in self.PAIRS:  # 50 pairs x 100 seqs x 2 draws = 10k
            fill = model.block_stream(u, v)
            pair = model.pair_stream(u, v)
            buf = [0.0] * (2 * 100 + 4)
            # One aligned block sweep (seqs 1..100 in chunks of B, as the
            # transport consumes them) at a nonzero base offset.
            for start in range(1, 101, B):
                n = min(B, 101 - start)
                fill(buf, 4, start, n)
                for k in range(n):
                    seq = start + k
                    d, a = buf[4 + 2 * k], buf[4 + 2 * k + 1]
                    assert (d, a) == pair(seq), (u, v, seq)
                    assert d == model(u, v, seq, 0.0), (u, v, seq)
                    assert a == model(v, u, -seq, 0.0), (u, v, seq)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=[repr(m) for m in ALL_MODELS])
    @pytest.mark.parametrize("start", [BLOCK_PAIRS - 1, BLOCK_PAIRS,
                                       BLOCK_PAIRS + 1])
    def test_block_stream_at_block_boundary_seqs(self, model, start):
        """Blocks beginning at seqs B-1, B, B+1 (the refill boundaries a
        link crosses when its block cycles) agree with pair_stream."""
        fill = model.block_stream(3, 9)
        pair = model.pair_stream(3, 9)
        buf = [0.0] * (2 * BLOCK_PAIRS)
        fill(buf, 0, start, BLOCK_PAIRS)
        for k in range(BLOCK_PAIRS):
            assert (buf[2 * k], buf[2 * k + 1]) == pair(start + k), start + k

    @settings(max_examples=150, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        model_idx=st.integers(min_value=0, max_value=len(ALL_MODELS) - 1),
        u=st.integers(min_value=0, max_value=80),
        v=st.integers(min_value=0, max_value=80),
        start=st.integers(min_value=1, max_value=3 * BLOCK_PAIRS + 2),
        n=st.integers(min_value=1, max_value=2 * BLOCK_PAIRS),
        base=st.integers(min_value=0, max_value=7),
    )
    def test_block_stream_property_arbitrary_windows(
        self, seed, model_idx, u, v, start, n, base
    ):
        """Property: any (model, link, window) fill equals per-seq
        pair_stream draws — arbitrary bases, lengths, and starts,
        including every block-boundary seq."""
        if u == v:
            v = u + 1
        model = standard_adversaries(seed)[model_idx]
        fill = model.block_stream(u, v)
        pair = model.pair_stream(u, v)
        buf = [None] * (base + 2 * n)
        fill(buf, base, start, n)
        for k in range(n):
            assert (buf[base + 2 * k], buf[base + 2 * k + 1]) == pair(start + k)
