"""Tests for the applications: leader election (Cor 1.3) and MST (Cor 1.4)."""

import pytest

from repro.apps import (
    ElectionStructure,
    leader_election_spec,
    mst_edges_from_outputs,
    mst_spec,
    reference_mst,
)
from repro.baselines import run_alpha, run_beta, run_gamma
from repro.core import run_synchronized
from repro.net import ConstantDelay, run_synchronous, standard_adversaries, topology

ADVERSARIES = standard_adversaries(seed=61)


class TestLeaderElectionSynchronous:
    @pytest.mark.parametrize("family", ["path", "grid", "er_sparse", "tree", "star", "barbell"])
    def test_everyone_elects_minimum(self, family):
        g = topology.make_topology(family, 18, seed=2)
        spec = leader_election_spec(ElectionStructure.build(g))
        result = run_synchronous(g, spec)
        assert result.outputs == {v: 0 for v in g.nodes}

    def test_message_complexity_near_linear(self):
        import math

        g = topology.cycle_graph(32)
        spec = leader_election_spec(ElectionStructure.build(g))
        result = run_synchronous(g, spec)
        assert result.messages <= 40 * g.num_edges * math.log2(g.num_nodes) ** 2

    def test_time_complexity_near_diameter(self):
        import math

        g = topology.cycle_graph(32)
        spec = leader_election_spec(ElectionStructure.build(g))
        result = run_synchronous(g, spec)
        d = g.diameter()
        assert result.rounds_to_output <= 20 * d * math.log2(g.num_nodes)

    def test_single_node(self):
        from repro.net import Graph

        g = Graph(1, [])
        spec = leader_election_spec(ElectionStructure.build(g))
        result = run_synchronous(g, spec)
        assert result.outputs == {0: 0}


class TestLeaderElectionAsynchronous:
    """Corollary 1.3: election + the deterministic synchronizer."""

    @pytest.mark.parametrize("model", ADVERSARIES[:5], ids=repr)
    def test_under_synchronizer(self, model):
        g = topology.grid_graph(4, 4)
        spec = leader_election_spec(ElectionStructure.build(g))
        result = run_synchronized(g, spec, model)
        assert result.outputs == {v: 0 for v in g.nodes}

    def test_under_baselines(self):
        g = topology.random_tree(14, seed=8)
        spec = leader_election_spec(ElectionStructure.build(g))
        for runner in (run_alpha, run_beta, run_gamma):
            result = runner(g, spec, ADVERSARIES[2])
            assert result.outputs == {v: 0 for v in g.nodes}


class TestMstSynchronous:
    @pytest.mark.parametrize("family", ["grid", "er_sparse", "er_dense", "tree", "cycle", "barbell"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_kruskal(self, family, seed):
        g = topology.with_random_weights(
            topology.make_topology(family, 18, seed=seed), seed=seed + 40
        )
        result = run_synchronous(g, mst_spec())
        assert mst_edges_from_outputs(result.outputs) == reference_mst(g)
        assert set(result.outputs) == set(g.nodes)

    def test_every_node_knows_incident_edges_only(self):
        g = topology.with_random_weights(topology.grid_graph(3, 3), seed=5)
        result = run_synchronous(g, mst_spec())
        for v, edges in result.outputs.items():
            for a, b in edges:
                assert v in (a, b)

    def test_message_complexity_m_log_n(self):
        import math

        g = topology.with_random_weights(topology.erdos_renyi_graph(32, 0.2, 3), seed=9)
        result = run_synchronous(g, mst_spec())
        assert result.messages <= 20 * g.num_edges * math.log2(g.num_nodes)

    def test_tree_input_is_its_own_mst(self):
        g = topology.with_random_weights(topology.random_tree(16, 4), seed=1)
        result = run_synchronous(g, mst_spec())
        assert mst_edges_from_outputs(result.outputs) == g.edges


class TestMstAsynchronous:
    """Corollary 1.4: MST + the deterministic synchronizer."""

    @pytest.mark.parametrize("model", ADVERSARIES[:4], ids=repr)
    def test_under_synchronizer(self, model):
        g = topology.with_random_weights(topology.grid_graph(4, 4), seed=9)
        result = run_synchronized(g, mst_spec(), model)
        assert mst_edges_from_outputs(result.outputs) == reference_mst(g)

    def test_under_baselines(self):
        g = topology.with_random_weights(topology.erdos_renyi_graph(14, 0.2, 7), seed=3)
        want = reference_mst(g)
        for runner in (run_alpha, run_beta, run_gamma):
            result = runner(g, mst_spec(), ADVERSARIES[3])
            assert mst_edges_from_outputs(result.outputs) == want

    def test_sync_async_output_identical(self):
        g = topology.with_random_weights(topology.cycle_graph(12), seed=2)
        sync = run_synchronous(g, mst_spec())
        result = run_synchronized(g, mst_spec(), ADVERSARIES[1])
        assert result.outputs == sync.outputs
