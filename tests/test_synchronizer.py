"""Tests for the general deterministic synchronizer (Section 5).

The theorem being checked (Theorem 5.2): the asynchronous execution produces
exactly the messages/outputs of the synchronous one, for every event-driven
program, under every adversary.
"""

import pytest

from repro.apps.programs import (
    bfs_spec,
    broadcast_echo_spec,
    flood_max_spec,
    multi_bfs_spec,
    neighbor_sum_spec,
    path_token_spec,
    pulse_wave_spec,
    standard_programs,
)
from repro.net.program import sampled_initiators
from repro.core import pulse_bound_for, registry_for_threshold, run_synchronized
from repro.net import (
    ConstantDelay,
    NodeProgram,
    ProgramSpec,
    all_nodes_initiate,
    run_synchronous,
    standard_adversaries,
    topology,
)

ADVERSARIES = standard_adversaries(seed=41)
FAMILIES = ["path", "grid", "er_sparse", "tree", "barbell"]


class TestTheorem52Equivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_all_programs_all_adversaries(self, family):
        g = topology.make_topology(family, 16, seed=1)
        for spec in standard_programs(g):
            sync = run_synchronous(g, spec)
            for model in ADVERSARIES[:4]:
                result = run_synchronized(g, spec, model)
                assert result.outputs == sync.outputs, (family, spec.name, repr(model))

    @pytest.mark.parametrize("model", ADVERSARIES, ids=repr)
    def test_deep_program_every_adversary(self, model):
        g = topology.path_graph(14)
        spec = broadcast_echo_spec(0)
        sync = run_synchronous(g, spec)
        result = run_synchronized(g, spec, model)
        assert result.outputs == sync.outputs

    def test_pulse_wave(self):
        g = topology.grid_graph(4, 4)
        spec = pulse_wave_spec()
        sync = run_synchronous(g, spec)
        result = run_synchronized(g, spec, ADVERSARIES[5])
        assert result.outputs == sync.outputs

    def test_single_node(self):
        from repro.net import Graph

        class Lonely(NodeProgram):
            def on_start(self, api):
                api.set_output("done")

        g = Graph(1, [])
        spec = ProgramSpec("lonely", Lonely, all_nodes_initiate)
        result = run_synchronized(g, spec, ConstantDelay(1.0), max_pulse=2)
        assert result.outputs == {0: "done"}


class TestOverheads:
    def test_message_overhead_polylog_shape(self):
        """Theorem 5.3: M(A') within polylog of M(A) + m."""
        import math

        for n in (16, 32):
            g = topology.cycle_graph(n)
            spec = bfs_spec(0)
            sync = run_synchronous(g, spec)
            result = run_synchronized(g, spec, ConstantDelay(1.0))
            budget = (sync.messages + g.num_edges) * 60 * math.log2(n) ** 2
            assert result.messages <= budget

    def test_time_overhead_polylog_shape(self):
        import math

        g = topology.path_graph(24)
        spec = bfs_spec(0)
        sync = run_synchronous(g, spec)
        result = run_synchronized(g, spec, ConstantDelay(1.0))
        assert result.time_to_output <= 60 * sync.rounds_to_output * math.log2(
            g.num_nodes
        ) ** 2

    def test_registry_and_bound_reuse(self):
        g = topology.grid_graph(4, 4)
        spec = flood_max_spec()
        bound = pulse_bound_for(g, spec)
        registry = registry_for_threshold(g, bound)
        result = run_synchronized(
            g, spec, ADVERSARIES[1], registry=registry, max_pulse=bound
        )
        assert result.outputs == run_synchronous(g, spec).outputs


class TestContractEnforcement:
    def test_non_event_driven_program_rejected(self):
        """A program that sends without a trigger breaks the model (App. B)."""

        class Rogue(NodeProgram):
            def __init__(self, info):
                super().__init__(info)
                self.fired = False

            def on_start(self, api):
                api.send(self.info.neighbors[0], "a")

            def on_pulse(self, api, arrived):
                # Sends at every pulse whether or not triggered — but the
                # runtime only pulses triggered nodes, so this stays legal.
                if arrived and not self.fired:
                    self.fired = True
                    api.send(self.info.neighbors[0], "b")

        g = topology.path_graph(3)
        spec = ProgramSpec("ok", Rogue, all_nodes_initiate)
        result = run_synchronized(g, spec, ConstantDelay(1.0))
        assert result.stop_reason == "quiescent"

    def test_max_pulse_must_be_power_of_two(self):
        g = topology.path_graph(4)
        with pytest.raises(ValueError, match="power of two"):
            run_synchronized(g, bfs_spec(0), ConstantDelay(1.0), max_pulse=3)

    def test_pulse_bound_exceeded_raises(self):
        g = topology.path_graph(10)
        with pytest.raises(RuntimeError, match="pulse bound"):
            run_synchronized(g, bfs_spec(0), ConstantDelay(1.0), max_pulse=2)


class TestSampledInitiators:
    """The n=512+ sweep workload ingredient (ROADMAP / DESIGN.md §8)."""

    def test_sample_is_deterministic_and_evenly_spaced(self):
        g = topology.cycle_graph(48)
        picked = sampled_initiators(4)(g)
        assert picked == {0, 12, 24, 36}
        assert sampled_initiators(4)(g) == picked

    def test_sample_clamps_to_graph_size(self):
        g = topology.path_graph(3)
        assert sampled_initiators(16)(g) == {0, 1, 2}
        with pytest.raises(ValueError, match="at least one"):
            sampled_initiators(0)

    def test_multi_bfs_matches_truth_under_synchronizer(self):
        g = topology.cycle_graph(48)
        spec = multi_bfs_spec(4)
        sources = spec.initiators(g)
        truth = g.bfs_distances(sources)
        for model in (ADVERSARIES[0], ADVERSARIES[2], ADVERSARIES[3]):
            result = run_synchronized(g, spec, model)
            for v in g.nodes:
                assert result.outputs[v][0] == truth[v], repr(model)

    def test_multi_bfs_message_volume_near_linear(self):
        # The point of sampling: an all-initiator flood costs Θ(n²) on a
        # cycle, the sampled multi-source BFS stays near-linear.
        g = topology.cycle_graph(128)
        sampled = run_synchronized(g, multi_bfs_spec(16), ConstantDelay(1.0))
        flooded = run_synchronized(g, flood_max_spec(), ConstantDelay(1.0))
        assert sampled.messages < flooded.messages / 4


class TestDeterminism:
    def test_identical_reruns(self):
        g = topology.grid_graph(4, 4)
        spec = neighbor_sum_spec()
        a = run_synchronized(g, spec, ADVERSARIES[2])
        b = run_synchronized(g, spec, ADVERSARIES[2])
        assert a.outputs == b.outputs
        assert a.messages == b.messages
        assert a.time_to_quiescence == b.time_to_quiescence
