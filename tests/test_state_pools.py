"""Byte-identity and mechanics of the §10 protocol-state pools.

DESIGN.md §10: the registration module recycles terminal-clean stage slots
through a free list (and the aggregation module can opt in per instance).
Recycling must be *observationally invisible* — a pooled run's delivery
trace, outputs, and message counts must be byte-identical to a
fresh-allocation run on both engines (the packed-record transport and the
reference port of the seed engine).  The hypothesis properties below pin
exactly that, across the standard adversary family; the deterministic
tests pin the pool mechanics themselves (slots really are recycled and
reused, and the documented ``state_of``/``result_of`` visibility rules).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_engine_equivalence import ReferenceRuntime

from repro.apps.programs import bfs_spec
from repro.core.bfs_runner import ThresholdedBFSProcess, registry_for_threshold
from repro.core.cluster_ops import ClusterAggregateModule, min_merge
from repro.core.registration import (
    FREE,
    NONE,
    ClusterView,
    RegistrationModule,
    _StageState,
)
from repro.core.sweep import SynchronizerSweep
from repro.net import topology
from repro.net.async_runtime import AsyncRuntime
from repro.net.delays import UniformDelay, standard_adversaries


def _graph(idx: int):
    builders = (
        lambda: topology.cycle_graph(12),
        lambda: topology.grid_graph(3, 4),
        lambda: topology.star_graph(9),
        lambda: topology.random_tree(13, seed=3),
    )
    return builders[idx]()


def _traced(runtime_cls, graph, process_cls, model):
    trace = []
    result = runtime_cls(
        graph, process_cls, model,
        trace=lambda t, u, v, p: trace.append((t, u, v, p)),
    ).run()
    return trace, result


def _assert_pool_invisible(graph, pooled_cls, fresh_cls, seed, model_idx):
    """Pooled and fresh runs must be byte-identical on both engines."""
    runs = {}
    for engine_name, engine in (("new", AsyncRuntime), ("ref", ReferenceRuntime)):
        for pool_name, cls in (("pooled", pooled_cls), ("fresh", fresh_cls)):
            # Fresh model per execution: hashed models memoize per-link
            # state and every run must draw from a cold start.
            model = standard_adversaries(seed)[model_idx]
            runs[engine_name, pool_name] = _traced(engine, graph, cls, model)
    for engine_name in ("new", "ref"):
        pooled_trace, pooled_result = runs[engine_name, "pooled"]
        fresh_trace, fresh_result = runs[engine_name, "fresh"]
        assert pooled_trace == fresh_trace
        assert pooled_result.outputs == fresh_result.outputs
        assert pooled_result.messages == fresh_result.messages
        assert pooled_result.time_to_output == fresh_result.time_to_output
    # And the engines agree with each other (the equivalence suite pins
    # this broadly; here it guards the pooled classes specifically).
    assert runs["new", "pooled"][0] == runs["ref", "pooled"][0]


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    model_idx=st.integers(min_value=0, max_value=7),
    graph_idx=st.integers(min_value=0, max_value=3),
)
def test_synchronizer_stage_pool_byte_identical(seed, model_idx, graph_idx):
    """Property: recycled registration stages (register -> finish -> slot
    reused for a new (cluster, tag)) leave the synchronizer's schedule
    byte-identical to fresh allocation, on both engines."""
    graph = _graph(graph_idx)
    base = SynchronizerSweep(graph, bfs_spec(0)).process_cls
    pooled = type("PooledSync", (base,), {"pool": True})
    fresh = type("FreshSync", (base,), {"pool": False})
    _assert_pool_invisible(graph, pooled, fresh, seed, model_idx)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    model_idx=st.integers(min_value=0, max_value=7),
    graph_idx=st.integers(min_value=0, max_value=3),
)
def test_tbfs_stage_pool_byte_identical(seed, model_idx, graph_idx):
    """Property: the thresholded-BFS machinery is likewise pool-invariant
    on both engines (its registration traffic is sparser, so this mostly
    guards the aggregation-module interplay and the shared module code)."""
    graph = _graph(graph_idx)
    registry = registry_for_threshold(graph, 4)
    namespace = dict(registry=registry, sources=frozenset((0,)), threshold=4)
    pooled = type("PooledTBFS", (ThresholdedBFSProcess,), dict(namespace, pool=True))
    fresh = type("FreshTBFS", (ThresholdedBFSProcess,), dict(namespace, pool=False))
    _assert_pool_invisible(graph, pooled, fresh, seed, model_idx)


def test_stage_slots_actually_recycled_and_reused(monkeypatch):
    """The pool is not vestigial: a sync-BFS run at n=32 recycles most of
    its stages and serves most creations from the free list."""
    reuses = []
    original = _StageState.reuse

    def counting_reuse(self, *args, **kwargs):
        reuses.append(1)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(_StageState, "reuse", counting_reuse)
    graph = topology.cycle_graph(32)
    sweep = SynchronizerSweep(graph, bfs_spec(0))
    runtime = AsyncRuntime(graph, sweep.process_cls, UniformDelay(seed=7),
                           skeleton=None)
    result = runtime.run()
    assert result.stop_reason == "quiescent"
    free_slots = sum(
        len(p.node.reg._free) for p in runtime.processes.values()
    )
    assert free_slots > 0  # terminal-clean stages were recycled
    assert len(reuses) > 0  # and recycled slots were re-issued


def test_state_of_visibility_under_pooling():
    """A completed stage reads NONE when pooled (slot recycled), FREE when
    retention is requested — exactly the documented difference."""
    view = {0: ClusterView(0, parent=None, children=())}
    for pool, expected in ((True, NONE), (False, FREE)):
        module = RegistrationModule(
            node_id=0,
            clusters=view,
            send=lambda *a: None,
            on_registered=lambda *a: None,
            on_go_ahead=lambda *a: None,
            priority_fn=lambda tag: tag,
            pool=pool,
        )
        module.register(0, 1)
        module.deregister(0, 1)
        assert module.state_of(0, 1) == expected
        assert len(module._free) == (1 if pool else 0)


def test_readmit_does_not_resurrect_evicted_flow_reports():
    """Re-join hygiene (DESIGN.md §15): a barrier that re-closed over the
    survivors when the crash was detected must not accept the returned
    incarnation's late convergecast value after readmission — the evicted
    flow report stays evicted, the result already reported stands, and
    the child participates again only from the next instance onward."""
    results = []
    view = {0: ClusterView(0, parent=None, children=(1,))}
    module = ClusterAggregateModule(
        0, view, lambda *a: None,
        lambda cid, tag, result: results.append((cid, tag, result)),
        lambda tag: min_merge, lambda tag: (0,),
    )
    module.contribute(0, 1, 5)     # the root waits on child 1
    assert results == []
    module.prune_child(1)          # crash detected: the barrier re-closes
    assert results == [(0, 1, 5)]  # corpse contributes the identity
    key = next(iter(module._instances))
    module.readmit_child(1)
    assert module.clusters[0].children == (1,)  # topology restored...
    module.handle_up(1, (0, key, 0))            # OP_AGG_UP, late report
    assert results == [(0, 1, 5)]  # ...but the stale word is dropped
    # The readmitted child is addressed again by the *next* instance.
    module.contribute(0, 2, 9)
    assert results == [(0, 1, 5)]  # waiting on child 1's fresh value
    key2 = next(k for k, inst in module._instances.items() if inst.tag == 2)
    module.handle_up(1, (0, key2, 3))
    assert results == [(0, 1, 5), (0, 2, 3)]


def test_aggregation_pool_reuses_the_slot():
    """Opt-in instance pooling re-issues the recycled slot object for the
    next (cluster, tag) and still reports every result exactly once."""
    results = []
    view = {0: ClusterView(0, parent=None, children=())}
    module = ClusterAggregateModule(
        0, view, lambda *a: None,
        lambda cid, tag, result: results.append((cid, tag, result)),
        lambda tag: min_merge, lambda tag: (0,), pool=True,
    )
    module.contribute(0, 1, 5)  # single-node root: completes synchronously
    assert results == [(0, 1, 5)]
    assert len(module._free) == 1
    slot = module._free[0]
    module.contribute(0, 2, 7)
    assert results == [(0, 1, 5), (0, 2, 7)]
    assert module._free == [slot]  # the same slot served the second tag
    assert module.result_of(0, 1) is None  # recycled: no retained result
