"""The paper's headline applications (Section 6): leader election and MST.

Runs the deterministic Section-6 leader election and the Borůvka MST through
the deterministic synchronizer on a weighted random network, and verifies
both against oracles.

Run:  python examples/leader_and_mst.py
"""

from repro.apps import (
    ElectionStructure,
    leader_election_spec,
    mst_edges_from_outputs,
    mst_spec,
    reference_mst,
)
from repro.core import run_synchronized
from repro.net import SlowEdgesDelay, run_synchronous, topology


def main() -> None:
    graph = topology.with_random_weights(
        topology.erdos_renyi_graph(24, 0.12, seed=3), seed=99
    )
    adversary = SlowEdgesDelay(seed=5)  # half the links crawl at the bound
    print(f"network: n={graph.num_nodes}, m={graph.num_edges}, D={graph.diameter()}")

    # --- Corollary 1.3: leader election --------------------------------
    spec = leader_election_spec(ElectionStructure.build(graph))
    sync = run_synchronous(graph, spec)
    result = run_synchronized(graph, spec, adversary)
    leaders = set(result.outputs.values())
    print(f"\nleader election: every node elected {leaders} "
          f"(minimum id: 0) — {'OK' if leaders == {0} else 'WRONG'}")
    print(f"  sync: T={sync.rounds_to_output}, M={sync.messages}"
          f" | async: T={result.time_to_output:.0f}, M={result.messages}")

    # --- Corollary 1.4: minimum spanning tree ---------------------------
    sync_mst = run_synchronous(graph, mst_spec())
    result_mst = run_synchronized(graph, mst_spec(), adversary)
    got = mst_edges_from_outputs(result_mst.outputs)
    want = reference_mst(graph)
    print(f"\nMST: {len(got)} edges, matches Kruskal: {got == want}")
    weight = sum(graph.weight(*e) for e in got)
    print(f"  total weight {weight:.1f}")
    print(f"  sync: T={sync_mst.rounds_to_output}, M={sync_mst.messages}"
          f" | async: T={result_mst.time_to_output:.0f}, M={result_mst.messages}")


if __name__ == "__main__":
    main()
