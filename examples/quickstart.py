"""Quickstart: asynchronous BFS with the paper's deterministic machinery.

Builds a small grid network, runs the complete asynchronous single-source
BFS (Theorem 4.23) under an adversarial delay model, and verifies the
distances against the graph oracle.

Run:  python examples/quickstart.py
"""

from repro.core import run_full_bfs
from repro.net import UniformDelay, topology


def main() -> None:
    graph = topology.grid_graph(6, 6)
    adversary = UniformDelay(seed=42)

    print(f"network: 6x6 grid, n={graph.num_nodes}, m={graph.num_edges},"
          f" D={graph.diameter()}")
    outcome = run_full_bfs(graph, sources=0, delay_model=adversary)

    expected = graph.bfs_distances(0)
    assert all(outcome.distances[v] == expected[v] for v in graph.nodes)

    print("per-node distances from node 0 (row-major):")
    for r in range(6):
        row = [int(outcome.distances[r * 6 + c]) for c in range(6)]
        print("  " + " ".join(f"{d:2d}" for d in row))

    print(f"\nmessages sent:        {outcome.messages}")
    print(f"normalized async time: {outcome.result.time_to_output:.1f}"
          f"  (tau = 1; graph diameter = {graph.diameter()})")
    print("distances verified against the BFS oracle ✓")


if __name__ == "__main__":
    main()
