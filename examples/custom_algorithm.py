"""Synchronize your own algorithm (Theorem 1.1 / Section 5).

Write any event-driven synchronous program against the NodeProgram API and
the deterministic synchronizer runs it, unchanged, in the asynchronous
model — with outputs *identical* to the synchronous execution.

The example program: distributed eccentricity probing — node 0 floods a
token, every node reports its hop count back, node 0 outputs the maximum
(i.e. its eccentricity).

Run:  python examples/custom_algorithm.py
"""

from repro.core import SynchronizerSweep
from repro.net import (
    BimodalDelay,
    NodeProgram,
    ProgramSpec,
    run_synchronous,
    single_initiator,
    standard_adversaries,
    topology,
)


class EccentricityProbe(NodeProgram):
    """Flood out, convergecast the deepest level back to the root."""

    def __init__(self, info):
        super().__init__(info)
        self.level = None
        self.parent = None
        self.waiting = None
        self.best = 0
        self.reported = False

    def on_start(self, api):
        self.level = 0
        self.waiting = set(self.info.neighbors)
        for v in self.info.neighbors:
            api.send(v, ("probe", 0))

    def _maybe_report(self, api):
        if self.reported or self.waiting:
            return
        self.reported = True
        if self.parent is None:
            api.set_output(self.best)
        else:
            api.send(self.parent, ("depth", self.best))

    def on_pulse(self, api, arrived):
        for sender, (kind, value) in arrived:
            if kind == "probe":
                if self.level is None:
                    self.level = value + 1
                    self.parent = sender
                    self.best = self.level
                    children = [v for v in self.info.neighbors if v != sender]
                    self.waiting = set(children)
                    for v in children:
                        api.send(v, ("probe", self.level))
                    if not children:
                        api.send(sender, ("depth", self.level))
                        self.reported = True
                else:
                    api.send(sender, ("depth", 0))
            else:  # depth report
                self.best = max(self.best, value)
                self.waiting.discard(sender)
        if self.level is not None:
            self._maybe_report(api)


def main() -> None:
    graph = topology.barbell_graph(6, 8)
    spec = ProgramSpec("ecc-probe", EccentricityProbe, single_initiator(0))

    sync = run_synchronous(graph, spec)
    print(f"synchronous run:   T(A) = {sync.rounds_to_output} rounds,"
          f" M(A) = {sync.messages} messages")
    print(f"  node 0 measured eccentricity: {sync.outputs[0]}"
          f" (true: {int(graph.eccentricity(0))})")

    # One sweep engine: the cover/registry/pulse-bound setup is built once,
    # then every adversary is replayed from the shared immutable state.
    sweep = SynchronizerSweep(graph, spec)

    adversary = BimodalDelay(seed=7)  # most messages fast, some at the bound
    result = sweep.run(adversary)
    print(f"asynchronous run:  T(A') = {result.time_to_output:.1f},"
          f" M(A') = {result.messages} messages")
    print(f"  outputs identical to synchronous execution:"
          f" {result.outputs == sync.outputs}")
    print(f"  overheads: time x{result.time_to_output / sync.rounds_to_output:.1f},"
          f" messages x{result.messages / sync.messages:.1f}")

    # The Theorem 1.1 guarantee is adversary-uniform: replay the whole
    # standard family through the same sweep engine.
    print("\nsweep across the standard adversary family (shared setup):")
    for model in standard_adversaries(seed=7):
        r = sweep.run(model)
        ok = "identical" if r.outputs == sync.outputs else "DIVERGED"
        print(f"  {model!r:46s} T'={r.time_to_output:6.1f}"
              f"  M'={r.messages:5d}  outputs {ok}")
        assert r.outputs == sync.outputs


if __name__ == "__main__":
    main()
