"""Why synchronizers exist: naive asynchronous BFS computes WRONG distances.

A synchronous BFS flood is correct because all messages advance in lockstep.
Run the same flood asynchronously and the first proposal to arrive may have
taken a long detour of fast links — nodes adopt wrong distances.  The
paper's machinery (Go-Ahead gating via sparse-cover registration) restores
correctness under the *same* adversarial delays.

Run:  python examples/why_synchronizers.py
"""

from repro.core import ThresholdedBFSSweep
from repro.net import (
    AsyncRuntime,
    BimodalDelay,
    Process,
    standard_adversaries,
    topology,
)


class NaiveAsyncBfs(Process):
    """The broken approach: trust whichever join proposal arrives first."""

    def on_start(self):
        if self.ctx.node_id == 0:
            self.dist = 0
            self.ctx.set_output(0)
            for v in self.ctx.neighbors:
                self.ctx.send(v, 0)
        else:
            self.dist = None

    def on_message(self, sender, value):
        if self.dist is None:
            self.dist = value + 1
            self.ctx.set_output(self.dist)
            for v in self.ctx.neighbors:
                self.ctx.send(v, self.dist)


def main() -> None:
    # A cycle: two routes between any pair; the adversary makes the long way
    # fast and the short way slow.
    graph = topology.cycle_graph(16)
    adversary = BimodalDelay(seed=3, slow_fraction=0.4, fast=0.02)
    truth = graph.bfs_distances(0)

    runtime = AsyncRuntime(graph, NaiveAsyncBfs, adversary)
    naive = runtime.run()
    wrong = [v for v in graph.nodes if naive.outputs[v] != truth[v]]
    print("naive asynchronous flood:")
    print(f"  nodes with WRONG distances: {len(wrong)} of {graph.num_nodes}")
    for v in wrong[:5]:
        print(f"    node {v}: got {naive.outputs[v]}, true distance {int(truth[v])}")

    # One sweep engine: cover and registry are built once, then any
    # adversary can be replayed from the shared immutable state.
    sweep = ThresholdedBFSSweep(graph, 0, 8)
    outcome = sweep.run(adversary)
    correct = all(
        outcome.distances[v] == (truth[v] if truth[v] <= 8 else float("inf"))
        for v in graph.nodes
    )
    print("\npaper's synchronized BFS (same adversary):")
    print(f"  all distances correct: {correct}")
    print(f"  price paid: {outcome.messages} messages"
          f" vs {naive.messages} naive (correctness isn't free —"
          " but it is polylog, not linear)")

    # Correctness must hold for EVERY delay assignment (Section 1.1):
    # replay the whole standard adversary family through the same engine.
    family = standard_adversaries(seed=3)
    all_correct = all(
        out.distances[v] == (truth[v] if truth[v] <= 8 else float("inf"))
        for out in sweep.run_all(family)
        for v in graph.nodes
    )
    print(f"  correct under all {len(family)} standard adversaries"
          f" (one shared setup): {all_correct}")


if __name__ == "__main__":
    main()
