"""DET006 — cross-module message-flow analysis.

Every message in this codebase is a tuple headed by a small-int opcode
constant (``OP_*``), and the receiving side consumes it through one of
three shapes: a dense dispatch table (``_dispatch`` /
``on_message_table``) indexed by opcode value, an explicit comparison
(``op == OP_REG_UP``, ``payload[0] != OP_APP``), or membership in an
opcode-set tuple (``_REG_OPS``).  The emitter and the consumer routinely
live in *different* modules — registration emits ``OP_REG_UP`` waves that
the synchronizer's dispatch table routes back into
``RegistrationModule.handle_reg_up`` — so no single-file check can see a
dangling flow.

This pass runs over the whole linted file set at once:

1. per file, collect opcode **definitions** (``OP_NAME = <int>`` at
   module or class scope), **emissions** (a tuple literal headed by an
   opcode name — the message-construction idiom), and **consumptions**
   (comparisons, subscript indexes, opcode-set tuples, dict-dispatch
   keys, and the value ranges covered by dense dispatch tables);
2. globally, flag every opcode that is emitted somewhere but consumed
   nowhere (a message kind the system sends and then drops on the floor —
   the dynamic symptom is a silent no-op or an unguarded table
   ``IndexError``), and every opcode defined but neither emitted nor
   consumed anywhere (a dead message kind left behind by a refactor).

A dense table consumes opcode *values* ``0..len-1``, but only for opcode
names **visible in the table's own module** (defined there or imported
by name) — otherwise any sufficiently long table anywhere would absolve
every small opcode value in the tree and the rule would be toothless.
Findings anchor at the first emit site (resp. the definition) in
path/line order, so ``# det: ignore[DET006] -- why`` applies at the one
place a reader will look.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .rules import Finding

#: The opcode-constant naming convention the flow analysis keys on.
_OPCODE_RE = re.compile(r"^_?OP_[A-Z0-9_]+$")

#: Assignment targets treated as dense opcode dispatch tables: a tuple or
#: list bound to one of these names consumes opcode *values* ``0..len-1``.
_TABLE_NAMES = ("_dispatch", "on_message_table", "dispatch_table")


def _opcode_name(node: ast.AST) -> Optional[str]:
    """The opcode identifier a Name/Attribute reference resolves to."""
    if isinstance(node, ast.Name) and _OPCODE_RE.match(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _OPCODE_RE.match(node.attr):
        return node.attr
    return None


@dataclass
class FlowSummary:
    """Message-flow facts extracted from one file."""

    path: str
    module: str
    #: opcode name -> (value, line, col) of its constant definition.
    defs: Dict[str, Tuple[int, int, int]] = field(default_factory=dict)
    #: (opcode name, line, col) per message-tuple construction.
    emits: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Opcode names consumed by comparisons / subscripts / opcode sets.
    handles: Set[str] = field(default_factory=set)
    #: Lengths of dense dispatch tables: values 0..len-1 are consumed,
    #: scoped to the opcode names visible in this module.
    table_lengths: List[int] = field(default_factory=list)
    #: Opcode names imported into this module (``from m import OP_X``).
    imported: Set[str] = field(default_factory=set)


class _FlowCollector(ast.NodeVisitor):
    def __init__(self, summary: FlowSummary) -> None:
        self.summary = summary

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            name = alias.asname or alias.name
            if _OPCODE_RE.match(name):
                self.summary.imported.add(name)
        self.generic_visit(node)

    # -- definitions and dispatch tables -------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._assignment(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._assignment([node.target], node.value)
        self.generic_visit(node)

    def _assignment(self, targets: List[ast.AST], value: ast.AST) -> None:
        for target in targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is None:
                continue
            if (
                _OPCODE_RE.match(name)
                and isinstance(value, ast.Constant)
                and type(value.value) is int
            ):
                self.summary.defs.setdefault(
                    name, (value.value, target.lineno, target.col_offset)
                )
            elif name in _TABLE_NAMES and isinstance(
                value, (ast.Tuple, ast.List)
            ):
                self.summary.table_lengths.append(len(value.elts))
            elif name in _TABLE_NAMES and isinstance(value, ast.Dict):
                for key in value.keys:
                    op = _opcode_name(key) if key is not None else None
                    if op is not None:
                        self.summary.handles.add(op)

    # -- consumption sites ---------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        for side in [node.left, *node.comparators]:
            op = _opcode_name(side)
            if op is not None:
                self.summary.handles.add(op)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        op = _opcode_name(node.slice)
        if op is not None:
            self.summary.handles.add(op)
        self.generic_visit(node)

    def visit_MatchValue(self, node: ast.MatchValue) -> None:
        op = _opcode_name(node.value)
        if op is not None:
            self.summary.handles.add(op)
        self.generic_visit(node)

    # -- emissions and opcode sets -------------------------------------
    def visit_Tuple(self, node: ast.Tuple) -> None:
        self._sequence(node)
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        self._sequence(node)
        self.generic_visit(node)

    def _sequence(self, node: ast.AST) -> None:
        elts = node.elts
        if not elts:
            return
        named = [_opcode_name(e) for e in elts]
        if len(elts) >= 2 and all(n is not None for n in named):
            # (OP_A, OP_B, ...): an opcode *set* for membership tests,
            # not a message (a real payload carries non-opcode fields).
            self.summary.handles.update(named)
            return
        if named[0] is not None:
            self.summary.emits.append(
                (named[0], node.lineno, node.col_offset)
            )


def collect_flow(tree: ast.AST, path: str, module: str) -> FlowSummary:
    """Extract one file's :class:`FlowSummary` from its parsed AST."""
    summary = FlowSummary(path=path, module=module)
    _FlowCollector(summary).visit(tree)
    return summary


def analyze_flow(summaries: List[FlowSummary]) -> List[Finding]:
    """Cross-module DET006 pass over the whole linted file set."""
    ordered = sorted(summaries, key=lambda s: s.path)
    defs: Dict[str, Tuple[int, str, int, int]] = {}
    handled: Set[str] = set()
    emitted: Set[str] = set()
    first_emit: Dict[str, Tuple[str, int, int]] = {}
    for summary in ordered:
        for name, (value, line, col) in summary.defs.items():
            defs.setdefault(name, (value, summary.path, line, col))
        handled.update(summary.handles)
        for name, line, col in summary.emits:
            emitted.add(name)
            site = (summary.path, line, col)
            if name not in first_emit or site < first_emit[name]:
                first_emit[name] = site
    # A table consumes the opcode names visible in its own module whose
    # values its slot range covers.
    for summary in ordered:
        if not summary.table_lengths:
            continue
        reach = max(summary.table_lengths)
        for name in set(summary.defs) | summary.imported:
            definition = defs.get(name)
            if definition is not None and definition[0] < reach:
                handled.add(name)

    findings: List[Finding] = []
    for name in sorted(emitted):
        if name in handled:
            continue
        path, line, col = first_emit[name]
        findings.append(Finding(
            path, line, col, "DET006",
            f"message opcode {name} is emitted here but no handler"
            " consumes it anywhere in the linted files (no dispatch-table"
            " slot, comparison, or opcode-set membership)",
        ))
    for name in sorted(defs):
        if name in emitted or name in handled:
            continue
        value, path, line, col = defs[name]
        findings.append(Finding(
            path, line, col, "DET006",
            f"message opcode {name} is defined but never emitted nor"
            " consumed anywhere in the linted files (dead message kind)",
        ))
    return findings
