"""Command line front end: ``python -m repro.lint src/`` (or ``repro-lint``).

Exit codes: 0 — clean; 1 — findings; 2 — usage error.  Both the file walk
and the finding order are fully deterministic (sorted directory traversal,
total order on findings), so two runs over the same tree produce
byte-identical output — the property CI relies on to diff ``--json`` runs
(and which :mod:`tests.test_lint` pins).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterable, List, Optional, Tuple

from .flow import FlowSummary, analyze_flow, collect_flow
from .report import render_json, render_text
from .rules import RULES, Finding
from .suppress import DirectiveScan, apply_suppressions, scan_directives
from .visitor import check_module

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def discover_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted, duplicate-free .py list.

    ``os.walk`` yields directories in filesystem order, which differs
    between machines (and inode histories); sorting ``dirnames`` in place
    and the local files keeps the walk — and therefore every downstream
    report — byte-stable.
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(os.path.normpath(path))
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(path)
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.normpath(
                        os.path.join(dirpath, filename)
                    ))
    return sorted(dict.fromkeys(found))


def module_name_for(path: str) -> str:
    """Dotted module path, found by climbing ``__init__.py`` package dirs.

    Files outside any package lint under their bare stem — module-scoped
    rules (DET001/DET002) then simply do not apply unless the file claims
    a module with a ``# det: module=...`` directive (fixtures do).
    """
    abs_path = os.path.abspath(path)
    directory, filename = os.path.split(abs_path)
    parts = [os.path.splitext(filename)[0]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.append(package)
    if parts[0] == "__init__" and len(parts) > 1:
        parts = parts[1:]
    return ".".join(reversed(parts))


def _check_file_raw(
    path: str,
) -> Tuple[List[Finding], DirectiveScan, Optional[FlowSummary]]:
    """Per-file pass, suppressions not yet applied.

    The flow summary is ``None`` for unparseable files (the AST pass has
    already reported them as LNT003)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    scan = scan_directives(source)
    module = scan.module_override or module_name_for(path)
    raw = check_module(source, path, module)
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError):
        summary = None
    else:
        summary = collect_flow(tree, path, module)
    return raw, scan, summary


def check_file(path: str) -> Tuple[List[Finding], int]:
    """Lint one file: ``(findings, suppressions_used)``.

    Single-file entry point: the per-file rules only.  The cross-module
    DET006 flow pass needs the whole file set and runs in :func:`run`.
    """
    raw, scan, _summary = _check_file_raw(path)
    findings = apply_suppressions(path, raw, scan)
    used = sum(1 for supp in scan.suppressions.values() if supp.used)
    return findings, used


def run(paths: Iterable[str], rules: Optional[Iterable[str]] = None
        ) -> Tuple[List[Finding], int, int]:
    """Lint ``paths``; ``(sorted findings, files_checked, suppressions)``.

    Two passes: the per-file rules, then the cross-module DET006 flow
    analysis over every parseable file at once.  Flow findings are merged
    into their file's raw findings *before* suppressions apply, so an
    inline ``# det: ignore[DET006] -- why`` works (and an unused one is
    still LNT002)."""
    only = None if rules is None else set(rules)
    files = discover_files(paths)
    per_file: List[Tuple[str, List[Finding], DirectiveScan]] = []
    summaries: List[FlowSummary] = []
    for path in files:
        raw, scan, summary = _check_file_raw(path)
        per_file.append((path, raw, scan))
        if summary is not None:
            summaries.append(summary)
    flow_by_path: dict = {}
    for finding in analyze_flow(summaries):
        flow_by_path.setdefault(finding.path, []).append(finding)
    findings: List[Finding] = []
    suppressions_used = 0
    for path, raw, scan in per_file:
        raw = raw + flow_by_path.get(path, [])
        for finding in apply_suppressions(path, raw, scan):
            if only is None or finding.code in only:
                findings.append(finding)
        suppressions_used += sum(
            1 for supp in scan.suppressions.values() if supp.used
        )
    findings.sort(key=Finding.sort_key)
    return findings, len(files), suppressions_used


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & protocol-invariant checker"
                    " (rule catalog: DESIGN.md §12)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable, byte-stable output")
    parser.add_argument("--rules", default=None, metavar="CODES",
                        help="comma-separated rule subset, e.g."
                             " DET001,DET003")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code} {rule.name}: {rule.summary}")
        return 0

    selected = None
    if args.rules is not None:
        selected = [code.strip().upper() for code in args.rules.split(",")
                    if code.strip()]
        unknown = sorted(set(selected) - set(RULES))
        if unknown:
            print(f"repro-lint: unknown rule code(s):"
                  f" {', '.join(unknown)}", file=sys.stderr)
            return 2

    try:
        findings, files_checked, used = run(args.paths, selected)
    except FileNotFoundError as exc:
        print(f"repro-lint: no such file or directory: {exc}",
              file=sys.stderr)
        return 2

    renderer = render_json if args.as_json else render_text
    sys.stdout.write(renderer(findings, files_checked, used))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
