"""Deterministic rendering of lint results (text and ``--json``).

Output is byte-stable by construction — findings arrive pre-sorted by
``(path, line, col, code, message)``, JSON keys are sorted, and nothing
environment-dependent (timestamps, absolute paths, hash order) is ever
emitted — so CI can diff two runs' ``--json`` output directly.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .rules import RULES, Finding


def render_text(findings: List[Finding], files_checked: int,
                suppressions_used: int) -> str:
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"repro.lint: {len(findings)} {noun} in {files_checked} files"
        f" ({suppressions_used} justified suppressions)"
    )
    return "\n".join(lines) + "\n"


def render_json(findings: List[Finding], files_checked: int,
                suppressions_used: int) -> str:
    by_code: Dict[str, int] = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    payload = {
        "version": 1,
        "files_checked": files_checked,
        "suppressions_used": suppressions_used,
        "counts": {code: by_code[code] for code in sorted(by_code)},
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "rule": RULES[finding.code].name,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
