"""Inline suppression directives: ``# det: ignore[RULE, ...] -- justification``.

A directive silences findings **on its own line only** — suppressions are
site-local by design, so a justification can never drift away from the code
it excuses.  The justification is mandatory: the linter's contract with the
equivalence suites is that every statically-unprovable site carries a
human-written determinism argument, enforced as LNT001 right here.  A
directive that silences nothing is reported as LNT002 so stale suppressions
cannot accumulate after the underlying code is fixed.

Parsing runs on the token stream, not on raw lines, so a ``"# det:"``
inside a string literal is never mistaken for a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .rules import RULES, UNSUPPRESSIBLE, Finding

#: A comment *starting* with ``det:`` claims to be a directive; the strict
#: form then validates.  Matching loosely first means a typo'd directive is
#: an LNT001 finding instead of a silently inert comment.  Anchored at the
#: comment start so prose that merely mentions the syntax is never parsed.
_DIRECTIVE_RE = re.compile(r"^#\s*det\s*:\s*(?P<body>.*)$")
_IGNORE_RE = re.compile(
    r"^ignore\s*\[\s*(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\s*\]"
    r"\s*(?:--\s*(?P<why>\S.*))?$"
)
#: In-file module override (first two lines), used by fixture files that do
#: not live inside an importable package: ``# det: module=repro.core.x``.
_MODULE_RE = re.compile(r"^module\s*=\s*(?P<mod>[A-Za-z_][A-Za-z0-9_.]*)$")


@dataclass
class Suppression:
    line: int
    codes: Tuple[str, ...]
    justification: str
    used: bool = False


@dataclass
class DirectiveScan:
    """Everything the comment pass extracted from one file."""

    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    module_override: Optional[str] = None
    #: LNT001 findings for malformed/bare/unknown-code directives.
    errors: List[Tuple[int, int, str]] = field(default_factory=list)


def scan_directives(source: str) -> DirectiveScan:
    """Extract ``# det:`` directives from ``source``'s comment tokens."""
    scan = DirectiveScan()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST pass reports the file as LNT003; no directives to find.
        return scan
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE_RE.match(tok.string)
        if match is None:
            continue
        line, col = tok.start
        body = match.group("body").strip()
        module = _MODULE_RE.match(body)
        if module is not None:
            if line <= 2:
                scan.module_override = module.group("mod")
            else:
                scan.errors.append(
                    (line, col, "'# det: module=...' only applies on the"
                                " first two lines of a file")
                )
            continue
        ignore = _IGNORE_RE.match(body)
        if ignore is None:
            scan.errors.append(
                (line, col,
                 f"malformed directive {tok.string.strip()!r}; expected"
                 " '# det: ignore[RULE, ...] -- justification'")
            )
            continue
        codes = tuple(
            code.strip().upper()
            for code in ignore.group("codes").split(",")
        )
        unknown = sorted(code for code in codes if code not in RULES)
        if unknown:
            scan.errors.append(
                (line, col, f"unknown rule code(s) {', '.join(unknown)}")
            )
            continue
        banned = sorted(code for code in codes if code in UNSUPPRESSIBLE)
        if banned:
            scan.errors.append(
                (line, col,
                 f"{', '.join(banned)} cannot be suppressed (suppression"
                 " hygiene rules keep the mechanism honest)")
            )
            continue
        why = ignore.group("why")
        if not why:
            scan.errors.append(
                (line, col,
                 "suppression without a justification; every ignore must"
                 " carry '-- <one-line determinism argument>'")
            )
            continue
        scan.suppressions[line] = Suppression(line, codes, why.strip())
    return scan


def apply_suppressions(
    path: str, findings: List[Finding], scan: DirectiveScan
) -> List[Finding]:
    """Filter ``findings`` through the scan; append LNT001/LNT002 findings.

    Returns the surviving findings (unsorted — the caller owns ordering).
    """
    kept: List[Finding] = []
    for finding in findings:
        supp = scan.suppressions.get(finding.line)
        if supp is not None and finding.code in supp.codes:
            supp.used = True
            continue
        kept.append(finding)
    for line, col, message in scan.errors:
        kept.append(Finding(path, line, col, "LNT001", message))
    for supp in scan.suppressions.values():
        if not supp.used:
            kept.append(
                Finding(
                    path, supp.line, 0, "LNT002",
                    f"suppression ignore[{', '.join(supp.codes)}] matched"
                    " no finding on this line; remove it",
                )
            )
    return kept
