"""The AST pass behind ``repro.lint``: DET001-DET005 on one module.

The analysis is deliberately *local and conservative*: it infers set-ness
and slot layouts from literals, constructor calls, and annotations visible
in the module itself — no imports are followed, no types are solved.  A
site the pass cannot prove safe is a finding; a site a human can prove safe
carries a ``# det: ignore[...] -- why`` with the argument inline.  That
split (machine proves the easy 95%, humans sign the rest) is the same
contract the equivalence suites enforce dynamically, shifted to parse time.

Entry point: :func:`check_module` — parse, walk, return unsuppressed
findings (the caller applies :mod:`repro.lint.suppress`).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .rules import (
    PROTOCOL_PACKAGES,
    SANCTIONED_ENTROPY,
    Finding,
    module_in,
)

#: Builtins whose consumption of an iterable is order-insensitive: feeding
#: them a set cannot make any ordered effect depend on hash order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
)

#: Order-*sensitive* consumers: materializing a set through these bakes the
#: hash order into a sequence.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})

#: Set-returning methods: ``s.union(t)`` is as unordered as ``s``.
_SET_METHODS = frozenset(
    {"union", "difference", "intersection", "symmetric_difference", "copy"}
)

#: Names that denote a set type in annotations (bare, subscripted, or via
#: ``typing.``-qualified attribute access).
_SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
)

#: ``time`` module members that read a wall/CPU clock.
_TIME_FUNCS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
        "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
    }
)

_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

_MUTABLE_DEFAULT_CALLS = frozenset({"list", "dict", "set", "bytearray"})

#: Instance attributes treated as opcode dispatch tables when assigned a
#: tuple literal (the transport indexes these unchecked — DESIGN.md §8).
_DISPATCH_ATTRS = frozenset({"on_message_table", "_dispatch"})

_RESET_METHOD_NAMES = ("reuse", "reset")


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    """Does this annotation denote a set type (unwrapping Optional)?"""
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(node, ast.Name):
        return node.id in _SET_TYPE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_TYPE_NAMES
    if isinstance(node, ast.Subscript):
        value = node.value
        if isinstance(value, ast.Name) and value.id == "Optional" or (
            isinstance(value, ast.Attribute) and value.attr == "Optional"
        ):
            return _annotation_is_set(node.slice)
        return _annotation_is_set(value)
    return False


class _ClassInfo:
    """Statically collected facts about one class definition."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.name = node.name
        #: Simple-name bases; anything fancier marks the layout unknown.
        self.base_names: List[str] = []
        self.unknown_base = False
        for base in node.bases:
            if isinstance(base, ast.Name):
                self.base_names.append(base.id)
            else:
                self.unknown_base = True
        self.slots: Optional[Set[str]] = None
        self.methods: Dict[str, ast.FunctionDef] = {}
        self.class_level_names: Set[str] = set()
        #: Every self attribute assigned anywhere in the class body.
        self.assigned_attrs: Set[str] = set()
        #: Self attributes inferred set-typed from any assignment/annotation.
        self.set_attrs: Set[str] = set()
        self._collect()

    def _collect(self) -> None:
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt  # type: ignore[assignment]
                self.class_level_names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.class_level_names.add(target.id)
                        if target.id == "__slots__":
                            self.slots = _slot_names(stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    self.class_level_names.add(stmt.target.id)
        for method in self.methods.values():
            for sub in ast.walk(method):
                attr = _self_attr_target(sub)
                if attr is not None:
                    name, value, annotation = attr
                    self.assigned_attrs.add(name)
                    if _annotation_is_set(annotation) or (
                        value is not None and _is_set_literalish(value)
                    ):
                        self.set_attrs.add(name)


def _slot_names(node: ast.AST) -> Optional[Set[str]]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                names.add(elt.value)
            else:
                return None  # computed slots: layout unknown
        return names
    return None


def _self_attr_target(node: ast.AST):
    """``(name, value, annotation)`` when ``node`` assigns ``self.<name>``."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            for leaf in _flatten_targets(target):
                if _is_self_attr(leaf):
                    return leaf.attr, node.value, None
    elif isinstance(node, ast.AnnAssign) and _is_self_attr(node.target):
        return node.target.attr, node.value, node.annotation
    elif isinstance(node, ast.AugAssign) and _is_self_attr(node.target):
        return node.target.attr, None, None
    return None


def _flatten_targets(target: ast.AST):
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _flatten_targets(elt)
    else:
        yield target


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_set_literalish(node: ast.AST) -> bool:
    """Set-ness from the expression's own shape (no name environment)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _is_set_literalish(func.value)
    if isinstance(node, ast.IfExp):
        return _is_set_literalish(node.body) or _is_set_literalish(node.orelse)
    return False


class _FunctionEnv:
    """Names inferred set-typed inside one function scope.

    A name counts only when *every* assignment to it in the scope is
    set-typed (so ``x = sorted(x)`` cleanly demotes it) and at least one
    assignment or annotation proves the set-ness.
    """

    def __init__(self, func: ast.AST, class_info: Optional[_ClassInfo],
                 outer: Optional["_FunctionEnv"]) -> None:
        self.class_info = class_info
        self.assigned: Set[str] = set()
        set_votes: Set[str] = set()
        demoted: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                self.assigned.add(arg.arg)
                if _annotation_is_set(arg.annotation):
                    set_votes.add(arg.arg)
        body = getattr(func, "body", [])
        stack: List[ast.AST] = list(body) if isinstance(body, list) else [body]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue  # nested scopes vote for themselves
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, ast.Assign):
                value_is_set = self._value_is_set(node.value, set_votes)
                for target in node.targets:
                    for leaf in _flatten_targets(target):
                        if isinstance(leaf, ast.Name):
                            self.assigned.add(leaf.id)
                            is_tuple_unpack = not isinstance(target, ast.Name)
                            if value_is_set and not is_tuple_unpack:
                                set_votes.add(leaf.id)
                            else:
                                demoted.add(leaf.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                self.assigned.add(node.target.id)
                if _annotation_is_set(node.annotation):
                    set_votes.add(node.target.id)
                else:
                    demoted.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for leaf in _flatten_targets(node.target):
                    if isinstance(leaf, ast.Name):
                        self.assigned.add(leaf.id)
                        demoted.add(leaf.id)
        self.set_names = set_votes - demoted
        if outer is not None:
            # Closure reads of an outer set-typed name stay set-typed
            # unless this scope rebinds the name.
            self.set_names |= outer.set_names - self.assigned
            self.outer_assigned = outer.assigned | outer.outer_assigned
        else:
            self.outer_assigned = set()

    def _value_is_set(self, value: ast.AST, votes: Set[str]) -> bool:
        if _is_set_literalish(value):
            return True
        if isinstance(value, ast.Name) and value.id in votes:
            return True
        if isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._value_is_set(value.left, votes) or self._value_is_set(
                value.right, votes
            )
        return False

    def is_shadowed(self, name: str) -> bool:
        return name in self.assigned or name in self.outer_assigned


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, module: str) -> None:
        self.path = path
        self.module = module
        self.findings: List[Finding] = []
        in_protocol = module_in(module, PROTOCOL_PACKAGES)
        self.check_det001 = in_protocol
        self.check_det002 = in_protocol and not module_in(
            module, SANCTIONED_ENTROPY
        )
        self.class_stack: List[Optional[_ClassInfo]] = [None]
        self.env_stack: List[Optional[_FunctionEnv]] = [None]
        #: Comprehension nodes whose consumer is order-insensitive.
        self._sanctioned_comps: Set[int] = set()
        #: alias -> canonical module for the entropy modules.
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (module, member) for from-imports of banned members.
        self.member_aliases: Dict[str, Tuple[str, str]] = {}

    # -- plumbing ------------------------------------------------------
    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                code,
                message,
            )
        )

    @property
    def env(self) -> Optional[_FunctionEnv]:
        return self.env_stack[-1]

    @property
    def class_info(self) -> Optional[_ClassInfo]:
        return self.class_stack[-1]

    # -- imports (DET002 bookkeeping) ----------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in {"random", "time", "datetime"}:
                self.module_aliases[alias.asname or root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in {"random", "time", "datetime"}:
            for alias in node.names:
                self.member_aliases[alias.asname or alias.name] = (
                    node.module,
                    alias.name,
                )
        self.generic_visit(node)

    # -- scopes --------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = _ClassInfo(node)
        self._check_pool_reset(info)
        self._check_slots(info)
        self.class_stack.append(info)
        self.env_stack.append(None)
        self.generic_visit(node)
        self.env_stack.pop()
        self.class_stack.pop()

    def _visit_function(self, node: ast.AST) -> None:
        self._check_mutable_defaults(node)
        self.env_stack.append(
            _FunctionEnv(node, self.class_info, self.env)
        )
        self.generic_visit(node)
        self.env_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node)

    # -- DET001 --------------------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if _is_set_literalish(node):
            return True
        env = self.env
        if isinstance(node, ast.Name):
            return env is not None and node.id in env.set_names
        if _is_self_attr(node):
            info = self.class_info
            return info is not None and node.attr in info.set_attrs
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body) or self._is_set_expr(
                node.orelse
            )
        return False

    def _flag_set_iteration(self, site: ast.AST, iterable: ast.AST,
                            what: str) -> None:
        if self.check_det001 and self._is_set_expr(iterable):
            self.report(
                site, "DET001",
                f"{what} iterates a set-typed value; set order is"
                " hash-dependent — wrap in sorted(...) or justify with"
                " '# det: ignore[DET001] -- why'",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iteration(node.iter, node.iter, "for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._flag_set_iteration(node.iter, node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST, what: str,
                    order_matters: bool) -> None:
        if order_matters and id(node) not in self._sanctioned_comps:
            for gen in node.generators:  # type: ignore[attr-defined]
                self._flag_set_iteration(gen.iter, gen.iter, what)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, "list comprehension", True)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, "generator expression", True)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        # A dict built over a set bakes hash order into dict order.
        self._visit_comp(node, "dict comprehension", True)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Set in, set out: no ordered effect can escape.
        self._visit_comp(node, "set comprehension", False)

    # -- DET002 + call-shaped pieces of DET001 -------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _ORDER_INSENSITIVE:
                for arg in node.args:
                    if isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                    ):
                        self._sanctioned_comps.add(id(arg))
            elif func.id in _ORDER_SENSITIVE_CALLS and node.args:
                self._flag_set_iteration(
                    node, node.args[0], f"{func.id}(...)"
                )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
        ):
            self._flag_set_iteration(node, node.args[0], "str.join(...)")
        self._check_entropy_call(node)
        self.generic_visit(node)

    def _check_entropy_call(self, node: ast.Call) -> None:
        if not self.check_det002:
            return
        func = node.func
        sanctioned = " — seeded entropy belongs in " + " / ".join(
            SANCTIONED_ENTROPY
        )
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                canonical = self.module_aliases.get(base.id)
                if canonical == "random":
                    self.report(
                        node, "DET002",
                        f"call to random.{func.attr}{sanctioned}",
                    )
                    return
                if canonical == "time" and func.attr in _TIME_FUNCS:
                    self.report(
                        node, "DET002",
                        f"call to time.{func.attr} reads a wall/CPU clock"
                        + sanctioned,
                    )
                    return
            if func.attr in _DATETIME_FUNCS and self._is_datetime_type(base):
                self.report(
                    node, "DET002",
                    f"call to datetime.{func.attr} reads the wall clock"
                    + sanctioned,
                )
                return
        elif isinstance(func, ast.Name):
            member = self.member_aliases.get(func.id)
            if member is not None:
                mod, name = member
                if mod == "random" or (mod == "time" and name in _TIME_FUNCS):
                    self.report(
                        node, "DET002",
                        f"call to {mod}.{name}{sanctioned}",
                    )
                    return
            env = self.env
            shadowed = env is not None and env.is_shadowed(func.id)
            if func.id == "id" and not shadowed:
                self.report(
                    node, "DET002",
                    "id() is an address — it varies across runs and must"
                    " never feed ordering or emission",
                )
            elif func.id == "hash" and not shadowed and node.args:
                arg = node.args[0]
                if not (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, int)
                ):
                    self.report(
                        node, "DET002",
                        "hash() of a possibly non-int value is salted per"
                        " process (PYTHONHASHSEED); use an explicit key",
                    )

    def _is_datetime_type(self, base: ast.AST) -> bool:
        if isinstance(base, ast.Name):
            return (
                self.member_aliases.get(base.id) == ("datetime", "datetime")
            )
        return (
            isinstance(base, ast.Attribute)
            and base.attr == "datetime"
            and isinstance(base.value, ast.Name)
            and self.module_aliases.get(base.value.id) == "datetime"
        )

    # -- DET003 --------------------------------------------------------
    def _check_pool_reset(self, info: _ClassInfo) -> None:
        reset_fn = None
        for name in _RESET_METHOD_NAMES:
            if name in info.methods:
                reset_fn = info.methods[name]
                break
        init_fn = info.methods.get("__init__")
        if reset_fn is None or init_fn is None:
            return
        required: Dict[str, int] = {}
        for sub in ast.walk(init_fn):
            attr = _self_attr_target(sub)
            if attr is not None and attr[0] not in required:
                required[attr[0]] = getattr(sub, "lineno", init_fn.lineno)
        covered: Set[str] = set()
        for sub in ast.walk(reset_fn):
            attr = _self_attr_target(sub)
            if attr is not None:
                covered.add(attr[0])
            elif isinstance(sub, ast.Call):
                # self.X.clear() counts as resetting X in place.
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "clear"
                    and _is_self_attr(func.value)
                ):
                    covered.add(func.value.attr)
            elif isinstance(sub, ast.Assign):
                # self.X[:] = ... resets X's contents in place.
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Slice)
                        and _is_self_attr(target.value)
                    ):
                        covered.add(target.value.attr)
        for name in sorted(set(required) - covered):
            self.findings.append(
                Finding(
                    self.path, required[name], 0, "DET003",
                    f"{info.name}.__init__ assigns self.{name} but"
                    f" {info.name}.{reset_fn.name}() never resets it — a"
                    " recycled slot leaks the previous occupant's value",
                )
            )

    # -- DET004: slots layout ------------------------------------------
    def _check_slots(self, info: _ClassInfo) -> None:
        if info.slots is None:
            return
        allowed = set(info.slots)
        # Inherited layout: only provable when every base is a known
        # __slots__ class in this module (or object); an unknown base may
        # contribute a __dict__, which makes any assignment legal.
        for base in info.base_names:
            if base == "object":
                continue
            base_node = self._module_classes.get(base)
            if base_node is None or base_node.slots is None:
                return
            allowed |= base_node.slots
        if info.unknown_base:
            return
        for method in info.methods.values():
            for sub in ast.walk(method):
                attr = _self_attr_target(sub)
                if attr is not None and attr[0] not in allowed:
                    self.findings.append(
                        Finding(
                            self.path,
                            getattr(sub, "lineno", method.lineno), 0,
                            "DET004",
                            f"{info.name} declares __slots__ but assigns"
                            f" undeclared attribute self.{attr[0]} — this"
                            " raises AttributeError at runtime",
                        )
                    )

    # -- DET004: dispatch tables ---------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        info = self.class_info
        if info is not None and isinstance(node.value, ast.Tuple):
            for target in node.targets:
                if (
                    _is_self_attr(target)
                    and target.attr in _DISPATCH_ATTRS
                ):
                    self._check_dispatch_table(info, node, node.value)
        self.generic_visit(node)

    def _check_dispatch_table(self, info: _ClassInfo, node: ast.Assign,
                              table: ast.Tuple) -> None:
        known = (
            set(info.methods) | info.class_level_names | info.assigned_attrs
        )
        for opcode, elt in enumerate(table.elts):
            if isinstance(elt, ast.Constant) and elt.value is None:
                self.report(
                    elt, "DET004",
                    f"dispatch table leaves an opcode gap (None at index"
                    f" {opcode}); the transport indexes this table"
                    " unchecked",
                )
            elif _is_self_attr(elt) and elt.attr not in known:
                self.report(
                    elt, "DET004",
                    f"dispatch table references missing handler"
                    f" self.{elt.attr} (opcode {opcode})",
                )

    # -- DET005 --------------------------------------------------------
    def _check_mutable_defaults(self, func: ast.AST) -> None:
        args = getattr(func, "args", None)
        if args is None:
            return
        name = getattr(func, "name", "<lambda>")
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_DEFAULT_CALLS
            )
            if mutable:
                self.report(
                    default, "DET005",
                    f"mutable default argument on {name}() is shared across"
                    " every call, node, and sweep replay; default to None"
                    " and allocate inside",
                )

    # -- driver --------------------------------------------------------
    def run(self, tree: ast.Module) -> List[Finding]:
        self._module_classes: Dict[str, _ClassInfo] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._module_classes.setdefault(node.name, _ClassInfo(node))
        self.visit(tree)
        return self.findings


def check_module(source: str, path: str, module: str) -> List[Finding]:
    """Run every rule over one module's source; unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        detail = exc.msg if isinstance(exc, SyntaxError) else str(exc)
        return [Finding(path, line, 0, "LNT003",
                        f"cannot parse file: {detail}")]
    checker = _Checker(path, module)
    return checker.run(tree)
