"""Rule catalog and finding records for the determinism linter.

Every rule is derived from a real hazard class in this codebase — each one
is a bug family the dynamic equivalence suites have had to catch (or defend
against) at runtime, lifted to a static check that runs at commit time:

* **DET001** — iteration over a ``set``/``frozenset`` value inside the
  protocol/transport packages.  Set iteration order is
  implementation-defined; when the iteration feeds message emission or any
  other ordered effect, the trace stops being a function of (graph, seed).
  The codebase-wide convention is ``sorted(...)`` at every such site (the
  Go-Ahead walk in ``registration._run_g`` is the canonical example).
* **DET002** — unseeded entropy or wall-clock reads outside the two
  sanctioned stream modules (``repro.net.delays`` / ``repro.net.faults``):
  ``random.*``, ``time.time``/``perf_counter``, ``id()``, and ``hash()`` of
  a non-int (str/bytes hashes are salted per process via PYTHONHASHSEED).
* **DET003** — pooled-state reset completeness: a class with a
  ``reuse()``/``reset()`` method must reset every attribute its
  ``__init__`` assigns.  A field added to ``__init__`` but not to the reset
  path silently leaks the previous occupant's state into the recycled slot
  — exactly the poisoning bug class the PR 5/6 pools defend against.
* **DET004** — ``__slots__`` classes assigning undeclared attributes
  (silently impossible at runtime, so the assignment *raises* mid-protocol),
  and opcode dispatch tables (``on_message_table``/``_dispatch``) that
  reference missing handler methods or leave ``None`` gaps in the opcode
  range the transport indexes unchecked.
* **DET005** — mutable default arguments: a shared ``[]``/``{}``/``set()``
  default on a handler or ``Process`` subclass aliases state across nodes
  and across sweep replays.
* **DET006** — dangling message flow: every ``(OP_*, ...)`` tuple a module
  emits must have a consumer *somewhere* in the linted tree (a dispatch
  table slot covering its value, a comparison, or an opcode-set
  membership test), and every defined opcode must participate in some
  flow.  Emitters and consumers routinely live in different modules, so
  this is the one cross-module pass (:mod:`repro.lint.flow`); it runs
  over the whole file set in ``run()``/the CLI, not in single-file
  ``check_file``.

Two hygiene rules keep the suppression mechanism honest (and are not
themselves suppressible):

* **LNT001** — a ``# det:`` directive that is malformed, names an unknown
  rule, or carries no ``-- justification`` (every suppression must say why
  the flagged site is deterministic anyway).
* **LNT002** — a suppression that matched no finding (stale after a fix,
  or never needed).

* **LNT003** — a file the linter cannot parse at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Packages whose modules are "protocol/transport" code: iteration order and
#: entropy there feed the pinned schedules, so DET001/DET002 apply.
PROTOCOL_PACKAGES: Tuple[str, ...] = ("repro.core", "repro.net", "repro.covers")

#: The only modules allowed to draw entropy: every random number in a run
#: must flow through the seeded delay/fault streams.
SANCTIONED_ENTROPY: Tuple[str, ...] = ("repro.net.delays", "repro.net.faults")


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str


RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            "DET001",
            "set-iteration-order",
            "iteration over a set/frozenset value in protocol/transport code"
            " (wrap in sorted(...) or justify)",
        ),
        Rule(
            "DET002",
            "unseeded-entropy",
            "random.*/time.time/perf_counter/id()/hash(non-int) outside the"
            " sanctioned repro.net.delays / repro.net.faults streams",
        ),
        Rule(
            "DET003",
            "incomplete-pool-reset",
            "attribute assigned in __init__ but never reset in the class's"
            " reuse()/reset() method (pooled-slot state leak)",
        ),
        Rule(
            "DET004",
            "slots-and-dispatch-integrity",
            "__slots__ class assigning an undeclared attribute, or an opcode"
            " dispatch table with a missing handler / None gap",
        ),
        Rule(
            "DET005",
            "mutable-default-argument",
            "mutable default argument ([]/{}/set()/list()/dict()) shared"
            " across calls, nodes, and sweep replays",
        ),
        Rule(
            "DET006",
            "dangling-message-flow",
            "message opcode emitted with no consumer anywhere in the"
            " linted files, or defined but never emitted nor consumed"
            " (cross-module flow check)",
        ),
        Rule(
            "LNT001",
            "bad-suppression",
            "malformed '# det:' directive, unknown rule code, or suppression"
            " without a '-- justification'",
        ),
        Rule(
            "LNT002",
            "unused-suppression",
            "suppression directive that matched no finding on its line",
        ),
        Rule(
            "LNT003",
            "unparseable-file",
            "file could not be tokenized/parsed; nothing was checked",
        ),
    )
}

#: Rules the suppression mechanism itself must not silence.
UNSUPPRESSIBLE: Tuple[str, ...] = ("LNT001", "LNT002", "LNT003")


@dataclass(frozen=True)
class Finding:
    """One linter finding, totally ordered for byte-stable output."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.code, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def module_in(module: str, packages: Tuple[str, ...]) -> bool:
    """True iff ``module`` is one of ``packages`` or nested inside one."""
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )
