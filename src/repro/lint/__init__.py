"""repro.lint — static determinism & protocol-invariant checker.

The determinism contract this repo's equivalence suites pin *dynamically*
(byte-identical traces across both engines, all adversaries, and sweep
replays), enforced *statically* at commit time: an ``ast``-based pass over
the source tree flags the hazard classes that have historically needed
runtime defenses — unordered set iteration in protocol code, unsanctioned
entropy, incomplete pooled-state resets, ``__slots__``/dispatch-table
integrity, and mutable default arguments.  See DESIGN.md §12 for the rule
catalog with one real example per rule, and :mod:`repro.lint.rules` for
the machine-readable catalog.

Run as ``python -m repro.lint src/`` or via the ``repro-lint`` entry
point; ``--json`` emits byte-stable machine-readable output for CI.
"""

from .cli import check_file, discover_files, main, module_name_for, run
from .rules import RULES, Finding, Rule
from .suppress import apply_suppressions, scan_directives
from .visitor import check_module

__all__ = [
    "RULES",
    "Finding",
    "Rule",
    "apply_suppressions",
    "check_file",
    "check_module",
    "discover_files",
    "main",
    "module_name_for",
    "run",
    "scan_directives",
]
