"""Sparse covers and layered sparse covers (Definition 2.1).

A *sparse d-cover with stretch s* is a set of clusters such that

* each cluster's tree has depth ``O(d * s)``,
* each node belongs to few (``O(log n)``) clusters, and
* for every node ``v`` some cluster contains the whole ball ``B(v, d)``
  (the paper's "stronger statement"; we store that cluster as the node's
  *home cluster*).

A *layered sparse d-cover* is one sparse ``2^j``-cover for every
``j <= ceil(log2 d)``.  :func:`validate_cover` checks every property and is
used both in tests and as a guard when experiments build covers.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..net.graph import Edge, Graph, NodeId
from .cluster import ClusterTree


@dataclass(frozen=True)
class SparseCover:
    """A sparse ``radius``-cover: clusters plus per-node membership maps."""

    radius: int
    clusters: Tuple[ClusterTree, ...]
    clusters_of: Dict[NodeId, Tuple[int, ...]]
    home_cluster: Dict[NodeId, int]

    @classmethod
    def from_clusters(
        cls,
        radius: int,
        clusters: Iterable[ClusterTree],
        home_cluster: Mapping[NodeId, int],
    ) -> "SparseCover":
        cluster_tuple = tuple(clusters)
        by_id = {c.cluster_id: c for c in cluster_tuple}
        if len(by_id) != len(cluster_tuple):
            raise ValueError("duplicate cluster ids")
        membership: Dict[NodeId, List[int]] = {}
        for c in cluster_tuple:
            for v in c.members:
                membership.setdefault(v, []).append(c.cluster_id)
        return cls(
            radius=radius,
            clusters=cluster_tuple,
            clusters_of={v: tuple(sorted(ids)) for v, ids in membership.items()},
            home_cluster=dict(home_cluster),
        )

    def cluster(self, cluster_id: int) -> ClusterTree:
        for c in self.clusters:
            if c.cluster_id == cluster_id:
                return c
        raise KeyError(cluster_id)

    @property
    def max_membership(self) -> int:
        return max((len(ids) for ids in self.clusters_of.values()), default=0)

    @property
    def max_tree_height(self) -> int:
        return max((c.height for c in self.clusters), default=0)

    def stretch(self) -> float:
        """Max tree height divided by the radius."""
        return self.max_tree_height / max(self.radius, 1)

    def edge_load(self) -> Counter:
        """How many cluster trees use each graph edge."""
        load: Counter = Counter()
        for c in self.clusters:
            for e in c.tree_edges():
                load[e] += 1
        return load

    @property
    def max_edge_load(self) -> int:
        return max(self.edge_load().values(), default=0)

    def tree_participants(self, v: NodeId) -> Tuple[int, ...]:
        """Ids of all clusters whose *tree* passes through v (incl. Steiner)."""
        return tuple(
            c.cluster_id for c in self.clusters if v in c.parent
        )


def validate_cover(
    graph: Graph,
    cover: SparseCover,
    max_membership: Optional[int] = None,
    max_stretch: Optional[float] = None,
) -> None:
    """Raise ``ValueError`` if ``cover`` violates Definition 2.1 on ``graph``.

    The two optional bounds let tests pin the O(log n) membership and the
    construction-specific stretch.
    """

    for c in cover.clusters:
        c.validate(graph)
    for v in graph.nodes:
        home_id = cover.home_cluster.get(v)
        if home_id is None:
            raise ValueError(f"node {v} has no home cluster")
        home = cover.cluster(home_id)
        ball = graph.ball(v, cover.radius)
        if not ball <= home.members:
            missing = sorted(ball - home.members)
            raise ValueError(
                f"home cluster {home_id} of node {v} misses ball nodes {missing}"
            )
        if v not in cover.clusters_of or home_id not in cover.clusters_of[v]:
            raise ValueError(f"membership map inconsistent at node {v}")
    if max_membership is not None and cover.max_membership > max_membership:
        raise ValueError(
            f"a node is in {cover.max_membership} clusters (> {max_membership})"
        )
    if max_stretch is not None and cover.stretch() > max_stretch:
        raise ValueError(
            f"stretch {cover.stretch():.2f} exceeds bound {max_stretch}"
        )


@dataclass(frozen=True)
class LayeredCover:
    """Sparse ``2^j``-covers for every ``j`` in ``0..top_level``."""

    levels: Dict[int, SparseCover]

    @property
    def top_level(self) -> int:
        return max(self.levels)

    def level(self, j: int) -> SparseCover:
        """The sparse 2^j-cover; levels below 0 clamp to level 0."""
        return self.levels[max(j, 0)]

    def covers_radius(self, d: int) -> bool:
        return (1 << self.top_level) >= d

    def all_cluster_trees(self) -> List[Tuple[int, ClusterTree]]:
        """(level, tree) pairs across all levels."""
        return [
            (j, c) for j in sorted(self.levels) for c in self.levels[j].clusters
        ]


def required_top_level(d: int) -> int:
    """ceil(log2 d) — the top layer a layered sparse d-cover needs."""
    if d < 1:
        raise ValueError("radius must be >= 1")
    return max(0, math.ceil(math.log2(d)))
