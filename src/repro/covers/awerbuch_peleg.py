"""Sequential sparse-cover construction in the Awerbuch–Peleg style [AP90b].

Section 2.1 of the paper notes that the optimal stretch of sparse covers is
``O(log n)`` and that [AP90b] achieves it with a sequential algorithm; this
module implements that regime with a deterministic ball-of-balls coarsening:

Repeat iterations until every node's ball ``B(v, d)`` is inside some cluster.
One iteration greedily grows *disjoint* clusters.  A cluster grows from a
seed center by repeatedly absorbing every still-uncovered center whose ball
touches the current cluster, and stops the first time a growth round fails to
double the number of absorbed centers; the boundary centers that triggered
the stop are skipped for this iteration.

Guarantees (proved by the classic arguments, asserted in tests):

* every ball ends inside the cluster that absorbed its center (home cluster);
* each growth round at least doubles the absorbed-center count, so a cluster
  has ``<= log2 n`` rounds, each extending its radius by ``<= 2d``: cluster
  radius ``O(d log n)``, i.e. stretch ``O(log n)``;
* per cluster, skipped centers <= absorbed centers, so every iteration covers
  at least half of the remaining centers: ``<= log2 n + 1`` iterations;
* clusters of one iteration are disjoint, so no node is in more than
  ``log2 n + 1`` clusters, and no edge is in more trees than that.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from ..net.graph import Graph, NodeId
from .cluster import ClusterTree, bfs_cluster_tree
from .cover import LayeredCover, SparseCover, required_top_level


def build_ap_cover(graph: Graph, d: int) -> SparseCover:
    """Sparse d-cover with stretch O(log n) and membership O(log n)."""
    if d < 1:
        raise ValueError("radius must be >= 1")
    if not graph.is_connected():
        raise ValueError("sparse covers require a connected graph")

    balls: Dict[NodeId, frozenset] = {
        v: graph.ball(v, d) for v in graph.nodes
    }
    remaining: Set[NodeId] = set(graph.nodes)
    clusters: List[ClusterTree] = []
    home: Dict[NodeId, int] = {}
    next_id = 0

    while remaining:
        # One iteration: grow disjoint clusters until every remaining center
        # is either absorbed or skipped.
        unprocessed = set(remaining)
        while unprocessed:
            seed = min(unprocessed)
            absorbed: Set[NodeId] = {seed}
            nodes: Set[NodeId] = set(balls[seed])
            while True:
                touching = {
                    w
                    for w in unprocessed
                    if w not in absorbed and not nodes.isdisjoint(balls[w])
                }
                if len(touching) <= len(absorbed):
                    boundary = touching
                    break
                absorbed |= touching
                # Union of unions: order-free, sorted() for determinism.
                for w in sorted(touching):
                    nodes |= balls[w]
            tree = bfs_cluster_tree(
                graph, next_id, members=nodes, root=seed, allowed=frozenset(nodes)
            )
            clusters.append(tree)
            for w in sorted(absorbed):
                home[w] = next_id
            next_id += 1
            unprocessed -= absorbed
            unprocessed -= boundary  # boundary balls wait for a later iteration
            remaining -= absorbed

    return SparseCover.from_clusters(d, clusters, home)


def build_ap_layered_cover(graph: Graph, d: int) -> LayeredCover:
    """Layered sparse d-cover: one AP cover per power of two up to d."""
    top = required_top_level(d)
    return LayeredCover(
        levels={j: build_ap_cover(graph, 1 << j) for j in range(top + 1)}
    )


def ap_membership_bound(n: int) -> int:
    """Upper bound asserted in tests: iterations <= log2 n + 1."""
    return max(1, math.ceil(math.log2(max(n, 2))) + 1)
