"""Deterministic network decomposition of Rozhoň–Ghaffari [RG20] (Appendix C)
and the sparse d-cover built from it (Theorem 4.21).

The construction follows the paper's Appendix C exactly at the level of the
algorithm's decisions: ``b = ceil(log2 n)`` phases per color, each phase a
sequence of steps in which the non-stopped *blue* clusters run a joint BFS to
distance ``k``, living *red* nodes propose to the first cluster that reached
them, and each cluster either absorbs its proposers (relabeling them blue and
grafting their BFS paths onto its Steiner tree) or — when proposals number at
most ``|A| / (2b)`` — kills them and stops.

Execution-model note (see DESIGN.md, substitution 2): the decisions are
computed centrally but mirror the synchronous execution deterministically
(first-arrival = minimum distance, ties broken by smaller cluster label,
a refinement of the paper's "arbitrary" tie-break).  Rounds and messages are
*accounted* from the algorithm's structure — each step charges one distance-k
BFS (k rounds; one message per explored edge) plus one
convergecast/broadcast on every active Steiner tree (2·height rounds; 2
messages per tree edge) — so construction-cost experiments (E7) report
faithful synchronous costs while invariants are validated structurally.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..net.graph import Graph, NodeId
from .cluster import ClusterTree
from .cover import LayeredCover, SparseCover, required_top_level


@dataclass
class CostAccount:
    """Synchronous rounds and messages charged during the construction."""

    rounds: int = 0
    messages: int = 0

    def charge_bfs(self, k: int, explored_edges: int) -> None:
        self.rounds += k
        self.messages += explored_edges

    def charge_tree_wave(self, height: int, tree_edges: int) -> None:
        self.rounds += 2 * max(height, 1)
        self.messages += 2 * tree_edges


@dataclass
class _LiveCluster:
    """A cluster under construction: label, members, and its Steiner tree."""

    label: int
    members: Set[NodeId]
    root: NodeId
    parent: Dict[NodeId, Optional[NodeId]]
    stopped: bool = False

    def tree_nodes(self) -> Set[NodeId]:
        return set(self.parent)

    def tree_edge_count(self) -> int:
        return sum(1 for p in self.parent.values() if p is not None)

    def height(self) -> int:
        depth: Dict[NodeId, int] = {self.root: 0}
        best = 0
        children: Dict[NodeId, List[NodeId]] = {v: [] for v in self.parent}
        for v, p in self.parent.items():
            if p is not None:
                children[p].append(v)
        queue = deque((self.root,))
        while queue:
            u = queue.popleft()
            for c in children[u]:
                depth[c] = depth[u] + 1
                best = max(best, depth[c])
                queue.append(c)
        return best


@dataclass(frozen=True)
class Decomposition:
    """A (C, D) k-separated weak-diameter network decomposition."""

    separation: int
    color_classes: Tuple[Tuple[ClusterTree, ...], ...]
    cost: CostAccount

    @property
    def num_colors(self) -> int:
        return len(self.color_classes)

    def all_clusters(self) -> List[Tuple[int, ClusterTree]]:
        return [
            (color, cluster)
            for color, clusters in enumerate(self.color_classes)
            for cluster in clusters
        ]

    def validate(self, graph: Graph) -> None:
        """Check partition, separation, and tree structure (Def. 4.19)."""
        seen: Set[NodeId] = set()
        for color, clusters in enumerate(self.color_classes):
            color_nodes: List[Set[NodeId]] = []
            for c in clusters:
                c.validate(graph)
                overlap = seen & c.members
                if overlap:
                    raise ValueError(
                        f"node(s) {sorted(overlap)} appear in two clusters"
                    )
                seen |= c.members
                color_nodes.append(set(c.members))
            # Same-color clusters must be > separation apart.
            for i in range(len(color_nodes)):
                dist_from = graph.bfs_distances(frozenset(color_nodes[i]))
                for j in range(len(color_nodes)):
                    if i == j:
                        continue
                    for v in color_nodes[j]:
                        if dist_from[v] <= self.separation:
                            raise ValueError(
                                f"color {color}: clusters {i} and {j} are only"
                                f" {dist_from[v]} apart (need > {self.separation})"
                            )
        missing = set(graph.nodes) - seen
        if missing:
            raise ValueError(f"nodes {sorted(missing)} not in any cluster")


def _first_arrival_bfs(
    graph: Graph,
    sources: Dict[NodeId, int],
    max_dist: int,
) -> Tuple[Dict[NodeId, Tuple[int, int]], Dict[NodeId, Optional[NodeId]], int]:
    """Joint BFS from labeled sources up to ``max_dist``.

    Returns ``(assignment, parent, explored_edges)`` where ``assignment[v]``
    is ``(distance, label)`` of the first cluster wave to reach ``v`` (ties:
    smaller label) and ``parent`` gives the BFS path pointers.  Mirrors the
    synchronous semantics: all waves advance one hop per round.
    """

    assignment: Dict[NodeId, Tuple[int, int]] = {}
    parent: Dict[NodeId, Optional[NodeId]] = {}
    frontier: List[NodeId] = []
    for v in sorted(sources):
        assignment[v] = (0, sources[v])
        parent[v] = None
        frontier.append(v)
    explored_edges = 0
    dist = 0
    while frontier and dist < max_dist:
        dist += 1
        # Deterministic synchronous round: process candidates by (label, node).
        proposals: Dict[NodeId, Tuple[int, NodeId]] = {}
        for u in frontier:
            label = assignment[u][1]
            for v in graph.neighbors(u):
                explored_edges += 1
                if v in assignment:
                    continue
                bid = (label, u)
                if v not in proposals or bid < proposals[v]:
                    proposals[v] = bid
        next_frontier: List[NodeId] = []
        for v, (label, u) in sorted(proposals.items()):
            assignment[v] = (dist, label)
            parent[v] = u
            next_frontier.append(v)
        frontier = next_frontier
    return assignment, parent, explored_edges


def _build_one_color(
    graph: Graph,
    living: Set[NodeId],
    k: int,
    cost: CostAccount,
) -> Tuple[Set[NodeId], List[_LiveCluster]]:
    """Lemma C.1: cluster at least half of ``living``; return (kept, clusters)."""

    n = graph.num_nodes
    b = max(1, math.ceil(math.log2(max(n, 2))))
    alive: Set[NodeId] = set(living)
    # The clusters dict's insertion order drives the merge loops below, so
    # it is fixed by node id rather than inherited from set order.
    label: Dict[NodeId, int] = {v: v for v in sorted(alive)}
    clusters: Dict[int, _LiveCluster] = {
        v: _LiveCluster(label=v, members={v}, root=v, parent={v: None})
        for v in sorted(alive)
    }
    deny_threshold = 2 * b

    for bit in range(b):
        for c in clusters.values():
            c.stopped = False
        max_steps = 10 * b * max(1, math.ceil(math.log2(max(n, 2))))
        for _ in range(max_steps):
            blue_sources: Dict[NodeId, int] = {}
            for lab, cluster in clusters.items():
                if cluster.stopped or not cluster.members:
                    continue
                if (lab >> bit) & 1 == 0:  # blue in this phase
                    for v in cluster.members:
                        blue_sources[v] = lab
            if not blue_sources:
                break
            blue_labels = set(blue_sources.values())
            assignment, parent, explored = _first_arrival_bfs(
                graph, blue_sources, max_dist=k
            )
            cost.charge_bfs(k, explored)
            # Living red nodes reached by a wave propose to that cluster.
            proposals: Dict[int, List[NodeId]] = {}
            for v, (dist, lab) in assignment.items():
                if dist == 0 or v not in alive:
                    continue
                if (label[v] >> bit) & 1 == 1:  # red
                    proposals.setdefault(lab, []).append(v)
            any_growth = False
            for lab, cluster in sorted(clusters.items()):
                if cluster.stopped or lab not in blue_labels:
                    continue
                proposers = sorted(proposals.get(lab, ()))
                cost.charge_tree_wave(cluster.height(), cluster.tree_edge_count())
                if len(proposers) <= len(cluster.members) / deny_threshold:
                    # Deny: proposers die, the cluster stops for this phase.
                    for v in proposers:
                        alive.discard(v)
                        clusters[label[v]].members.discard(v)
                    cluster.stopped = True
                else:
                    any_growth = True
                    for v in proposers:
                        clusters[label[v]].members.discard(v)
                        label[v] = lab
                        cluster.members.add(v)
                        # Graft the BFS path of v onto the Steiner tree.
                        path = [v]
                        while path[-1] not in cluster.parent:
                            nxt = parent[path[-1]]
                            if nxt is None:
                                break
                            path.append(nxt)
                        for child, par in zip(path, path[1:]):
                            if child not in cluster.parent:
                                cluster.parent[child] = par
                        if path[-1] not in cluster.parent:
                            cluster.parent[path[-1]] = None  # defensive; unreachable
            if not any_growth and all(
                c.stopped
                for lab, c in clusters.items()
                if c.members and (lab >> bit) & 1 == 0
            ):
                break
        # Phase done: every surviving red cluster keeps its label; empty
        # clusters drop out.
        clusters = {lab: c for lab, c in clusters.items() if c.members}

    return alive, [c for c in clusters.values() if c.members]


def build_rg_decomposition(graph: Graph, k: int) -> Decomposition:
    """Theorem 4.20: k-separated weak-diameter decomposition, O(log n) colors."""
    if k < 1:
        raise ValueError("separation must be >= 1")
    if not graph.is_connected():
        raise ValueError("decomposition requires a connected graph")
    cost = CostAccount()
    remaining: Set[NodeId] = set(graph.nodes)
    color_classes: List[Tuple[ClusterTree, ...]] = []
    next_id = 0
    while remaining:
        kept, live_clusters = _build_one_color(graph, remaining, k, cost)
        trees: List[ClusterTree] = []
        for c in sorted(live_clusters, key=lambda c: c.label):
            # Prune the Steiner tree to member-to-root paths.
            keep: Set[NodeId] = set()
            for v in c.members:
                cur: Optional[NodeId] = v
                while cur is not None and cur not in keep:
                    keep.add(cur)
                    cur = c.parent[cur]
            parent = {v: p for v, p in c.parent.items() if v in keep}
            trees.append(
                ClusterTree(
                    cluster_id=next_id,
                    root=c.root,
                    members=frozenset(c.members),
                    parent=parent,
                )
            )
            next_id += 1
        color_classes.append(tuple(trees))
        remaining -= kept
    return Decomposition(
        separation=k, color_classes=tuple(color_classes), cost=cost
    )


def build_rg_cover(graph: Graph, d: int) -> Tuple[SparseCover, CostAccount]:
    """Theorem 4.21: sparse d-cover from a (2d+1)-separated decomposition.

    Each cluster expands to its d-neighborhood; separation keeps same-color
    expansions disjoint, and a node's home cluster is its own color cluster's
    expansion (which contains its whole d-ball).
    """

    decomposition = build_rg_decomposition(graph, 2 * d + 1)
    cost = decomposition.cost
    clusters: List[ClusterTree] = []
    home: Dict[NodeId, int] = {}
    next_id = 0
    for _, base in decomposition.all_clusters():
        assignment, parent, explored = _first_arrival_bfs(
            graph, {v: 0 for v in base.members}, max_dist=d
        )
        cost.charge_bfs(d, explored)
        members = frozenset(assignment)
        tree_parent: Dict[NodeId, Optional[NodeId]] = dict(base.parent)
        for v in sorted(members):
            path = [v]
            while path[-1] not in tree_parent:
                nxt = parent[path[-1]]
                if nxt is None:
                    break
                path.append(nxt)
            for child, par in zip(path, path[1:]):
                if child not in tree_parent:
                    tree_parent[child] = par
        expanded = ClusterTree(
            cluster_id=next_id,
            root=base.root,
            members=members,
            parent=tree_parent,
        )
        clusters.append(expanded)
        for v in base.members:
            home[v] = next_id
        next_id += 1
    return SparseCover.from_clusters(d, clusters, home), cost


def build_rg_layered_cover(graph: Graph, d: int) -> Tuple[LayeredCover, CostAccount]:
    total = CostAccount()
    levels: Dict[int, SparseCover] = {}
    for j in range(required_top_level(d) + 1):
        cover, cost = build_rg_cover(graph, 1 << j)
        total.rounds += cost.rounds
        total.messages += cost.messages
        levels[j] = cover
    return LayeredCover(levels=levels), total
