"""Clusters and their (Steiner) trees — the building blocks of sparse covers.

A cluster (Definition 2.1 / Theorem 4.20) is a set of *member* nodes plus a
rooted tree, living on real graph edges, that spans all members.  The tree
may pass through non-member (Steiner) nodes: the decomposition of Rozhoň and
Ghaffari produces weak-diameter clusters whose trees shortcut through already
colored vertices.  All synchronizer-side protocols (registration, gather)
run *on the tree*, so tree participants include the Steiner nodes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..net.graph import Edge, Graph, NodeId, edge_key


@dataclass(frozen=True)
class ClusterTree:
    """A rooted tree over graph nodes; ``members`` are the terminal nodes.

    ``parent`` maps every tree node to its parent (root maps to ``None``).
    Invariant: every member appears in the tree, every tree edge is a real
    graph edge, and the structure is acyclic — checked by :meth:`validate`.
    """

    cluster_id: int
    root: NodeId
    members: FrozenSet[NodeId]
    parent: Dict[NodeId, Optional[NodeId]]
    children: Dict[NodeId, Tuple[NodeId, ...]] = field(default_factory=dict)
    depth: Dict[NodeId, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.children or not self.depth:
            children: Dict[NodeId, List[NodeId]] = {v: [] for v in self.parent}
            for v, p in self.parent.items():
                if p is not None:
                    children[p].append(v)
            depth: Dict[NodeId, int] = {self.root: 0}
            queue: deque[NodeId] = deque((self.root,))
            while queue:
                u = queue.popleft()
                for c in sorted(children[u]):
                    depth[c] = depth[u] + 1
                    queue.append(c)
            object.__setattr__(
                self,
                "children",
                {v: tuple(sorted(c)) for v, c in children.items()},
            )
            object.__setattr__(self, "depth", depth)

    # ------------------------------------------------------------------
    @property
    def tree_nodes(self) -> FrozenSet[NodeId]:
        return frozenset(self.parent)

    @property
    def height(self) -> int:
        return max(self.depth.values())

    def tree_edges(self) -> FrozenSet[Edge]:
        return frozenset(
            edge_key(v, p) for v, p in self.parent.items() if p is not None
        )

    def path_to_root(self, v: NodeId) -> List[NodeId]:
        path = [v]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def validate(self, graph: Graph) -> None:
        """Raise ``ValueError`` on any structural violation."""
        if self.root not in self.parent or self.parent[self.root] is not None:
            raise ValueError(f"cluster {self.cluster_id}: bad root {self.root}")
        missing = self.members - self.tree_nodes
        if missing:
            raise ValueError(
                f"cluster {self.cluster_id}: members {sorted(missing)} not in tree"
            )
        if set(self.depth) != set(self.parent):
            raise ValueError(
                f"cluster {self.cluster_id}: tree is disconnected from the root"
            )
        for v, p in self.parent.items():
            if p is None:
                continue
            if not graph.has_edge(v, p):
                raise ValueError(
                    f"cluster {self.cluster_id}: tree edge ({v}, {p}) not in graph"
                )
            if self.depth[v] != self.depth[p] + 1:
                raise ValueError(
                    f"cluster {self.cluster_id}: inconsistent depth at {v}"
                )


def bfs_cluster_tree(
    graph: Graph,
    cluster_id: int,
    members: Iterable[NodeId],
    root: Optional[NodeId] = None,
    allowed: Optional[FrozenSet[NodeId]] = None,
) -> ClusterTree:
    """BFS tree spanning ``members``, optionally restricted to ``allowed`` nodes.

    With ``allowed=None`` the BFS runs on the whole graph (weak-diameter
    trees); otherwise only through ``allowed`` (strong-diameter trees for
    connected clusters).  The tree is pruned to branches that reach members.
    """

    member_set = frozenset(members)
    if not member_set:
        raise ValueError("cluster must have at least one member")
    if root is None:
        root = min(member_set)
    parent: Dict[NodeId, Optional[NodeId]] = {root: None}
    queue: deque[NodeId] = deque((root,))
    to_reach = set(member_set) - {root}
    while queue and to_reach:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in parent:
                continue
            if allowed is not None and v not in allowed:
                continue
            parent[v] = u
            to_reach.discard(v)
            queue.append(v)
    if to_reach:
        raise ValueError(
            f"cluster {cluster_id}: members {sorted(to_reach)} unreachable from {root}"
        )
    # Prune branches with no member below them: keep exactly the union of
    # member-to-root paths.
    keep = set()
    for v in sorted(member_set):
        cur: Optional[NodeId] = v
        while cur is not None and cur not in keep:
            keep.add(cur)
            cur = parent[cur]
    pruned = {v: p for v, p in parent.items() if v in keep}
    return ClusterTree(cluster_id=cluster_id, root=root, members=member_set, parent=pruned)


def steiner_tree_from_paths(
    graph: Graph,
    cluster_id: int,
    root: NodeId,
    members: Iterable[NodeId],
    attach_paths: Iterable[List[NodeId]],
) -> ClusterTree:
    """Build a tree from a root plus explicit attachment paths.

    Each path must start at a node already in the tree and end at a new node;
    used by the Rozhoň–Ghaffari construction where clusters grow by grafting
    the BFS path of each newly joined node.
    """

    parent: Dict[NodeId, Optional[NodeId]] = {root: None}
    for path in attach_paths:
        if path[0] not in parent:
            raise ValueError(f"path {path} does not start inside the tree")
        for a, b in zip(path, path[1:]):
            if b in parent:
                continue
            if not graph.has_edge(a, b):
                raise ValueError(f"path edge ({a}, {b}) not in graph")
            parent[b] = a
    return ClusterTree(
        cluster_id=cluster_id,
        root=root,
        members=frozenset(members),
        parent=parent,
    )
