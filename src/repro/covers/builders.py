"""Uniform entry points for constructing (layered) sparse covers.

Three builders:

* ``"ap"`` — Awerbuch–Peleg-style sequential coarsening, stretch O(log n)
  (the default used by the asynchronous machinery; see DESIGN.md,
  substitution 3);
* ``"rg"`` — Rozhoň–Ghaffari deterministic distributed construction
  (Theorem 4.21), stretch O(log^3 n);
* ``"trivial"`` — one cluster containing the whole graph (valid for every
  radius; isolates the synchronizer machinery from cover quality in tests).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..net.graph import Graph, NodeId
from .cluster import ClusterTree, bfs_cluster_tree
from .cover import LayeredCover, SparseCover, required_top_level
from .awerbuch_peleg import build_ap_cover, build_ap_layered_cover
from .rozhon_ghaffari import build_rg_cover, build_rg_layered_cover


def build_trivial_cover(graph: Graph, d: int) -> SparseCover:
    """One whole-graph cluster rooted at a graph center."""
    _, center = graph.radius_center()
    tree = bfs_cluster_tree(graph, 0, members=graph.nodes, root=center)
    return SparseCover.from_clusters(
        d, [tree], {v: 0 for v in graph.nodes}
    )


def build_cover(graph: Graph, d: int, builder: str = "ap") -> SparseCover:
    if builder == "ap":
        return build_ap_cover(graph, d)
    if builder == "rg":
        cover, _ = build_rg_cover(graph, d)
        return cover
    if builder == "trivial":
        return build_trivial_cover(graph, d)
    raise ValueError(f"unknown cover builder {builder!r}")


def build_layered_cover(graph: Graph, d: int, builder: str = "ap") -> LayeredCover:
    if builder == "ap":
        return build_ap_layered_cover(graph, d)
    if builder == "rg":
        layered, _ = build_rg_layered_cover(graph, d)
        return layered
    if builder == "trivial":
        top = required_top_level(d)
        return LayeredCover(
            levels={j: build_trivial_cover(graph, 1 << j) for j in range(top + 1)}
        )
    raise ValueError(f"unknown cover builder {builder!r}")
