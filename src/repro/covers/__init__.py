"""Sparse covers (Section 2.1) and their deterministic constructions."""

from .cluster import ClusterTree, bfs_cluster_tree, steiner_tree_from_paths
from .cover import (
    LayeredCover,
    SparseCover,
    required_top_level,
    validate_cover,
)
from .awerbuch_peleg import (
    ap_membership_bound,
    build_ap_cover,
    build_ap_layered_cover,
)
from .rozhon_ghaffari import (
    CostAccount,
    Decomposition,
    build_rg_cover,
    build_rg_decomposition,
    build_rg_layered_cover,
)
from .builders import build_cover, build_layered_cover, build_trivial_cover

__all__ = [
    "ClusterTree",
    "bfs_cluster_tree",
    "steiner_tree_from_paths",
    "LayeredCover",
    "SparseCover",
    "required_top_level",
    "validate_cover",
    "ap_membership_bound",
    "build_ap_cover",
    "build_ap_layered_cover",
    "CostAccount",
    "Decomposition",
    "build_rg_cover",
    "build_rg_decomposition",
    "build_rg_layered_cover",
    "build_cover",
    "build_layered_cover",
    "build_trivial_cover",
]
