"""Awerbuch's α synchronizer (Appendix A).

Every node generates every pulse 1..T: after its pulse-p messages are all
acknowledged it declares itself *safe for p* to every neighbor, and it
generates pulse p+1 once it is safe for p and has heard safety-p from every
neighbor.  Time overhead O(1) per pulse; message complexity blows up to
``M(A) + 2·T·m`` — the bound the paper quotes as "asymptotically the highest
message complexity possible for the given time complexity".

α needs the round bound T to stop generating pulses (the classic
presentations ignore termination); the runner measures it with one
synchronous execution, exactly like the main synchronizer's Theorem 5.5
setting.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..net.async_runtime import AsyncResult, AsyncRuntime, Process, ProcessContext
from ..net.delays import DelayModel
from ..net.graph import Graph, NodeId
from ..net.program import ArrivedBatch, NodeInfo, ProgramSpec, PulseApi
from ..net.sync_runtime import run_synchronous


class AlphaNode:
    """Per-node α engine."""

    def __init__(
        self,
        node_id: NodeId,
        info: NodeInfo,
        program_factory,
        is_initiator: bool,
        max_pulse: int,
        send,
        set_output,
    ) -> None:
        self.node_id = node_id
        self.info = info
        self.program = program_factory(info)
        self.is_initiator = is_initiator
        self.max_pulse = max_pulse
        self._send = send
        self.set_output = set_output
        self.pulse = 0
        self.arrived: Dict[int, List[Tuple[NodeId, Any]]] = {}
        self.sends_pending = 0
        self.safe_broadcast: Optional[int] = None
        self.neighbor_safe: Dict[int, Set[NodeId]] = {}
        self._sent_last = False

    def start(self) -> None:
        sends: List[Tuple[NodeId, Any]] = []
        if self.is_initiator:
            api = PulseApi(self.info)
            self.program.on_start(api)
            sends, has_output, value = api.collect()
            if has_output:
                self.set_output(value)
        self._sent_last = bool(sends)
        self._emit(sends)

    def _emit(self, sends: List[Tuple[NodeId, Any]]) -> None:
        self.sends_pending = len(sends)
        for to, payload in sends:
            self._send(to, ("m", self.pulse, payload), (self.pulse,))
        if self.sends_pending == 0:
            self._declare_safe()

    def on_delivered(self, to: NodeId, payload: Tuple) -> None:
        if payload[0] != "m" or payload[1] != self.pulse:
            return
        self.sends_pending -= 1
        if self.sends_pending == 0:
            self._declare_safe()

    def _declare_safe(self) -> None:
        self.safe_broadcast = self.pulse
        for v in self.info.neighbors:
            self._send(v, ("safe", self.pulse), (self.pulse,))
        self._maybe_advance()

    def _maybe_advance(self) -> None:
        while (
            self.safe_broadcast == self.pulse
            and self.neighbor_safe.get(self.pulse, set())
            >= set(self.info.neighbors)
        ):
            if self.pulse >= self.max_pulse:
                return
            batch: ArrivedBatch = tuple(sorted(self.arrived.pop(self.pulse, ())))
            self.pulse += 1
            triggered = bool(batch) or self._sent_last
            api = PulseApi(self.info)
            if triggered:
                self.program.on_pulse(api, batch)
            sends, has_output, value = api.collect()
            if has_output:
                self.set_output(value)
            self._sent_last = bool(sends)
            self._emit(sends)
            return  # _emit re-enters _maybe_advance via _declare_safe

    def handle(self, sender: NodeId, payload: Tuple) -> None:
        kind = payload[0]
        if kind == "m":
            self.arrived.setdefault(payload[1], []).append((sender, payload[2]))
        elif kind == "safe":
            self.neighbor_safe.setdefault(payload[1], set()).add(sender)
            self._maybe_advance()
        else:  # pragma: no cover
            raise ValueError(f"unknown alpha message {payload!r}")


class AlphaProcess(Process):
    spec: ProgramSpec
    max_pulse: int
    initiators: FrozenSet[NodeId]
    infos: Dict[NodeId, NodeInfo]

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        self.node = AlphaNode(
            node_id=ctx.node_id,
            info=self.infos[ctx.node_id],
            program_factory=self.spec.node_factory,
            is_initiator=ctx.node_id in self.initiators,
            max_pulse=self.max_pulse,
            send=lambda to, payload, priority: ctx.send(to, payload, priority),
            set_output=ctx.set_output,
        )

    def on_start(self) -> None:
        self.node.start()

    def on_message(self, sender: NodeId, payload: Tuple) -> None:
        self.node.handle(sender, payload)

    def on_delivered(self, to: NodeId, payload: Tuple) -> None:
        self.node.on_delivered(to, payload)


def run_alpha(
    graph: Graph,
    spec: ProgramSpec,
    delay_model: DelayModel,
    max_pulse: Optional[int] = None,
    max_events: int = 100_000_000,
) -> AsyncResult:
    """Run ``spec`` under the α synchronizer."""
    if max_pulse is None:
        max_pulse = run_synchronous(graph, spec).rounds_total
    namespace = dict(
        spec=spec,
        max_pulse=max_pulse,
        initiators=frozenset(spec.initiators(graph)),
        infos=spec.make_infos(graph),
    )
    process_cls = type("BoundAlpha", (AlphaProcess,), namespace)
    runtime = AsyncRuntime(graph, process_cls, delay_model)
    result = runtime.run(max_events=max_events)
    if result.stop_reason != "quiescent":
        raise RuntimeError(f"alpha did not finish: {result.stop_reason}")
    return result
