"""Awerbuch's β synchronizer (Appendix A).

β assumes an initialization phase that elects a leader and builds a rooted
spanning tree (we take the deterministic BFS tree from node 0 as given and
report its cost separately, as the paper does: "There is also a high time and
message complexity for the initialization ... but we will ignore that
here").  Per pulse, safety is convergecast up the tree to the root and the
next-pulse permission is broadcast back down: time overhead O(D) per pulse,
message overhead O(n) per pulse — messages ``M(A) + O(T·n)``.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..net.async_runtime import AsyncResult, AsyncRuntime, Process, ProcessContext
from ..net.delays import DelayModel
from ..net.graph import Graph, NodeId
from ..net.program import ArrivedBatch, NodeInfo, ProgramSpec, PulseApi
from ..net.sync_runtime import run_synchronous


class BetaNode:
    def __init__(
        self,
        node_id: NodeId,
        info: NodeInfo,
        program_factory,
        is_initiator: bool,
        max_pulse: int,
        tree_parent: Optional[NodeId],
        tree_children: Tuple[NodeId, ...],
        send,
        set_output,
    ) -> None:
        self.node_id = node_id
        self.info = info
        self.program = program_factory(info)
        self.is_initiator = is_initiator
        self.max_pulse = max_pulse
        self.tree_parent = tree_parent
        self.tree_children = tree_children
        self._send = send
        self.set_output = set_output
        self.pulse = 0
        self.arrived: Dict[int, List[Tuple[NodeId, Any]]] = {}
        self.sends_pending = 0
        self.self_safe = False
        self.child_safe: Dict[int, Set[NodeId]] = {}
        self.reported = False
        self._sent_last = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        sends: List[Tuple[NodeId, Any]] = []
        if self.is_initiator:
            api = PulseApi(self.info)
            self.program.on_start(api)
            sends, has_output, value = api.collect()
            if has_output:
                self.set_output(value)
        self._sent_last = bool(sends)
        self._emit(sends)

    def _emit(self, sends: List[Tuple[NodeId, Any]]) -> None:
        self.sends_pending = len(sends)
        self.self_safe = False
        self.reported = False
        for to, payload in sends:
            self._send(to, ("m", self.pulse, payload), (self.pulse,))
        if self.sends_pending == 0:
            self._mark_safe()

    def on_delivered(self, to: NodeId, payload: Tuple) -> None:
        if payload[0] != "m" or payload[1] != self.pulse:
            return
        self.sends_pending -= 1
        if self.sends_pending == 0:
            self._mark_safe()

    def _mark_safe(self) -> None:
        self.self_safe = True
        self._maybe_report()

    def _maybe_report(self) -> None:
        if self.reported or not self.self_safe:
            return
        if self.child_safe.get(self.pulse, set()) >= set(self.tree_children):
            self.reported = True
            if self.tree_parent is None:
                self._advance_subtree()
            else:
                self._send(self.tree_parent, ("tsafe", self.pulse), (self.pulse,))

    def _advance_subtree(self) -> None:
        for c in self.tree_children:
            self._send(c, ("next", self.pulse + 1), (self.pulse,))
        self._advance()

    def _advance(self) -> None:
        if self.pulse >= self.max_pulse:
            return
        batch: ArrivedBatch = tuple(sorted(self.arrived.pop(self.pulse, ())))
        self.pulse += 1
        api = PulseApi(self.info)
        if batch or self._sent_last:
            self.program.on_pulse(api, batch)
        sends, has_output, value = api.collect()
        if has_output:
            self.set_output(value)
        self._sent_last = bool(sends)
        self._emit(sends)

    def handle(self, sender: NodeId, payload: Tuple) -> None:
        kind = payload[0]
        if kind == "m":
            self.arrived.setdefault(payload[1], []).append((sender, payload[2]))
        elif kind == "tsafe":
            self.child_safe.setdefault(payload[1], set()).add(sender)
            self._maybe_report()
        elif kind == "next":
            self._advance_subtree()
        else:  # pragma: no cover
            raise ValueError(f"unknown beta message {payload!r}")


class BetaProcess(Process):
    spec: ProgramSpec
    max_pulse: int
    initiators: FrozenSet[NodeId]
    infos: Dict[NodeId, NodeInfo]
    tree: Dict[NodeId, Optional[NodeId]]
    children: Dict[NodeId, Tuple[NodeId, ...]]

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        self.node = BetaNode(
            node_id=ctx.node_id,
            info=self.infos[ctx.node_id],
            program_factory=self.spec.node_factory,
            is_initiator=ctx.node_id in self.initiators,
            max_pulse=self.max_pulse,
            tree_parent=self.tree[ctx.node_id],
            tree_children=self.children.get(ctx.node_id, ()),
            send=lambda to, payload, priority: ctx.send(to, payload, priority),
            set_output=ctx.set_output,
        )

    def on_start(self) -> None:
        self.node.start()

    def on_message(self, sender: NodeId, payload: Tuple) -> None:
        self.node.handle(sender, payload)

    def on_delivered(self, to: NodeId, payload: Tuple) -> None:
        self.node.on_delivered(to, payload)


def run_beta(
    graph: Graph,
    spec: ProgramSpec,
    delay_model: DelayModel,
    max_pulse: Optional[int] = None,
    root: NodeId = 0,
    max_events: int = 100_000_000,
) -> AsyncResult:
    """Run ``spec`` under the β synchronizer (BFS tree from ``root`` given)."""
    if max_pulse is None:
        max_pulse = run_synchronous(graph, spec).rounds_total
    tree = graph.bfs_tree(root)
    children: Dict[NodeId, List[NodeId]] = {}
    for v, p in tree.items():
        if p is not None:
            children.setdefault(p, []).append(v)
    namespace = dict(
        spec=spec,
        max_pulse=max_pulse,
        initiators=frozenset(spec.initiators(graph)),
        infos=spec.make_infos(graph),
        tree=tree,
        children={v: tuple(sorted(c)) for v, c in children.items()},
    )
    process_cls = type("BoundBeta", (BetaProcess,), namespace)
    runtime = AsyncRuntime(graph, process_cls, delay_model)
    result = runtime.run(max_events=max_events)
    if result.stop_reason != "quiescent":
        raise RuntimeError(f"beta did not finish: {result.stop_reason}")
    return result
