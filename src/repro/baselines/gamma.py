"""Awerbuch's γ synchronizer (Appendix A).

γ interpolates between α and β: the graph is partitioned into low-diameter
clusters (here: the deterministic Rozhoň–Ghaffari decomposition with k=1,
whose construction cost we report separately, like β's tree); per pulse,
safety is convergecast inside each cluster (β-style), clusters exchange
safety over one *preferred edge* per adjacent cluster pair (α-style), and a
second convergecast/broadcast releases the next pulse.  Per pulse: O(cluster
height) time and O(n + #preferred edges) messages, i.e. messages
``M(A) + O(T·n)`` with time overhead O(log n)·stretch.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..covers.rozhon_ghaffari import build_rg_decomposition
from ..net.async_runtime import AsyncResult, AsyncRuntime, Process, ProcessContext
from ..net.delays import DelayModel
from ..net.graph import Graph, NodeId, edge_key
from ..net.program import ArrivedBatch, NodeInfo, ProgramSpec, PulseApi
from ..net.sync_runtime import run_synchronous
from ..core.cluster_ops import ClusterAggregateModule, and_merge
from ..core.registration import ClusterView


class GammaStructure:
    """Precomputed partition: clusters, trees, preferred inter-cluster edges."""

    def __init__(self, graph: Graph) -> None:
        decomposition = build_rg_decomposition(graph, 1)
        self.construction_rounds = decomposition.cost.rounds
        self.construction_messages = decomposition.cost.messages
        self.trees = {}
        self.cluster_of: Dict[NodeId, int] = {}
        cid = 0
        for _, tree in decomposition.all_clusters():
            self.trees[cid] = tree
            for v in tree.members:
                self.cluster_of[v] = cid
            cid += 1
        preferred: Dict[Tuple[int, int], Tuple[NodeId, NodeId]] = {}
        for u, v in sorted(graph.edges):
            cu, cv = self.cluster_of[u], self.cluster_of[v]
            if cu == cv:
                continue
            pair = (min(cu, cv), max(cu, cv))
            if pair not in preferred:
                preferred[pair] = (u, v)
        self.preferred_of: Dict[NodeId, List[NodeId]] = {}
        for u, v in preferred.values():
            self.preferred_of.setdefault(u, []).append(v)
            self.preferred_of.setdefault(v, []).append(u)

    def views_of(self, node: NodeId) -> Dict[int, ClusterView]:
        views = {}
        for cid, tree in self.trees.items():
            if node in tree.parent:
                views[cid] = ClusterView(
                    cluster_id=cid,
                    parent=tree.parent[node],
                    children=tree.children.get(node, ()),
                )
        return views


class GammaNode:
    def __init__(
        self,
        node_id: NodeId,
        info: NodeInfo,
        program_factory,
        is_initiator: bool,
        max_pulse: int,
        structure: GammaStructure,
        send,
        set_output,
    ) -> None:
        self.node_id = node_id
        self.info = info
        self.program = program_factory(info)
        self.is_initiator = is_initiator
        self.max_pulse = max_pulse
        self.structure = structure
        self._send = send
        self.set_output = set_output
        self.my_cluster = structure.cluster_of[node_id]
        self.preferred = tuple(sorted(structure.preferred_of.get(node_id, ())))
        views = structure.views_of(node_id)
        self.views = views
        self.agg = ClusterAggregateModule(
            node_id=node_id,
            clusters=views,
            send=lambda to, payload, priority: self._send(to, payload, priority),
            on_result=self._on_result,
            merge_fn=lambda tag: and_merge,
            priority_fn=lambda tag: (tag[1],),
        )
        self.pulse = 0
        self.arrived: Dict[int, List[Tuple[NodeId, Any]]] = {}
        self.sends_pending = 0
        self._sent_last = False
        self.xsafe_got: Dict[int, Set[NodeId]] = {}
        self.gsafe_result: Set[int] = set()

    # ------------------------------------------------------------------
    def start(self) -> None:
        sends: List[Tuple[NodeId, Any]] = []
        if self.is_initiator:
            api = PulseApi(self.info)
            self.program.on_start(api)
            sends, has_output, value = api.collect()
            if has_output:
                self.set_output(value)
        self._sent_last = bool(sends)
        # Steiner-only duties for pulse 0 on foreign trees.
        for cid in self.views:
            if cid != self.my_cluster:
                self.agg.contribute(cid, ("gsafe", 0), True)
                self.agg.contribute(cid, ("gx", 0), True)
        self._emit(sends)

    def _emit(self, sends: List[Tuple[NodeId, Any]]) -> None:
        self.sends_pending = len(sends)
        for to, payload in sends:
            self._send(to, ("m", self.pulse, payload), (self.pulse,))
        if self.sends_pending == 0:
            self._safe()

    def on_delivered(self, to: NodeId, payload: Tuple) -> None:
        if payload[0] != "m" or payload[1] != self.pulse:
            return
        self.sends_pending -= 1
        if self.sends_pending == 0:
            self._safe()

    def _safe(self) -> None:
        self.agg.contribute(self.my_cluster, ("gsafe", self.pulse), True)

    def _on_result(self, cid: int, tag: Tuple, result: Any) -> None:
        kind, p = tag
        if cid != self.my_cluster:
            # Foreign (Steiner) tree: pace its barriers one pulse at a time.
            if kind == "gx" and p + 1 <= self.max_pulse:
                self.agg.contribute(cid, ("gsafe", p + 1), True)
                self.agg.contribute(cid, ("gx", p + 1), True)
            return
        if kind == "gsafe":
            self.gsafe_result.add(p)
            for v in self.preferred:
                self._send(v, ("xsafe", p), (p,))
            self._maybe_xdone(p)
        elif kind == "gx":
            self._advance()

    def _maybe_xdone(self, p: int) -> None:
        if p not in self.gsafe_result:
            return
        if self.xsafe_got.get(p, set()) >= set(self.preferred):
            self.gsafe_result.discard(p)
            self.agg.contribute(self.my_cluster, ("gx", p), True)

    def _advance(self) -> None:
        if self.pulse >= self.max_pulse:
            return
        batch: ArrivedBatch = tuple(sorted(self.arrived.pop(self.pulse, ())))
        self.pulse += 1
        api = PulseApi(self.info)
        if batch or self._sent_last:
            self.program.on_pulse(api, batch)
        sends, has_output, value = api.collect()
        if has_output:
            self.set_output(value)
        self._sent_last = bool(sends)
        self._emit(sends)

    def handle(self, sender: NodeId, payload: Tuple) -> None:
        kind = payload[0]
        if kind == "m":
            self.arrived.setdefault(payload[1], []).append((sender, payload[2]))
        elif kind == "xsafe":
            self.xsafe_got.setdefault(payload[1], set()).add(sender)
            self._maybe_xdone(payload[1])
        elif not self.agg.handle(sender, payload):  # pragma: no cover
            raise ValueError(f"unknown gamma message {payload!r}")


class GammaProcess(Process):
    spec: ProgramSpec
    max_pulse: int
    initiators: FrozenSet[NodeId]
    infos: Dict[NodeId, NodeInfo]
    structure: GammaStructure

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        self.node = GammaNode(
            node_id=ctx.node_id,
            info=self.infos[ctx.node_id],
            program_factory=self.spec.node_factory,
            is_initiator=ctx.node_id in self.initiators,
            max_pulse=self.max_pulse,
            structure=self.structure,
            send=lambda to, payload, priority: ctx.send(to, payload, priority),
            set_output=ctx.set_output,
        )

    def on_start(self) -> None:
        self.node.start()

    def on_message(self, sender: NodeId, payload: Tuple) -> None:
        self.node.handle(sender, payload)

    def on_delivered(self, to: NodeId, payload: Tuple) -> None:
        self.node.on_delivered(to, payload)


def run_gamma(
    graph: Graph,
    spec: ProgramSpec,
    delay_model: DelayModel,
    max_pulse: Optional[int] = None,
    structure: Optional[GammaStructure] = None,
    max_events: int = 100_000_000,
) -> AsyncResult:
    """Run ``spec`` under the γ synchronizer."""
    if max_pulse is None:
        max_pulse = run_synchronous(graph, spec).rounds_total
    if structure is None:
        structure = GammaStructure(graph)
    namespace = dict(
        spec=spec,
        max_pulse=max_pulse,
        initiators=frozenset(spec.initiators(graph)),
        infos=spec.make_infos(graph),
        structure=structure,
    )
    process_cls = type("BoundGamma", (GammaProcess,), namespace)
    runtime = AsyncRuntime(graph, process_cls, delay_model)
    result = runtime.run(max_events=max_events)
    if result.stop_reason != "quiescent":
        raise RuntimeError(f"gamma did not finish: {result.stop_reason}")
    return result
