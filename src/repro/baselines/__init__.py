"""Awerbuch's alpha, beta, gamma synchronizers (Appendix A) — the baselines."""

from .alpha import run_alpha
from .beta import run_beta
from .gamma import GammaStructure, run_gamma

__all__ = ["run_alpha", "run_beta", "run_gamma", "GammaStructure"]
