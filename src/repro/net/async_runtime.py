"""Asynchronous message-passing simulator (Sections 1.1, 2.2, Appendix B).

Model implemented here:

* Per-message delays are chosen by a :class:`~repro.net.delays.DelayModel`
  (the adversary), bounded by ``tau = 1``; reported times are therefore
  already normalized, matching the paper's ``T = T_real / tau`` definition.
* The acknowledgment discipline of Appendix B: each node may have at most one
  algorithm message in flight per directed link; the next message is injected
  only when the previous one's acknowledgment returns.  Acknowledgments ride
  outside the discipline (at most one each way), also with adversarial delay.
* Per-link outboxes are priority queues.  A message's ``priority`` tuple
  encodes its stage (Lemma 2.5: lower stages first) and its procedure's
  round-robin ticket (Corollary 2.3: fairness among same-stage procedures
  sharing an edge), so the scheduling lemmas of Section 2.2 are realized by
  the transport itself and every protocol above gets them for free.

Protocols are :class:`Process` subclasses; one instance runs per node and
reacts to deliveries via ``on_message``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .delays import DelayModel, TAU
from .events import EventQueue
from .graph import Graph, NodeId

Payload = Any
Priority = Tuple[Any, ...]

DEFAULT_PRIORITY: Priority = (0,)


class Process:
    """Base class for one node's asynchronous protocol instance."""

    def __init__(self, ctx: "ProcessContext") -> None:
        self.ctx = ctx

    def on_start(self) -> None:  # pragma: no cover - default no-op
        """Called once at time 0."""

    def on_message(self, sender: NodeId, payload: Payload) -> None:
        raise NotImplementedError

    def on_delivered(self, to: NodeId, payload: Payload) -> None:
        """Acknowledgment arrived: ``payload`` was delivered to ``to``.

        The asynchronous model already pays for these acknowledgments
        (Appendix B); protocols that need delivery confirmation — the general
        synchronizer's safety bookkeeping — override this hook.  Default:
        no-op.
        """


class ProcessContext:
    """Per-node handle into the runtime: identity, sending, and output."""

    __slots__ = ("_runtime", "node_id", "neighbors")

    def __init__(self, runtime: "AsyncRuntime", node_id: NodeId) -> None:
        self._runtime = runtime
        self.node_id = node_id
        self.neighbors = runtime.graph.neighbors(node_id)

    @property
    def now(self) -> float:
        return self._runtime.now

    def send(
        self, to: NodeId, payload: Payload, priority: Priority = DEFAULT_PRIORITY
    ) -> None:
        self._runtime._enqueue(self.node_id, to, payload, priority)

    def schedule_environment_event(self, delay: float, callback) -> None:
        """Schedule an adversary/environment-controlled local event.

        Protocols themselves must never use this (the asynchronous model has
        no clocks); it exists for tests and workload drivers that model the
        environment handing a node an input at an arbitrary time.
        """
        self._runtime.queue.schedule(delay, callback)

    def set_output(self, value: Any) -> None:
        self._runtime._record_output(self.node_id, value)

    def edge_weight(self, to: NodeId) -> float:
        return self._runtime.graph.weight(self.node_id, to)


@dataclass
class AsyncResult:
    """Outcome of one asynchronous execution (times normalized by tau)."""

    time_to_output: float
    time_to_quiescence: float
    messages: int
    acks: int
    outputs: Dict[NodeId, Any]
    output_time: Dict[NodeId, float]
    events_fired: int
    stop_reason: str

    @property
    def time_complexity(self) -> float:
        return self.time_to_output

    @property
    def message_complexity(self) -> int:
        return self.messages

    @property
    def messages_with_acks(self) -> int:
        return self.messages + self.acks


class _Link:
    """Directed link state: one in-flight slot plus a priority outbox."""

    __slots__ = ("busy", "outbox", "seq", "injected")

    def __init__(self) -> None:
        self.busy = False
        self.outbox: List[Tuple[Priority, int, Payload]] = []
        self.seq = 0
        self.injected = 0


class AsyncRuntime:
    """Discrete-event executor for one protocol over one graph."""

    def __init__(
        self,
        graph: Graph,
        process_factory: Callable[[ProcessContext], Process],
        delay_model: DelayModel,
        count_acks: bool = True,
        trace: Optional[Callable[[float, NodeId, NodeId, Payload], None]] = None,
    ) -> None:
        self.graph = graph
        self.delay_model = delay_model
        self.queue = EventQueue()
        self.count_acks = count_acks
        self.trace = trace
        self._links: Dict[Tuple[NodeId, NodeId], _Link] = {}
        for u, v in graph.edges:
            self._links[(u, v)] = _Link()
            self._links[(v, u)] = _Link()
        self.messages = 0
        self.acks = 0
        self.outputs: Dict[NodeId, Any] = {}
        self.output_time: Dict[NodeId, float] = {}
        self._time_to_output = 0.0
        self.processes: Dict[NodeId, Process] = {}
        for v in graph.nodes:
            self.processes[v] = process_factory(ProcessContext(self, v))

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.queue.now

    def _record_output(self, node: NodeId, value: Any) -> None:
        self.outputs[node] = value
        self.output_time[node] = self.now
        self._time_to_output = max(self._time_to_output, self.now)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _enqueue(
        self, u: NodeId, v: NodeId, payload: Payload, priority: Priority
    ) -> None:
        link = self._links.get((u, v))
        if link is None:
            raise ValueError(f"no link {u} -> {v}")
        heapq.heappush(link.outbox, (priority, link.seq, payload))
        link.seq += 1
        if not link.busy:
            self._inject(u, v, link)

    def _inject(self, u: NodeId, v: NodeId, link: _Link) -> None:
        _, _, payload = heapq.heappop(link.outbox)
        link.busy = True
        link.injected += 1
        self.messages += 1
        delay = self.delay_model(u, v, link.injected, self.now)
        if not 0 < delay <= TAU:
            raise ValueError(
                f"delay model produced {delay} outside (0, {TAU}] on {u}->{v}"
            )
        self.queue.schedule(delay, lambda: self._deliver(u, v, payload))

    def _deliver(self, u: NodeId, v: NodeId, payload: Payload) -> None:
        if self.trace is not None:
            self.trace(self.now, u, v, payload)
        # The acknowledgment travels back outside the send discipline.
        self.acks += 1
        link = self._links[(u, v)]
        ack_delay = self.delay_model(v, u, -link.injected, self.now)
        if not 0 < ack_delay <= TAU:
            raise ValueError("delay model produced an invalid ack delay")
        self.queue.schedule(ack_delay, lambda: self._ack(u, v, payload))
        self.processes[v].on_message(u, payload)

    def _ack(self, u: NodeId, v: NodeId, payload: Payload) -> None:
        link = self._links[(u, v)]
        link.busy = False
        self.processes[u].on_delivered(v, payload)
        if link.outbox:
            self._inject(u, v, link)

    # ------------------------------------------------------------------
    def run(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> AsyncResult:
        for v in sorted(self.graph.nodes):
            process = self.processes[v]
            self.queue.schedule(0.0, process.on_start)
        stop_reason = self.queue.run(max_time=max_time, max_events=max_events)
        return AsyncResult(
            time_to_output=self._time_to_output,
            time_to_quiescence=self.now,
            messages=self.messages,
            acks=self.acks if self.count_acks else 0,
            outputs=dict(self.outputs),
            output_time=dict(self.output_time),
            events_fired=self.queue.fired,
            stop_reason=stop_reason,
        )


def run_asynchronous(
    graph: Graph,
    process_factory: Callable[[ProcessContext], Process],
    delay_model: DelayModel,
    max_time: Optional[float] = None,
    max_events: Optional[int] = 50_000_000,
) -> AsyncResult:
    """Convenience wrapper: build the runtime and run to quiescence."""
    runtime = AsyncRuntime(graph, process_factory, delay_model)
    return runtime.run(max_time=max_time, max_events=max_events)
