"""Asynchronous message-passing simulator (Sections 1.1, 2.2, Appendix B).

Model implemented here:

* Per-message delays are chosen by a :class:`~repro.net.delays.DelayModel`
  (the adversary), bounded by ``tau = 1``; reported times are therefore
  already normalized, matching the paper's ``T = T_real / tau`` definition.
* The acknowledgment discipline of Appendix B: each node may have at most one
  algorithm message in flight per directed link; the next message is injected
  only when the previous one's acknowledgment returns.  Acknowledgments ride
  outside the discipline (at most one each way), also with adversarial delay.
* Per-link outboxes are priority queues.  A message's ``priority`` tuple
  encodes its stage (Lemma 2.5: lower stages first) and its procedure's
  round-robin ticket (Corollary 2.3: fairness among same-stage procedures
  sharing an edge), so the scheduling lemmas of Section 2.2 are realized by
  the transport itself and every protocol above gets them for free.

Protocols are :class:`Process` subclasses; one instance runs per node and
reacts to deliveries via ``on_message``.

Performance architecture (DESIGN.md §6, §8, §9): the runtime *is* the event
loop.  It subclasses :class:`~repro.net.events.EventQueue` and pops
*packed-int records* — the common transport record is the 3-tuple
``(time, seq, code)`` with ``code = (kind << LINK_BITS) | link_id`` — in
one inlined dispatch loop.  Per-directed-link state lives in a
*struct-of-arrays link table* (DESIGN.md §8): dense ``link_id`` ints index
parallel lists for the busy slot, outbox head, sequence counters, bound
handlers, and the fused-ack reservation; the packed codes themselves are
precomputed int objects on the shared :class:`LinkSkeleton`, so pushing an
event allocates nothing beyond its record tuple.

A packed delivery's payload and pre-drawn acknowledgment delay ride in
per-link *side slots* (DESIGN.md §9) instead of in the record.  Slot
occupancy is the link's outstanding-record count: an injection finding
``pending == 0`` owns the slot (the Appendix B discipline makes this the
overwhelmingly common case); any other injection — only possible during
the ``on_delivered`` double-inject race — falls back to a "fat"
:data:`~repro.net.events.EV_DELIVER_PAYLOAD` record carrying its fields
inline (same ``(time, seq)`` identity, so schedules are unchanged) and
*invalidates* the slot's pre-drawn ack delay, which encodes the historical
redraw rule (see ``_ack_delay``) without a per-delivery sequence check.

Acknowledgments split into two kinds at delivery time: a sender that wants
its ``on_delivered`` callback for this payload gets an
:data:`~repro.net.events.EV_ACK_PAYLOAD` record (payload inline); everyone
else gets a bare :data:`~repro.net.events.EV_ACK` 3-tuple whose dispatch
is nothing but "free the link, drain the outbox" — no callback or
interest checks per acknowledgment.

Delay randomness is drawn in *blocks*: when the delay model exposes
``block_stream`` (all shipped models do), each link's next
:data:`~repro.net.delays.BLOCK_PAIRS` (message delay, ack delay) pairs are
filled into one flat per-runtime float array in a single closure call, and
a send consumes two list loads instead of calling into the model at all.
Per-link injection numbers are strictly sequential, so a block is always
consumed in order and refilled exactly at its boundary; sweeps pass one
shared buffer across replays (:mod:`repro.net.sweep`) so the allocation is
paid once per sweep.  Models exposing only ``pair_stream`` keep the
one-closure-call-per-message path, and models with neither keep the
historical draw-at-delivery path, so time-dependent custom models observe
identical ``now`` values on both engines.

A message usually costs no acknowledgment event at all: when nobody waits
on an ack (no ``on_delivered`` interest, nothing queued or outstanding on
the link), the ack's ``(time, seq)`` identity is merely *reserved* and the
event is materialized only if a later send actually has to wait on it.

Same-time deliveries to one destination are *batched*: after dispatching a
delivery the loop keeps consuming heap-top records as long as they are
packed deliveries at the same instant for the same node, reusing the
hoisted ``on_message`` binding without re-entering the outer per-event
bookkeeping.  Records are still consumed strictly in ``(time, seq)`` order
— any interleaved record (another destination, an acknowledgment, a
callback, a fat delivery) ends the batch — so the schedule is
byte-identical to the unbatched loop (pinned by
``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from functools import partial
from heapq import heappop, heappush
from math import inf
from types import MappingProxyType
from typing import Any, Callable, Dict, List, Mapping, MutableSequence, Optional, Tuple
from weakref import WeakKeyDictionary

from .delays import BLOCK_PAIRS, DelayModel, InvalidDelayError, TAU
from .faults import DETECT_TIMEOUT, FaultSchedule
from .events import (
    CODE_ACK,
    CODE_ACK_PAYLOAD,
    CODE_DELIVER,
    CODE_DELIVER_PAYLOAD,
    EV_CALLBACK,
    LINK_MASK,
    EventQueue,
)
from .graph import Graph, NodeId, UnknownLinkError

Payload = Any
Priority = Tuple[Any, ...]
LinkId = int

DEFAULT_PRIORITY: Priority = (0,)

#: Floats per link in a block buffer: BLOCK_PAIRS interleaved
#: (message delay, ack delay) pairs.  Must be a power of two: the send hot
#: path detects block exhaustion as ``cursor & (BLOCK_SPAN - 1) == 0``
#: (cursors rest at a region boundary exactly when the previous cycle is
#: fully consumed), which costs no per-link limit load.
BLOCK_SPAN = 2 * BLOCK_PAIRS
if BLOCK_SPAN & (BLOCK_SPAN - 1):
    # A plain raise, not an assert: stripped asserts under ``python -O``
    # would let a mis-tuned BLOCK_PAIRS silently serve stale buffer values
    # as delays (the mask-based exhaustion test needs power-of-two regions).
    raise ValueError(
        f"BLOCK_PAIRS must be a power of two, got {BLOCK_PAIRS}"
    )


def make_block_buffer(num_links: int) -> MutableSequence[float]:
    """A zeroed flat delay-block buffer for ``num_links`` links.

    A plain list: fills store the float objects they compute, and the send
    path reads them back by reference — two float allocations per message,
    exactly what the per-message ``pair_stream`` call paid.  (An
    ``array('d')`` was measured and rejected: unboxing on fill plus
    re-boxing on read doubles the float allocations per message, which
    costs more than the raw-double layout saves — and with
    :data:`~repro.net.delays.BLOCK_PAIRS` small, the resident float set
    stays a few hundred KB even at n=1024.)
    """
    return [0.0] * (BLOCK_SPAN * num_links)


def _fill_checked(fill, buf, base: int, seq: int, pairs: int) -> None:
    """Run one block fill, then validate every delay it produced.

    A per-element loop on purpose: ``min``/``max`` reductions can skip NaN
    (every comparison with NaN is False), which is exactly the value that
    must not reach the heap.  Runs once per :data:`~repro.net.delays.
    BLOCK_PAIRS` messages, so the validation cost is amortized to a couple
    of float comparisons per send.
    """
    fill(buf, base, seq, pairs)
    for x in buf[base:base + 2 * pairs]:
        if not 0.0 < x <= TAU:
            raise InvalidDelayError(
                f"block stream produced delay {x!r} outside (0, {TAU}]"
            )


class LinkSkeleton:
    """Immutable directed-link table of one graph: the dense id assignment.

    ``link_id`` ints are assigned once per graph — both orientations of
    every edge, in edge order — and everything derived from the assignment
    alone lives here: the endpoint arrays ``lu``/``lv`` (link id -> source /
    destination node), the per-node outgoing map ``out`` (node ->
    {neighbor -> link id}), the packed event codes of every link
    (``deliver_codes[lid] == CODE_DELIVER + lid`` etc. — precomputed int
    *objects*, so the hot paths never allocate an int per event), and the
    per-link block bounds ``blk_lims`` (``(lid + 1) * BLOCK_SPAN``, the
    exclusive end of link ``lid``'s region in a flat block buffer).  All of
    it is immutable after construction, so one skeleton is shared by every
    runtime over the same graph (sweep replays in particular; see
    :func:`link_skeleton_for`).
    """

    __slots__ = ("lu", "lv", "out", "num_links", "deliver_codes",
                 "ack_codes", "ack_payload_codes", "fat_codes", "blk_lims")

    def __init__(self, graph: Graph) -> None:
        lu: List[NodeId] = []
        lv: List[NodeId] = []
        out: Dict[NodeId, Dict[NodeId, LinkId]] = {v: {} for v in graph.nodes}
        lid = 0
        for u, v in graph.edges:
            lu.append(u)
            lv.append(v)
            out[u][v] = lid
            lid += 1
            lu.append(v)
            lv.append(u)
            out[v][u] = lid
            lid += 1
        if lid > LINK_MASK + 1:
            raise ValueError(
                f"graph has {lid} directed links; packed event codes support"
                f" at most {LINK_MASK + 1} (raise LINK_BITS in repro.net.events)"
            )
        self.lu: Tuple[NodeId, ...] = tuple(lu)
        self.lv: Tuple[NodeId, ...] = tuple(lv)
        # Read-only views: the skeleton is shared by every runtime over the
        # graph (and exposed as ``ProcessContext.links``), so a protocol
        # mutating its link map must fail loudly instead of corrupting the
        # per-graph cache.  MappingProxyType lookups stay C-level.
        self.out: Mapping[NodeId, Mapping[NodeId, LinkId]] = MappingProxyType(
            {v: MappingProxyType(links) for v, links in out.items()}
        )
        self.num_links = lid
        self.deliver_codes = tuple(CODE_DELIVER + i for i in range(lid))
        self.ack_codes = tuple(CODE_ACK + i for i in range(lid))
        self.ack_payload_codes = tuple(CODE_ACK_PAYLOAD + i for i in range(lid))
        self.fat_codes = tuple(CODE_DELIVER_PAYLOAD + i for i in range(lid))
        self.blk_lims = tuple(range(BLOCK_SPAN, (lid + 1) * BLOCK_SPAN,
                                    BLOCK_SPAN))

    def __getstate__(self):
        """Explicit pickle state: the link-id assignment itself.

        ``mappingproxy`` views don't pickle, and the packed code tuples are
        pure functions of ``num_links`` — so a shipped skeleton carries only
        the endpoint arrays and a plain-dict copy of the outgoing map.
        Crucially this preserves the *parent's* id assignment verbatim: a
        sharded sweep worker (repro.net.shard) replays against exactly the
        link ids the parent's digests were computed over, instead of
        re-deriving them from the unpickled graph.
        """
        return (self.lu, self.lv,
                {v: dict(links) for v, links in self.out.items()})

    def __setstate__(self, state) -> None:
        lu, lv, out = state
        self.lu = tuple(lu)
        self.lv = tuple(lv)
        self.out = MappingProxyType(
            {v: MappingProxyType(dict(links)) for v, links in out.items()}
        )
        lid = len(self.lu)
        self.num_links = lid
        self.deliver_codes = tuple(CODE_DELIVER + i for i in range(lid))
        self.ack_codes = tuple(CODE_ACK + i for i in range(lid))
        self.ack_payload_codes = tuple(CODE_ACK_PAYLOAD + i for i in range(lid))
        self.fat_codes = tuple(CODE_DELIVER_PAYLOAD + i for i in range(lid))
        self.blk_lims = tuple(range(BLOCK_SPAN, (lid + 1) * BLOCK_SPAN,
                                    BLOCK_SPAN))


#: Skeletons are pure functions of the immutable graph; weak keys release
#: dead graphs.  Standalone runs over one graph share the table exactly as
#: sweep replays do.
_SKELETON_CACHE: "WeakKeyDictionary[Graph, LinkSkeleton]" = WeakKeyDictionary()


def link_skeleton_for(graph: Graph) -> LinkSkeleton:
    skeleton = _SKELETON_CACHE.get(graph)
    if skeleton is None:
        skeleton = _SKELETON_CACHE[graph] = LinkSkeleton(graph)
    return skeleton


def adopt_skeleton(graph: Graph, skeleton: LinkSkeleton) -> LinkSkeleton:
    """Seed the per-graph cache with a skeleton shipped from another process.

    The per-graph cache is keyed by graph *identity* (weak keys), so a
    worker that unpickles a ``(graph, skeleton)`` pair starts with a cold
    cache even though the parent built the table already.  Adopting the
    shipped skeleton makes the parent's link-id assignment authoritative in
    the child: every standalone runtime (and every sweep) over the adopted
    graph object shares the one table, exactly as in the parent.  If the
    child cached a skeleton for this graph first, the cached one wins — both
    are derived from the same immutable graph, so they are equal — keeping
    a single shared table per graph either way.
    """
    cached = _SKELETON_CACHE.get(graph)
    if cached is not None:
        return cached
    _SKELETON_CACHE[graph] = skeleton
    return skeleton


class Process:
    """Base class for one node's asynchronous protocol instance."""

    def __init__(self, ctx: "ProcessContext") -> None:
        self.ctx = ctx

    def on_start(self) -> None:  # pragma: no cover - default no-op
        """Called once at time 0."""

    def on_message(self, sender: NodeId, payload: Payload) -> None:
        raise NotImplementedError

    #: Optional filter for ``on_delivered``: when a subclass overrides the
    #: hook but only cares about payloads whose first element equals this
    #: value (and ALL its payloads are non-empty tuples), setting the class
    #: attribute lets the transport skip the callback inline for everything
    #: else — one comparison instead of a Python call per acknowledgment.
    #: Any equality-comparable constant works; the synchronizer stack uses a
    #: small-int opcode.
    ACK_INTEREST_PREFIX: Optional[Any] = None

    #: Optional per-opcode dispatch fast path: a process whose payloads are
    #: ALL tuples starting with a valid small-int opcode may set (usually as
    #: an instance attribute) a tuple of bound handlers indexed by opcode.
    #: The transport then calls ``on_message_table[payload[0]]`` directly,
    #: skipping one wrapper frame per delivery.  The table is trusted: the
    #: transport performs no bounds or sign check (in-simulation traffic
    #: comes from the process's own sends), while the public ``handle``
    #: entry points of the protocol stack keep their guarded dispatch for
    #: externally supplied payloads.
    on_message_table: Optional[Tuple[Callable[[NodeId, Payload], None], ...]] = None

    #: Declared opcode range of ``on_message_table``: when set, the engine
    #: validates ``len(on_message_table) == NUM_OPCODES`` once at wiring time
    #: (alongside a callable check on every slot), so a short or gap-ridden
    #: table fails loudly at setup instead of as an ``IndexError``/
    #: ``TypeError`` deep inside the dispatch loop.  ``None`` skips the
    #: length check (the callable check still runs for any table).
    NUM_OPCODES: Optional[int] = None

    def on_delivered(self, to: NodeId, payload: Payload) -> None:
        """Acknowledgment arrived: ``payload`` was delivered to ``to``.

        The asynchronous model already pays for these acknowledgments
        (Appendix B); protocols that need delivery confirmation — the general
        synchronizer's safety bookkeeping — override this hook.  Default:
        no-op (and the transport skips the call entirely for processes that
        do not override it).
        """

    def on_neighbor_dead(self, neighbor: NodeId) -> None:  # pragma: no cover
        """Failure-detector callback: ``neighbor`` crashed and will never
        answer again.

        Fires ``detect_timeout`` after the neighbor's crash, only under a
        :class:`~repro.net.faults.FaultSchedule` with crashes and only for
        processes that override the hook (the transport elides detectors
        otherwise, so fault-free schedules stay byte-identical).  Default:
        no-op.

        Not fired at all when the neighbor re-joins before the detector
        would have gone off (``rejoin_time <= crash + detect_timeout``):
        a flap faster than the timeout is indistinguishable from slowness
        under the synchrony bound, so the detector stays silent.
        """

    def on_neighbor_alive(self, neighbor: NodeId) -> None:  # pragma: no cover
        """Recovery-detector callback: ``neighbor`` re-joined the network.

        The symmetric hook to :meth:`on_neighbor_dead` (DESIGN.md §15).
        Fires ``detect_timeout`` after the neighbor's rejoin time, only
        under a schedule with re-joins and only for processes that override
        the hook.  The delay is the same sound bound as detection: by
        ``rejoin + detect_timeout`` every pre-rejoin transport record on
        the shared link has either fired or been voided, so readmitting the
        neighbor cannot interleave the old incarnation's traffic with the
        new one's.  Default: no-op.
        """


class ProcessContext:
    """Per-node handle into the runtime: identity, sending, and output.

    ``send`` is bound directly to the runtime's enqueue path (a C-level
    partial application of this node's outgoing link map), so a protocol
    send costs one Python frame.  ``links`` maps each neighbor to the dense
    id of the directed link toward it, and ``send_link`` is the int-indexed
    fast path: protocol engines that resolve their destinations once (the
    synchronizer stack caches parent/children/recipient link ids in their
    per-stage state) skip the per-send neighbor lookup entirely.
    """

    __slots__ = ("_runtime", "node_id", "neighbors", "links", "send",
                 "send_link")

    def __init__(self, runtime: "AsyncRuntime", node_id: NodeId) -> None:
        self._runtime = runtime
        self.node_id = node_id
        self.neighbors = runtime.graph.neighbors(node_id)
        #: neighbor -> dense link id (shared skeleton state; a read-only
        #: mapping — the table is aliased by every runtime over the graph).
        self.links: Mapping[NodeId, LinkId] = runtime._out[node_id]
        # send(to, payload, priority=DEFAULT_PRIORITY)
        self.send = partial(runtime._enqueue_from, self.links, node_id)
        # send_link(link_id, payload, priority=DEFAULT_PRIORITY): the
        # closure form with the link-table arrays pre-bound (cell loads
        # beat attribute loads on the per-send hot path).
        self.send_link = runtime._send_on

    @property
    def now(self) -> float:
        return self._runtime.now

    def schedule_environment_event(self, delay: float, callback) -> None:
        """Schedule an adversary/environment-controlled local event.

        Protocols themselves must never use this (the asynchronous model has
        no clocks); it exists for tests and workload drivers that model the
        environment handing a node an input at an arbitrary time.  Under a
        fault schedule the callback is crash-guarded: a fail-stop node takes
        no steps at or after its crash time, environment-driven or not.
        """
        runtime = self._runtime
        crash_t = runtime._crash_t
        if crash_t is not None:
            t_crash = crash_t[self.node_id]
            if t_crash < inf:
                rejoin_t = runtime._rejoin_t
                t_rejoin = inf if rejoin_t is None else rejoin_t[self.node_id]

                def guarded(_cb=callback, _rt=runtime, _t=t_crash,
                            _r=t_rejoin) -> None:
                    # Dead window is [crash, rejoin): a re-joined node takes
                    # environment steps again.
                    if _rt._now < _t or _rt._now >= _r:
                        _cb()

                runtime.schedule(delay, guarded)
                return
        runtime.schedule(delay, callback)

    def reset_link(self, to: NodeId) -> None:
        """Abandon the outgoing link toward ``to`` (recovery hook).

        A crashed receiver never acknowledges, so the Appendix B discipline
        jams the link forever; a process told by its failure detector that
        ``to`` is dead calls this to clear the in-flight slot and discard
        everything queued toward the corpse.  Only meaningful under a fault
        schedule.

        Interaction with re-joins (DESIGN.md §15): un-jamming here and the
        transport's own un-jam at ``to``'s rejoin time compose cleanly —
        both merely clear sender-side link state, and any record that was
        in flight on the link when ``to`` crashed is *void* at the rejoin
        regardless (the returned incarnation shares no link-layer state
        with the old one).  So the first message the returned ``to``
        observes on this link is whichever send follows the later of the
        reset and the rejoin, in plain injection order: the rejoin-time
        delivery order is exactly the post-rejoin send order, never a
        resurrected pre-crash packet.
        """
        self._runtime._reset_link(self.links[to])

    def set_output(self, value: Any) -> None:
        self._runtime._record_output(self.node_id, value)

    def edge_weight(self, to: NodeId) -> float:
        return self._runtime.graph.weight(self.node_id, to)


@dataclass
class AsyncResult:
    """Outcome of one asynchronous execution (times normalized by tau)."""

    time_to_output: float
    time_to_quiescence: float
    messages: int
    acks: int
    outputs: Dict[NodeId, Any]
    output_time: Dict[NodeId, float]
    #: Number of scheduler events dispatched.  By default fused
    #: acknowledgments (never materialized as events) count as zero; with
    #: ``AsyncRuntime(count_fused_acks=True)`` they are added back, restoring
    #: the paper's raw per-event accounting (one event per delivery and per
    #: acknowledgment).
    events_fired: int
    stop_reason: str
    #: Messages lost to faults: deliveries whose receiver had crashed plus
    #: per-link drop events.  Always 0 without a fault schedule.
    dropped: int = 0

    @property
    def time_complexity(self) -> float:
        return self.time_to_output

    @property
    def message_complexity(self) -> int:
        return self.messages

    @property
    def messages_with_acks(self) -> int:
        return self.messages + self.acks


#: :class:`ControlledEvent` kinds (strings, not ints: controlled runs are a
#: verification surface, not a hot path, and the kinds surface verbatim in
#: serialized counterexample traces).
CTRL_DELIVER = "deliver"
CTRL_ACK = "ack"
CTRL_CALLBACK = "callback"
CTRL_CRASH = "crash"
CTRL_DETECT = "detect"
CTRL_REJOIN = "rejoin"
CTRL_ALIVE = "alive"


class ControlledEvent:
    """One schedulable step offered to a :class:`ScheduleController`.

    ``seq`` is the underlying heap record's scheduling sequence number —
    unique, and (because record creation is deterministic given the choices
    made so far) a stable identity for the event across re-executions of
    the same choice prefix.  Synthetic actions (``crash``/``detect``) have
    no record and ``seq is None``; they are identified by their node
    fields instead.  ``acting`` is the process whose protocol state the
    step mutates — the commutativity key of repro.check's partial-order
    reduction (``None`` = unknown, treated as racing with everything).
    """

    __slots__ = ("kind", "seq", "link", "src", "dst", "node", "record")

    def __init__(self, kind, seq, link, src, dst, node, record):
        self.kind = kind
        self.seq = seq
        self.link = link
        self.src = src
        self.dst = dst
        self.node = node
        self.record = record

    @property
    def acting(self) -> Optional[NodeId]:
        kind = self.kind
        if kind == CTRL_DELIVER:
            return self.dst  # the receiver's handler runs
        if kind == CTRL_ACK:
            return self.src  # the sender's callback/outbox drain runs
        if kind == CTRL_DETECT:
            return self.dst  # the observer's on_neighbor_dead runs
        if kind == CTRL_ALIVE:
            return self.dst  # the observer's on_neighbor_alive runs
        if kind == CTRL_REJOIN:
            # A rejoin voids in-flight incident records and disarms armed
            # detects at *other* observers — it enables/disables events
            # whose acting processes are not the returning node, so for
            # the partial-order reduction it races with everything.
            return None
        return self.node  # callback (None when unattributed) / crash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ControlledEvent({self.kind}, seq={self.seq},"
                f" link={self.link}, src={self.src}, dst={self.dst},"
                f" node={self.node})")


class ScheduleController:
    """Scheduling adversary hook for controlled runs (repro.check).

    When an instance is passed to :class:`AsyncRuntime`, ``run()`` enters
    :meth:`AsyncRuntime._run_controlled` instead of the clock-driven
    dispatch loops: the heap becomes an unordered bag of *enabled* events,
    and at every step the controller is shown all of them (plus the
    synthetic crash/detect actions below) and picks which one fires next.
    The delay model still runs — record timestamps and acknowledgment
    redraws are drawn exactly as always, so a replayed choice sequence
    reproduces the execution bit-for-bit — but it no longer *orders*
    anything.  With no controller installed this machinery is never
    touched and the fast dispatch loops are byte-identical.

    ``crashable`` folds fail-stop branch points into the schedule space:
    every node listed here contributes a ``crash`` action to the enabled
    set until it is chosen, and a chosen crash arms one ``detect`` action
    per live neighbor that overrides ``on_neighbor_dead``.  Detection
    honors the fault model's synchrony bound (DESIGN.md §11: delays ≤ τ,
    detection at crash + 2.25τ): a detect action is *withheld* while any
    delivery from a then-live sender that was in flight at the crash is
    still undelivered — those messages provably resolve before the
    timeout fires.  The corpse's own in-flight messages do not block
    detection: a down interval may legally defer them past it, which is
    the straggler race the recovery guard exists for.
    """

    #: Nodes the controller may crash (fail-stop) at a step of its choosing.
    crashable: Tuple[NodeId, ...] = ()

    #: Nodes the controller may *re-join* after crashing them: every
    #: crashed node listed here contributes a ``rejoin`` action to the
    #: enabled set until it is chosen.  A chosen rejoin rebuilds the node
    #: with fresh protocol state, un-jams its incident links, voids the
    #: crash-stranded records still in the bag, and arms one ``alive``
    #: action per live neighbor that overrides ``on_neighbor_alive`` —
    #: racing the pending ``detect`` actions, which is exactly the
    #: D1–D3-shaped interleaving space repro.check must cover.
    rejoinable: Tuple[NodeId, ...] = ()

    def choose(self, events: List[ControlledEvent]) -> Optional[int]:
        """Pick the next step: an index into ``events``, or ``None`` to stop.

        ``events`` is non-empty; record-backed events come first, sorted by
        ``seq``, followed by crash actions (crashable order) and armed
        detect actions (arming order).  Returning ``None`` ends the run
        with ``stop_reason == "controller"``.
        """
        raise NotImplementedError


class AsyncRuntime(EventQueue):
    """Discrete-event executor for one protocol over one graph.

    Directed-link state is a struct-of-arrays table indexed by the dense
    link ids of the graph's :class:`LinkSkeleton` (DESIGN.md §8, §9):

    * ``_busy[lid]`` — the Appendix B in-flight slot;
    * ``_outbox[lid]`` — the priority outbox heap (``None`` until first used);
    * ``_seq[lid]`` — outbox FIFO tiebreaker;
    * ``_injected[lid]`` — injection counter (drives the delay streams and
      recovers ``messages`` at run end);
    * ``_pending[lid]`` — scheduled transport records outstanding for the
      link.  Normally alternates 1 -> 1 -> 0; an ``on_delivered`` callback
      sending on the link it is being notified about can race the ack drain
      and put two messages in flight (a quirk the reference engine has too).
      Doubles as the side-slot occupancy test (an injection finding it
      nonzero goes fat) and gates ack fusing (only allowed at zero);
    * ``_slot_payload[lid]`` / ``_slot_ack[lid]`` — the side slots of the
      one packed delivery the link may have in flight: payload, and the
      pre-drawn ack delay or ``None`` (``None`` forces the delivery-time
      redraw at the link's latest injection number; fat injections
      invalidate the slot ack to trigger exactly the historical
      double-inject redraws);
    * ``_deliver[lid]`` / ``_table[lid]`` — the receiver's bound
      ``on_message`` and optional opcode dispatch table;
    * ``_delivered[lid]`` / ``_ack_prefix[lid]`` — the sender's overridden
      ``on_delivered`` (or ``None``) and its interest prefix;
    * ``_blk_fill[lid]`` / ``_blk_i[lid]`` (+ the flat ``_blk_buf``) —
      per-link block-fill closures and cursors when the delay model
      exposes ``block_stream``; ``_pair[lid]`` / ``_draw[lid]`` /
      ``_ack_draw[lid]`` — the per-message stream fallbacks (``_ack_draw``
      is bound lazily, only for links that ever re-draw an ack);
    * ``_free_at[lid]`` / ``_reserved[lid]`` — fused-acknowledgment state:
      when a delivery needs no callback and the outbox is empty, no ack
      event is pushed at all; the ack's (time, seq) identity is *reserved*
      here and only materialized if a later send has to wait on it.
    """

    __slots__ = (
        "graph", "delay_model", "count_acks", "count_fused_acks", "trace",
        "_skeleton", "_lu", "_lv", "_out", "_busy", "_outbox", "_seq",
        "_injected", "_pending", "_slot_payload", "_slot_ack",
        "_deliver", "_table", "_delivered",
        "_ack_prefix", "_draw", "_ack_draw", "_pair", "_stream_factory",
        "_blk_fill", "_blk_buf", "_blk_i", "_free_at",
        "_reserved", "_send_on", "_enqueue_from", "_inject_link",
        "messages", "acks", "_fused", "outputs",
        "output_time", "_time_to_output", "processes", "_active_seq",
        "faults", "detect_timeout", "_crash_t", "_down_fn", "_drop_fn",
        "dropped", "controller", "crashed",
        "_rejoin_t", "_stale_seq", "_process_factory", "rejoined",
    )

    def __init__(
        self,
        graph: Graph,
        process_factory: Callable[[ProcessContext], Process],
        delay_model: DelayModel,
        count_acks: bool = True,
        trace: Optional[Callable[[float, NodeId, NodeId, Payload], None]] = None,
        count_fused_acks: bool = False,
        skeleton: Optional[LinkSkeleton] = None,
        block_buffer: Optional[MutableSequence[float]] = None,
        faults: Optional[FaultSchedule] = None,
        detect_timeout: float = DETECT_TIMEOUT,
        controller: Optional[ScheduleController] = None,
    ) -> None:
        """``count_fused_acks=True`` restores the paper's raw event
        accounting in ``events_fired`` (fused acknowledgments count as one
        event each, as they did before ack fusing); it does not change the
        schedule, the metrics semantics of ``acks``, or the ``max_events``
        budget, which only meters events that actually enter the heap.
        ``skeleton`` is the graph's precomputed :class:`LinkSkeleton` —
        sweep harnesses pass theirs so the dense link-id assignment is
        derived from the graph only once per sweep; by default it comes
        from the per-graph cache.  ``block_buffer`` is the flat delay-block
        array (``num_links * BLOCK_SPAN`` floats) — sweeps pass one shared
        buffer so the allocation is paid once per sweep; it is pure scratch
        (every value is re-derived from the delay model's pure streams on
        refill), but the caller must not run two runtimes sharing one
        buffer concurrently.  By default each runtime allocates its own.
        ``faults`` is an optional :class:`~repro.net.faults.FaultSchedule`;
        an empty schedule is normalized to ``None`` so it provably cannot
        perturb the fault-free schedule (the fast dispatch loops are only
        entered when no schedule is active).  ``detect_timeout`` is how long
        after a neighbor's crash its failure detector fires (sound for any
        value > 2*TAU; see :data:`~repro.net.faults.DETECT_TIMEOUT`).
        """
        super().__init__()
        self.graph = graph
        self.delay_model = delay_model
        self.count_acks = count_acks
        self.count_fused_acks = count_fused_acks
        self.trace = trace
        if skeleton is None:
            skeleton = link_skeleton_for(graph)
        self._skeleton = skeleton
        lu = self._lu = skeleton.lu
        lv = self._lv = skeleton.lv
        self._out = skeleton.out
        n_links = skeleton.num_links
        if faults is not None and faults.is_empty():
            # Empty schedules normalize to "no faults": the fast dispatch
            # loops run and existing schedules/metrics stay byte-identical.
            faults = None
        if controller is not None and faults is not None:
            # Controlled runs model fail-stop crashes as controller-chosen
            # actions (``ScheduleController.crashable``); a timer-keyed
            # fault schedule would reintroduce the clock the controller
            # exists to replace.
            raise ValueError(
                "controller and faults are mutually exclusive: controlled"
                " runs take crash points from ScheduleController.crashable"
            )
        self.controller = controller
        #: Nodes crashed by controller-chosen actions, with the logical
        #: time of the crash.  Populated only by ``_run_controlled``.
        self.crashed: Dict[NodeId, float] = {}
        #: Nodes that re-joined during the run (schedule-keyed or
        #: controller-chosen), with the time of the rejoin.
        self.rejoined: Dict[NodeId, float] = {}
        self.faults = faults
        self.detect_timeout = detect_timeout
        self.dropped = 0
        # Kept for rejoin rebuilds only (a returned node gets a *fresh*
        # process from the same factory); never touched on fault-free runs.
        self._process_factory = process_factory
        if faults is None:
            self._crash_t: Optional[List[float]] = None
            self._down_fn = None
            self._drop_fn = None
            self._rejoin_t: Optional[List[float]] = None
        else:
            # Fault state resolved once per runtime: per-node crash times
            # (``inf`` = never) and per-directed-link down/drop checkers
            # (``None`` = the link is never down / never drops), all pure
            # functions of the schedule's seed.
            self._crash_t = [faults.crash_time(v) for v in graph.nodes]
            self._down_fn = [
                faults.down_checker(lu[i], lv[i]) for i in range(n_links)
            ]
            self._drop_fn = [
                faults.drop_checker(lu[i], lv[i]) for i in range(n_links)
            ]
            self._rejoin_t = [faults.rejoin_time(v) for v in graph.nodes]
        # Per-link stale-record watermark: a transport record whose seq is
        # below the link's watermark was in flight when an incident endpoint
        # re-joined and is *void* at fire time (DESIGN.md §15).  All zeros
        # (every real seq is >= 0, and the watermark only moves at a rejoin)
        # means the check is inert on schedules without rejoins.
        self._stale_seq = [0] * n_links
        # Mutable per-replay link state: flat parallel lists (outboxes stay
        # None until a send actually queues — `if outbox[lid]` treats None
        # and empty alike).
        self._busy = [False] * n_links
        self._outbox: List[Optional[List[Tuple[Priority, int, Payload]]]] = (
            [None] * n_links
        )
        self._seq = [0] * n_links
        self._injected = [0] * n_links
        self._pending = [0] * n_links
        self._slot_payload: List[Payload] = [None] * n_links
        self._slot_ack: List[Optional[float]] = [None] * n_links
        self._free_at = [0.0] * n_links
        self._reserved: List[Optional[int]] = [None] * n_links
        block_factory = getattr(delay_model, "block_stream", None)
        stream_factory = getattr(delay_model, "link_stream", None)
        pair_factory = getattr(delay_model, "pair_stream", None)
        # Lazily binds reverse streams for re-drawn acknowledgments only
        # (see _ack_delay); None when the model has no link_stream.
        self._stream_factory = stream_factory
        self._ack_draw: List[Optional[Callable[[int], float]]] = [None] * n_links
        if block_factory is not None:
            # Block path: delays come from the flat buffer; the pair/draw
            # slots stay empty.  Cursors start at the exclusive region end,
            # so the first send on a link triggers a fill at its injection
            # number (blocks therefore stay aligned even across run() calls
            # on a buffer another replay has dirtied).
            self._blk_fill = [
                block_factory(lu[i], lv[i]) for i in range(n_links)
            ]
            if block_buffer is None:
                block_buffer = make_block_buffer(n_links)
            self._blk_buf: Optional[MutableSequence[float]] = block_buffer
            self._blk_i: Optional[List[int]] = list(skeleton.blk_lims)
            self._pair: List[Optional[Callable]] = [None] * n_links
            self._draw: List[Optional[Callable[[int], float]]] = [None] * n_links
        else:
            self._blk_fill = None
            self._blk_buf = None
            self._blk_i = None
            if pair_factory is not None:
                # The fused draw covers injection; ``_draw`` is never
                # consulted.
                self._pair = [
                    pair_factory(lu[i], lv[i]) for i in range(n_links)
                ]
                self._draw = [None] * n_links
            elif stream_factory is not None:
                self._pair = [None] * n_links
                self._draw = [
                    stream_factory(lu[i], lv[i]) for i in range(n_links)
                ]
            else:
                self._pair = [None] * n_links
                self._draw = [None] * n_links
        self.messages = 0
        self.acks = 0
        self._fused = 0
        self._active_seq = -1  # seq of the event being dispatched
        self._send_on, self._enqueue_from, self._inject_link = (
            self._make_senders()
        )
        self.outputs: Dict[NodeId, Any] = {}
        self.output_time: Dict[NodeId, float] = {}
        self._time_to_output = 0.0
        self.processes: Dict[NodeId, Process] = {}
        for v in graph.nodes:
            self.processes[v] = process_factory(ProcessContext(self, v))
        processes = self.processes
        base_delivered = Process.on_delivered
        deliver = self._deliver = [None] * n_links
        table = self._table = [None] * n_links
        delivered = self._delivered = [None] * n_links
        ack_prefix = self._ack_prefix = [None] * n_links
        # One-time per-process table validation: the dispatch loops call
        # ``table[payload[0]]`` unguarded (in-simulation traffic is
        # trusted), so a short table or a ``None`` gap must fail loudly
        # here, at wiring time, not as an ``IndexError``/``TypeError``
        # mid-run.
        for node, proc in processes.items():
            tab = proc.on_message_table
            if tab is None:
                continue
            expected = type(proc).NUM_OPCODES
            if expected is not None and len(tab) != expected:
                raise ValueError(
                    f"node {node}: {type(proc).__name__}.on_message_table"
                    f" has {len(tab)} entries but the class declares"
                    f" NUM_OPCODES = {expected}"
                )
            for op, handler in enumerate(tab):
                if not callable(handler):
                    raise ValueError(
                        f"node {node}: {type(proc).__name__}"
                        f".on_message_table[{op}] is not callable"
                        f" ({handler!r}); every slot in the opcode range"
                        f" must be a bound handler"
                    )
        for lid in range(n_links):
            dst = processes[lv[lid]]
            src = processes[lu[lid]]
            deliver[lid] = dst.on_message
            table[lid] = dst.on_message_table
            if type(src).on_delivered is not base_delivered:
                delivered[lid] = src.on_delivered
                ack_prefix[lid] = type(src).ACK_INTEREST_PREFIX

    # ------------------------------------------------------------------
    def _record_output(self, node: NodeId, value: Any) -> None:
        self.outputs[node] = value
        now = self._now
        self.output_time[node] = now
        if now > self._time_to_output:
            self._time_to_output = now

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _enqueue(
        self, u: NodeId, v: NodeId, payload: Payload,
        priority: Priority = DEFAULT_PRIORITY,
    ) -> None:
        links = self._out.get(u)
        if links is None:
            raise UnknownLinkError(u, v)
        self._enqueue_from(links, u, v, payload, priority)

    def _make_senders(
        self,
    ) -> Tuple[Callable[..., None], Callable[..., None], Callable[..., None]]:
        """Build the three enqueue fast paths as sibling closures.

        ``send_on(lid, payload, priority)`` is the int-indexed path bound to
        ``ProcessContext.send_link``; ``enqueue_from(links, u, v, payload,
        priority)`` is the node-id path behind ``ProcessContext.send`` (one
        dict probe, then the same body); ``inject(lid, payload)`` is the
        outbox-drain tail the acknowledgment dispatch calls for queued
        messages.  The link-table arrays, the side slots, the block state,
        the heap, and the sequence counter are captured in cells: a protocol
        send then costs one Python frame with cell loads instead of
        attribute traffic (this is the hottest code in a synchronizer run
        after the dispatch loop itself — the body is deliberately duplicated
        across the closures rather than shared through a second frame).
        Only the loop-mutated scalars (``_now``, ``_active_seq``,
        ``_fused``) go through ``self``.

        Two closure families exist: the block family (delay model exposes
        ``block_stream``; delays are two flat-buffer loads per send) and
        the stream family (historical ``pair_stream``/``link_stream``/
        generic fallbacks, one closure call per message).  The choice is
        made once here, so the per-send body carries no "has blocks?"
        branch.
        """
        if self._blk_fill is not None:
            return self._make_block_senders()
        return self._make_stream_senders()

    def _make_block_senders(self):
        busy_a = self._busy
        outbox_a = self._outbox
        seq_a = self._seq
        injected_a = self._injected
        pending_a = self._pending
        slot_p_a = self._slot_payload
        slot_ack_a = self._slot_ack
        blk_fill_a = self._blk_fill
        blk_i_a = self._blk_i
        buf = self._blk_buf
        free_at_a = self._free_at
        reserved_a = self._reserved
        skeleton = self._skeleton
        dcode_a = skeleton.deliver_codes
        acode_a = skeleton.ack_codes
        fcode_a = skeleton.fat_codes
        span = BLOCK_SPAN
        mask = BLOCK_SPAN - 1  # span is a power of two (asserted below)
        pairs = BLOCK_PAIRS
        fill_checked = _fill_checked
        heap = self._heap
        counter = self._counter
        push = heappush
        pop = heappop
        rt = self

        def send_on(
            lid: LinkId, payload: Payload,
            priority: Priority = DEFAULT_PRIORITY,
        ) -> None:
            """Enqueue on a directed link by dense id (DESIGN.md §8)."""
            if busy_a[lid]:
                rs = reserved_a[lid]
                if rs is None:
                    ob = outbox_a[lid]
                    if ob is None:
                        ob = outbox_a[lid] = []
                    seq = seq_a[lid]
                    seq_a[lid] = seq + 1
                    push(ob, (priority, seq, payload))
                    return
                free_at = free_at_a[lid]
                now = rt._now
                if free_at > now or (free_at == now and rs > rt._active_seq):
                    # The fused ack has not logically fired yet: materialize
                    # the deferred drain event under its reserved
                    # (time, seq) identity — exactly where an eagerly-pushed
                    # ack would sit in the order — and queue the message
                    # behind it.  The ack is no longer fused (it fires as a
                    # real event), so the fused-ack accounting credit moves
                    # back to the ordinary counter.
                    reserved_a[lid] = None
                    pending_a[lid] += 1
                    rt._fused -= 1
                    push(heap, (free_at, rs, acode_a[lid]))
                    ob = outbox_a[lid]
                    if ob is None:
                        ob = outbox_a[lid] = []
                    seq = seq_a[lid]
                    seq_a[lid] = seq + 1
                    push(ob, (priority, seq, payload))
                    return
                # The fused ack lies in the logical past: the link is free
                # and the reserved event would have been a no-op; drop it.
                reserved_a[lid] = None
            elif outbox_a[lid]:
                # Only possible while the sender's ``on_delivered`` callback
                # runs (busy already cleared, outbox not yet drained): the
                # new message must still contend with the queued ones.
                ob = outbox_a[lid]
                seq = seq_a[lid]
                seq_a[lid] = seq + 1
                push(ob, (priority, seq, payload))
                payload = pop(ob)[2]
            # Inject, inlined (this is the per-send hot path; the frame
            # matters).  ``messages`` is not incremented here: it is
            # recovered at run end as the sum of the per-link injection
            # counters.  The (delay, ack) pair comes from the link's block
            # region, refilled at its boundary; the payload and pre-drawn
            # ack go to the side slots when this is the link's only
            # outstanding record, else to a fat record (which stales the
            # slot's pre-drawn ack — the historical redraw rule).
            busy_a[lid] = True
            seq = injected_a[lid] + 1
            injected_a[lid] = seq
            i = blk_i_a[lid]
            if not i & mask:
                # Block exhausted: cursors sit at a region boundary exactly
                # when all pairs of the previous cycle are consumed (regions
                # are power-of-two sized), so no per-link limit is loaded.
                i -= span
                fill_checked(blk_fill_a[lid], buf, i, seq, pairs)
            blk_i_a[lid] = i + 2
            p = pending_a[lid]
            pending_a[lid] = p + 1
            if p == 0:
                slot_p_a[lid] = payload
                slot_ack_a[lid] = buf[i + 1]
                push(heap, (rt._now + buf[i], next(counter), dcode_a[lid]))
                return
            slot_ack_a[lid] = None
            push(
                heap,
                (rt._now + buf[i], next(counter), fcode_a[lid], payload,
                 seq, buf[i + 1]),
            )

        def enqueue_from(
            links: Mapping[NodeId, LinkId], u: NodeId, v: NodeId,
            payload: Payload, priority: Priority = DEFAULT_PRIORITY,
        ) -> None:
            """Node-id send path: one dict probe, then the same body."""
            lid = links.get(v)
            if lid is None:
                # Raised at the send site with both endpoints named: an
                # isolated node or a non-neighbor destination must fail
                # loudly here, not as a bare KeyError deep in the link
                # table.
                raise UnknownLinkError(u, v)
            if busy_a[lid]:
                rs = reserved_a[lid]
                if rs is None:
                    ob = outbox_a[lid]
                    if ob is None:
                        ob = outbox_a[lid] = []
                    seq = seq_a[lid]
                    seq_a[lid] = seq + 1
                    push(ob, (priority, seq, payload))
                    return
                free_at = free_at_a[lid]
                now = rt._now
                if free_at > now or (free_at == now and rs > rt._active_seq):
                    # See send_on: materialize the reserved drain event.
                    reserved_a[lid] = None
                    pending_a[lid] += 1
                    rt._fused -= 1
                    push(heap, (free_at, rs, acode_a[lid]))
                    ob = outbox_a[lid]
                    if ob is None:
                        ob = outbox_a[lid] = []
                    seq = seq_a[lid]
                    seq_a[lid] = seq + 1
                    push(ob, (priority, seq, payload))
                    return
                reserved_a[lid] = None
            elif outbox_a[lid]:
                ob = outbox_a[lid]
                seq = seq_a[lid]
                seq_a[lid] = seq + 1
                push(ob, (priority, seq, payload))
                payload = pop(ob)[2]
            busy_a[lid] = True
            seq = injected_a[lid] + 1
            injected_a[lid] = seq
            i = blk_i_a[lid]
            if not i & mask:
                # Block exhausted: cursors sit at a region boundary exactly
                # when all pairs of the previous cycle are consumed (regions
                # are power-of-two sized), so no per-link limit is loaded.
                i -= span
                fill_checked(blk_fill_a[lid], buf, i, seq, pairs)
            blk_i_a[lid] = i + 2
            p = pending_a[lid]
            pending_a[lid] = p + 1
            if p == 0:
                slot_p_a[lid] = payload
                slot_ack_a[lid] = buf[i + 1]
                push(heap, (rt._now + buf[i], next(counter), dcode_a[lid]))
                return
            slot_ack_a[lid] = None
            push(
                heap,
                (rt._now + buf[i], next(counter), fcode_a[lid], payload,
                 seq, buf[i + 1]),
            )

        def inject(lid: LinkId, payload: Payload) -> None:
            """Outbox-drain tail: the link is known free (ack just fired)."""
            busy_a[lid] = True
            seq = injected_a[lid] + 1
            injected_a[lid] = seq
            i = blk_i_a[lid]
            if not i & mask:
                # Block exhausted: cursors sit at a region boundary exactly
                # when all pairs of the previous cycle are consumed (regions
                # are power-of-two sized), so no per-link limit is loaded.
                i -= span
                fill_checked(blk_fill_a[lid], buf, i, seq, pairs)
            blk_i_a[lid] = i + 2
            p = pending_a[lid]
            pending_a[lid] = p + 1
            if p == 0:
                slot_p_a[lid] = payload
                slot_ack_a[lid] = buf[i + 1]
                push(heap, (rt._now + buf[i], next(counter), dcode_a[lid]))
                return
            slot_ack_a[lid] = None
            push(
                heap,
                (rt._now + buf[i], next(counter), fcode_a[lid], payload,
                 seq, buf[i + 1]),
            )

        return send_on, enqueue_from, inject

    def _make_stream_senders(self):
        """The per-message-closure family (pair/draw/generic fallbacks)."""
        busy_a = self._busy
        outbox_a = self._outbox
        seq_a = self._seq
        injected_a = self._injected
        pending_a = self._pending
        slot_p_a = self._slot_payload
        slot_ack_a = self._slot_ack
        pair_a = self._pair
        draw_a = self._draw
        free_at_a = self._free_at
        reserved_a = self._reserved
        skeleton = self._skeleton
        dcode_a = skeleton.deliver_codes
        acode_a = skeleton.ack_codes
        fcode_a = skeleton.fat_codes
        heap = self._heap
        counter = self._counter
        push = heappush
        pop = heappop
        rt = self

        def send_on(
            lid: LinkId, payload: Payload,
            priority: Priority = DEFAULT_PRIORITY,
        ) -> None:
            """Enqueue on a directed link by dense id (DESIGN.md §8)."""
            if busy_a[lid]:
                rs = reserved_a[lid]
                if rs is None:
                    ob = outbox_a[lid]
                    if ob is None:
                        ob = outbox_a[lid] = []
                    seq = seq_a[lid]
                    seq_a[lid] = seq + 1
                    push(ob, (priority, seq, payload))
                    return
                free_at = free_at_a[lid]
                now = rt._now
                if free_at > now or (free_at == now and rs > rt._active_seq):
                    # Materialize the reserved drain event (see the block
                    # family's send_on for the full story).
                    reserved_a[lid] = None
                    pending_a[lid] += 1
                    rt._fused -= 1
                    push(heap, (free_at, rs, acode_a[lid]))
                    ob = outbox_a[lid]
                    if ob is None:
                        ob = outbox_a[lid] = []
                    seq = seq_a[lid]
                    seq_a[lid] = seq + 1
                    push(ob, (priority, seq, payload))
                    return
                reserved_a[lid] = None
            elif outbox_a[lid]:
                ob = outbox_a[lid]
                seq = seq_a[lid]
                seq_a[lid] = seq + 1
                push(ob, (priority, seq, payload))
                payload = pop(ob)[2]
            busy_a[lid] = True
            seq = injected_a[lid] + 1
            injected_a[lid] = seq
            pair = pair_a[lid]
            if pair is not None:
                delay, ack = pair(seq)
                if not (0.0 < delay <= TAU and 0.0 < ack <= TAU):
                    raise InvalidDelayError(
                        f"pair stream produced ({delay!r}, {ack!r}) outside"
                        f" (0, {TAU}]"
                    )
            else:
                draw = draw_a[lid]
                if draw is None:
                    rt._inject_generic(lid, payload, seq)
                    return
                delay = draw(seq)
                if not 0.0 < delay <= TAU:
                    raise InvalidDelayError(
                        f"link stream produced delay {delay!r} outside"
                        f" (0, {TAU}]"
                    )
                ack = None
            p = pending_a[lid]
            pending_a[lid] = p + 1
            if p == 0:
                slot_p_a[lid] = payload
                slot_ack_a[lid] = ack
                push(heap, (rt._now + delay, next(counter), dcode_a[lid]))
                return
            slot_ack_a[lid] = None
            push(
                heap,
                (rt._now + delay, next(counter), fcode_a[lid], payload,
                 seq, ack),
            )

        def enqueue_from(
            links: Mapping[NodeId, LinkId], u: NodeId, v: NodeId,
            payload: Payload, priority: Priority = DEFAULT_PRIORITY,
        ) -> None:
            """Node-id send path: one dict probe, then the same body."""
            lid = links.get(v)
            if lid is None:
                raise UnknownLinkError(u, v)
            if busy_a[lid]:
                rs = reserved_a[lid]
                if rs is None:
                    ob = outbox_a[lid]
                    if ob is None:
                        ob = outbox_a[lid] = []
                    seq = seq_a[lid]
                    seq_a[lid] = seq + 1
                    push(ob, (priority, seq, payload))
                    return
                free_at = free_at_a[lid]
                now = rt._now
                if free_at > now or (free_at == now and rs > rt._active_seq):
                    reserved_a[lid] = None
                    pending_a[lid] += 1
                    rt._fused -= 1
                    push(heap, (free_at, rs, acode_a[lid]))
                    ob = outbox_a[lid]
                    if ob is None:
                        ob = outbox_a[lid] = []
                    seq = seq_a[lid]
                    seq_a[lid] = seq + 1
                    push(ob, (priority, seq, payload))
                    return
                reserved_a[lid] = None
            elif outbox_a[lid]:
                ob = outbox_a[lid]
                seq = seq_a[lid]
                seq_a[lid] = seq + 1
                push(ob, (priority, seq, payload))
                payload = pop(ob)[2]
            busy_a[lid] = True
            seq = injected_a[lid] + 1
            injected_a[lid] = seq
            pair = pair_a[lid]
            if pair is not None:
                delay, ack = pair(seq)
                if not (0.0 < delay <= TAU and 0.0 < ack <= TAU):
                    raise InvalidDelayError(
                        f"pair stream produced ({delay!r}, {ack!r}) outside"
                        f" (0, {TAU}]"
                    )
            else:
                draw = draw_a[lid]
                if draw is None:
                    rt._inject_generic(lid, payload, seq)
                    return
                delay = draw(seq)
                if not 0.0 < delay <= TAU:
                    raise InvalidDelayError(
                        f"link stream produced delay {delay!r} outside"
                        f" (0, {TAU}]"
                    )
                ack = None
            p = pending_a[lid]
            pending_a[lid] = p + 1
            if p == 0:
                slot_p_a[lid] = payload
                slot_ack_a[lid] = ack
                push(heap, (rt._now + delay, next(counter), dcode_a[lid]))
                return
            slot_ack_a[lid] = None
            push(
                heap,
                (rt._now + delay, next(counter), fcode_a[lid], payload,
                 seq, ack),
            )

        def inject(lid: LinkId, payload: Payload) -> None:
            """Outbox-drain tail: the link is known free (ack just fired)."""
            busy_a[lid] = True
            seq = injected_a[lid] + 1
            injected_a[lid] = seq
            pair = pair_a[lid]
            if pair is not None:
                delay, ack = pair(seq)
                if not (0.0 < delay <= TAU and 0.0 < ack <= TAU):
                    raise InvalidDelayError(
                        f"pair stream produced ({delay!r}, {ack!r}) outside"
                        f" (0, {TAU}]"
                    )
            else:
                draw = draw_a[lid]
                if draw is None:
                    rt._inject_generic(lid, payload, seq)
                    return
                delay = draw(seq)
                if not 0.0 < delay <= TAU:
                    raise InvalidDelayError(
                        f"link stream produced delay {delay!r} outside"
                        f" (0, {TAU}]"
                    )
                ack = None
            p = pending_a[lid]
            pending_a[lid] = p + 1
            if p == 0:
                slot_p_a[lid] = payload
                slot_ack_a[lid] = ack
                push(heap, (rt._now + delay, next(counter), dcode_a[lid]))
                return
            slot_ack_a[lid] = None
            push(
                heap,
                (rt._now + delay, next(counter), fcode_a[lid], payload,
                 seq, ack),
            )

        return send_on, enqueue_from, inject

    def _inject_generic(self, lid: LinkId, payload: Payload, seq: int) -> None:
        """Draw from an arbitrary DelayModel callable, with bound checks."""
        now = self._now
        u = self._lu[lid]
        v = self._lv[lid]
        delay = self.delay_model(u, v, seq, now)
        # Membership-style test: NaN fails every comparison, so non-finite
        # draws land here too instead of corrupting heap order downstream.
        if not 0.0 < delay <= TAU:
            raise InvalidDelayError(
                f"delay model produced {delay!r} outside (0, {TAU}] on {u}->{v}"
            )
        skeleton = self._skeleton
        p = self._pending[lid]
        self._pending[lid] = p + 1
        if p == 0:
            self._slot_payload[lid] = payload
            self._slot_ack[lid] = None
            heappush(
                self._heap,
                (now + delay, next(self._counter), skeleton.deliver_codes[lid]),
            )
            return
        self._slot_ack[lid] = None
        heappush(
            self._heap,
            (now + delay, next(self._counter), skeleton.fat_codes[lid],
             payload, seq, None),
        )

    def _ack_delay(self, lid: LinkId) -> float:
        """Ack delay drawn at delivery time, as the reference engine does.

        Uses ``-injected`` (the link's latest injection number): if an
        ``on_delivered`` callback slipped an extra injection in before this
        delivery's acknowledgment was scheduled, the draw must see it —
        byte-for-byte reproducibility against the pre-rework engine depends
        on this detail (fat injections invalidate the slot's pre-drawn ack
        precisely to route those deliveries here).  Reverse streams are
        bound lazily, one per link that ever re-draws (the block and pair
        fast paths pre-draw virtually all acknowledgments, so most replays
        bind none).
        """
        ack_draw = self._ack_draw[lid]
        if ack_draw is None:
            factory = self._stream_factory
            if factory is not None:
                ack_draw = self._ack_draw[lid] = factory(
                    self._lv[lid], self._lu[lid]
                )
        if ack_draw is not None:
            ack_delay = ack_draw(-self._injected[lid])
        else:
            ack_delay = self.delay_model(
                self._lv[lid], self._lu[lid], -self._injected[lid], self._now
            )
        if not 0.0 < ack_delay <= TAU:
            raise InvalidDelayError(
                f"delay model produced ack delay {ack_delay!r} outside"
                f" (0, {TAU}] on {self._lv[lid]}->{self._lu[lid]}"
            )
        return ack_delay

    def _deliver_fat(self, record: Tuple, now: float) -> float:
        """Dispatch one fat delivery record (the double-inject race only).

        Returns the fused-ack time when the acknowledgment was fused, else
        0.0 (the caller folds it into its quiescence horizon).  Mirrors the
        packed-delivery branch of the run loop exactly, reading the payload
        / injection number / pre-drawn ack from the record instead of the
        side slots; rare enough that attribute traffic does not matter.
        """
        lid = record[2] - CODE_DELIVER_PAYLOAD
        payload = record[3]
        if self.trace is not None:
            self.trace(now, self._lu[lid], self._lv[lid], payload)
        ack = record[5]
        if ack is None or self._injected[lid] != record[4]:
            ack = self._ack_delay(lid)
        pending_a = self._pending
        p_cnt = pending_a[lid] - 1
        delivered = self._delivered[lid]
        fused_at = 0.0
        if delivered is not None and (
            self._ack_prefix[lid] is None
            or payload[0] == self._ack_prefix[lid]
        ):
            heappush(
                self._heap,
                (now + ack, next(self._counter),
                 self._skeleton.ack_payload_codes[lid], payload),
            )
        elif self._outbox[lid] or p_cnt or not self._busy[lid]:
            heappush(
                self._heap,
                (now + ack, next(self._counter),
                 self._skeleton.ack_codes[lid]),
            )
        else:
            # The caller (run loop) counts the fuse when it sees the
            # nonzero return — ``fused`` is a loop local there.
            pending_a[lid] = 0
            fused_at = now + ack
            self._free_at[lid] = fused_at
            self._reserved[lid] = next(self._counter)
        table = self._table[lid]
        if table is not None:
            table[payload[0]](self._lu[lid], payload)
        else:
            self._deliver[lid](self._lu[lid], payload)
        return fused_at

    # ------------------------------------------------------------------
    # fault mode (DESIGN.md §11)
    # ------------------------------------------------------------------
    def _reset_link(self, lid: LinkId) -> None:
        """Clear the in-flight slot and outbox of one directed link.

        The recovery hook behind :meth:`ProcessContext.reset_link`: a
        crashed receiver never acknowledges, so without this the Appendix B
        discipline would queue the live sender's messages forever.  Any
        record already in flight on the link stays scheduled — its fate is
        decided at fire time by the fault checks.
        """
        self._busy[lid] = False
        ob = self._outbox[lid]
        if ob:
            ob.clear()
        self._slot_ack[lid] = None

    def _schedule_detectors(self) -> None:
        """Schedule the perfect-failure-detector callbacks (DESIGN.md §11).

        Every live neighbor of a crashed node learns of the crash exactly
        ``detect_timeout`` after it happens.  This is the abstraction of a
        missing acknowledgment/Go-Ahead timeout: any message in flight
        toward (or from) a node that crashes at ``t`` resolves by
        ``t + 2*TAU``, so a timeout strictly greater than ``2*TAU`` never
        accuses a live node and never fires while pre-crash traffic from
        the corpse can still arrive.  Detectors are elided for observers
        that are themselves dead by the fire time and for processes that do
        not override ``on_neighbor_dead``.  Iteration order (crashed nodes
        ascending, neighbors sorted) is part of the determinism contract
        the reference engine mirrors.
        """
        crash_t = self._crash_t
        rejoin_t = self._rejoin_t
        base = Process.on_neighbor_dead
        processes = self.processes
        timeout = self.detect_timeout
        for c in self.graph.nodes:
            t_crash = crash_t[c]
            if t_crash == inf:
                continue
            t_fire = t_crash + timeout
            if rejoin_t[c] <= t_fire:
                # The corpse is back before the timeout would have gone
                # off: a flap faster than detect_timeout is
                # indistinguishable from slowness under the synchrony
                # bound, so no observer ever accuses it (DESIGN.md §15).
                continue
            for u in sorted(self.graph.neighbors(c)):
                if crash_t[u] <= t_fire < rejoin_t[u]:
                    continue  # observer dead at the fire time
                proc = processes[u]
                if type(proc).on_neighbor_dead is base:
                    continue
                # Fire-time process lookup: if the observer re-joined
                # between scheduling and firing, the *fresh* incarnation
                # gets the callback (same object as ``proc`` on any
                # schedule without rejoins).
                self.schedule_at(t_fire, partial(self._fire_dead, u, c))

    def _fire_dead(self, observer: NodeId, corpse: NodeId) -> None:
        """Deliver ``on_neighbor_dead`` to whoever holds ``observer`` *now*."""
        self.processes[observer].on_neighbor_dead(corpse)

    def _fire_alive(self, observer: NodeId, returned: NodeId) -> None:
        """Deliver ``on_neighbor_alive`` with the same fire-time lookup."""
        self.processes[observer].on_neighbor_alive(returned)

    def _rewire_node(self, v: NodeId) -> Process:
        """Rebuild node ``v`` with fresh protocol state and re-arm its links.

        The engine-agnostic half of a re-join (DESIGN.md §15): a fresh
        process from the original factory replaces the corpse, every
        incident directed link is re-wired to the new incarnation's
        handlers (incoming: ``on_message``/dispatch table; outgoing:
        ``on_delivered`` interest), and both directions are reset — the
        jam a crashed receiver left behind clears, queued traffic toward
        the corpse is discarded.  Timing-specific bookkeeping (stale-seq
        watermarks / bag removal, ``on_start``, alive detectors) stays
        with the caller.
        """
        proc = self._process_factory(ProcessContext(self, v))
        self.processes[v] = proc
        base_delivered = Process.on_delivered
        deliver = self._deliver
        table = self._table
        delivered = self._delivered
        ack_prefix = self._ack_prefix
        out = self._out
        overrides = type(proc).on_delivered is not base_delivered
        for w in self.graph.neighbors(v):
            lid_out = out[v][w]
            lid_in = out[w][v]
            deliver[lid_in] = proc.on_message
            table[lid_in] = proc.on_message_table
            if overrides:
                delivered[lid_out] = proc.on_delivered
                ack_prefix[lid_out] = type(proc).ACK_INTEREST_PREFIX
            else:
                delivered[lid_out] = None
                ack_prefix[lid_out] = None
            self._reset_link(lid_out)
            self._reset_link(lid_in)
        return proc

    def _rejoin_node(self, v: NodeId) -> None:
        """Timed-mode re-join callback: node ``v`` returns at ``self._now``.

        Runs as an ordinary heap callback scheduled at setup, so at equal
        timestamps it fires *before* any same-time transport record (its
        sequence number is lower).  Every record still scheduled on an
        incident link was injected before this moment and is therefore
        void: the stale watermark is bumped to a freshly consumed sequence
        number — strictly above every record currently in the heap — and
        the dispatch loop discards marked records at fire time.  Then the
        fresh incarnation starts (``on_start``) and recovery detectors
        (``on_neighbor_alive``) are armed ``detect_timeout`` out for live
        overriding neighbors, the same sound bound as crash detection: by
        then all pre-rejoin incident traffic has fired or been voided.
        """
        now = self._now
        mark = next(self._counter)
        stale = self._stale_seq
        out = self._out
        for w in self.graph.neighbors(v):
            stale[out[v][w]] = mark
            stale[out[w][v]] = mark
        proc = self._rewire_node(v)
        self.rejoined[v] = now
        # Blank state includes the output register: whatever the previous
        # incarnation answered died with it (``time_to_output`` keeps its
        # high-water mark — it is a scalar over the whole execution).
        self.outputs.pop(v, None)
        self.output_time.pop(v, None)
        proc.on_start()
        crash_t = self._crash_t
        rejoin_t = self._rejoin_t
        base_alive = Process.on_neighbor_alive
        t_fire = now + self.detect_timeout
        for u in sorted(self.graph.neighbors(v)):
            if crash_t[u] <= t_fire < rejoin_t[u]:
                continue  # observer dead at the fire time
            if type(self.processes[u]).on_neighbor_alive is base_alive:
                continue
            self.schedule_at(t_fire, partial(self._fire_alive, u, v))

    def _run_faulty(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> AsyncResult:
        """The fault-mode dispatch loop: every record passes the fault gauntlet.

        One unbatched, unfused variant (``run`` delegates here only when a
        non-empty :class:`~repro.net.faults.FaultSchedule` is active, so the
        fault-free fast loops are untouched).  Per record:

        * **delivery** (packed or fat) — receiver crashed: the message
          vanishes (``dropped``) and the sender's link jams (no ack ever;
          recovery uses :meth:`ProcessContext.reset_link`); edge down: the
          record is *deferred* to the interval's end as a fat record —
          link-layer retention, nothing is lost; dropped by the schedule
          (keyed to the link's latest injection number, matching the
          reference engine's delivery-time read): the payload is lost
          receiver-side but the link-layer acknowledgment still returns, so
          the sender's pipeline keeps moving; otherwise a normal delivery.
        * **acknowledgment** — edge down: deferred likewise; sender
          crashed: the link state is updated but the corpse takes no step
          (no ``on_delivered``, no outbox drain — its queued messages die
          with it); otherwise normal.

        Acks are never fused here: fusing's reservation bookkeeping assumes
        the ack always logically fires, which crashed senders violate.
        """
        processes = self.processes
        crash_t = self._crash_t
        rejoin_t = self._rejoin_t
        for v in self.graph.nodes:  # ``nodes`` is an ascending range
            if crash_t[v] > 0.0:
                self.schedule(0.0, processes[v].on_start)
        if self._blk_i is not None:
            self._blk_i[:] = self._skeleton.blk_lims
        self._schedule_detectors()
        for v in self.graph.nodes:
            t_rejoin = rejoin_t[v]
            if t_rejoin < inf:
                # Setup-scheduled, so the callback's sequence number is
                # below every transport record's: at equal timestamps the
                # rejoin fires first and same-time traffic is voided.
                self.schedule_at(t_rejoin, partial(self._rejoin_node, v))

        heap = self._heap
        pop = heappop
        push = heappush
        counter = self._counter
        trace = self.trace
        lu = self._lu
        lv = self._lv
        busy_a = self._busy
        outbox_a = self._outbox
        pending_a = self._pending
        slot_p_a = self._slot_payload
        slot_ack_a = self._slot_ack
        deliver_a = self._deliver
        table_a = self._table
        delivered_a = self._delivered
        prefix_a = self._ack_prefix
        injected_a = self._injected
        down_a = self._down_fn
        drop_a = self._drop_fn
        stale_a = self._stale_seq
        acode_a = self._skeleton.ack_codes
        apcode_a = self._skeleton.ack_payload_codes
        fcode_a = self._skeleton.fat_codes
        inject = self._inject_link
        budget = (1 << 62) if max_events is None else max_events
        budget0 = budget
        stop_reason = "quiescent"
        acks = self.acks
        dropped = self.dropped
        deadline = float("inf") if max_time is None else max_time
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                if heap[0][0] > deadline:
                    stop_reason = "max_time"
                    break
                if budget == 0:
                    stop_reason = "max_events"
                    break
                budget -= 1
                record = pop(heap)
                self._now = now = record[0]
                self._active_seq = record[1]
                code = record[2]
                if code >= CODE_DELIVER:
                    lid = code - CODE_DELIVER
                    payload = slot_p_a[lid]
                    inj = injected_a[lid]
                    ack = slot_ack_a[lid]
                elif code >= CODE_ACK:
                    lid = code - CODE_ACK
                    if record[1] < stale_a[lid]:
                        # Void: in flight when an incident endpoint
                        # re-joined (checked before down-deferral so a
                        # deferred void record is never re-sequenced past
                        # the watermark).  Only the pending count drains —
                        # the link state belongs to the new incarnation.
                        pending_a[lid] -= 1
                        continue
                    down = down_a[lid]
                    if down is not None:
                        end = down(now)
                        if end > 0.0:
                            push(heap, (end, next(counter), code))
                            continue
                    pending_a[lid] -= 1
                    busy_a[lid] = False
                    ob = outbox_a[lid]
                    sender = lu[lid]
                    if ob and (crash_t[sender] > now
                               or rejoin_t[sender] <= now):
                        inject(lid, heappop(ob)[2])
                    continue
                elif code >= CODE_ACK_PAYLOAD:
                    lid = code - CODE_ACK_PAYLOAD
                    if record[1] < stale_a[lid]:
                        pending_a[lid] -= 1
                        continue
                    down = down_a[lid]
                    if down is not None:
                        end = down(now)
                        if end > 0.0:
                            push(heap, (end, next(counter), code, record[3]))
                            continue
                    pending_a[lid] -= 1
                    busy_a[lid] = False
                    sender = lu[lid]
                    if crash_t[sender] <= now < rejoin_t[sender]:
                        # The sender is dead: no callback, no drain.
                        continue
                    delivered_a[lid](lv[lid], record[3])
                    ob = outbox_a[lid]
                    if ob:
                        inject(lid, heappop(ob)[2])
                    continue
                elif code >= CODE_DELIVER_PAYLOAD:
                    lid = code - CODE_DELIVER_PAYLOAD
                    payload = record[3]
                    inj = record[4]
                    ack = record[5]
                else:
                    record[3]()
                    continue
                # ---- delivery flow (packed or fat record) ----
                if record[1] < stale_a[lid]:
                    # Void: the record was in flight when an incident
                    # endpoint re-joined.  The message vanishes without an
                    # acknowledgment — but unlike the crash jam the link
                    # was already reset at the rejoin, so nothing stays
                    # stuck (DESIGN.md §15).
                    dropped += 1
                    pending_a[lid] -= 1
                    continue
                dst = lv[lid]
                if crash_t[dst] <= now < rejoin_t[dst]:
                    # Receiver crashed: the message vanishes and the link
                    # jams (no acknowledgment; fail-stop nodes never answer).
                    dropped += 1
                    pending_a[lid] -= 1
                    continue
                down = down_a[lid]
                if down is not None:
                    end = down(now)
                    if end > 0.0:
                        # Edge down: defer to the interval's end (half-open,
                        # so the re-fire makes progress).  Fat form keeps
                        # payload/injection/ack with the record regardless
                        # of what the side slots do meanwhile.
                        push(heap, (end, next(counter), fcode_a[lid],
                                    payload, inj, ack))
                        continue
                drop = drop_a[lid]
                if drop is not None and drop(injected_a[lid]):
                    # Receiver-side loss: no trace, no handler, but the
                    # link-layer acknowledgment still frees the sender.
                    dropped += 1
                    acks += 1
                    if ack is None or injected_a[lid] != inj:
                        ack = self._ack_delay(lid)
                    push(heap, (now + ack, next(counter), acode_a[lid]))
                    continue
                if trace is not None:
                    trace(now, lu[lid], dst, payload)
                acks += 1
                if ack is None or injected_a[lid] != inj:
                    ack = self._ack_delay(lid)
                delivered = delivered_a[lid]
                if delivered is not None and (
                    prefix_a[lid] is None or payload[0] == prefix_a[lid]
                ):
                    push(heap, (now + ack, next(counter), apcode_a[lid],
                                payload))
                else:
                    push(heap, (now + ack, next(counter), acode_a[lid]))
                table = table_a[lid]
                if table is not None:
                    table[payload[0]](lu[lid], payload)
                else:
                    deliver_a[lid](lu[lid], payload)
        finally:
            if gc_was_enabled:
                gc.enable()
            self._fired += budget0 - budget
            self.acks = acks
            self.dropped = dropped
            self.messages = sum(self._injected)
        return AsyncResult(
            time_to_output=self._time_to_output,
            time_to_quiescence=self._now,
            messages=self.messages,
            acks=self.acks if self.count_acks else 0,
            outputs=dict(self.outputs),
            output_time=dict(self.output_time),
            events_fired=self._fired,
            stop_reason=stop_reason,
            dropped=dropped,
        )

    # ------------------------------------------------------------------
    # controlled mode (repro.check; DESIGN.md §13)
    # ------------------------------------------------------------------
    def _run_controlled(
        self, max_events: Optional[int] = None
    ) -> AsyncResult:
        """The controller-driven dispatch loop (DESIGN.md §13).

        The heap is treated as an unordered *bag* of enabled events: heap
        order is never consulted (``heappush`` from the send paths is
        harmless on a bag), and at every step the installed
        :class:`ScheduleController` is shown every record plus the pending
        synthetic crash/detect actions and picks one.  Acknowledgments are
        never fused and same-time deliveries never batch, so every causal
        step is a controller decision.  Logical time is the running
        maximum of fired record timestamps — deterministic given the
        choice sequence, which is what makes serialized counterexample
        traces replay bit-exactly.

        Crash semantics mirror ``_run_faulty``'s fail-stop rules, keyed on
        the dynamic ``crashed`` set instead of precomputed crash times:
        deliveries to a corpse vanish and jam the link, a dead sender's
        acknowledgment still frees the link state but the corpse takes no
        step, and a crashed node's scheduled callbacks are elided.
        ``max_time`` has no meaning without the clock; only the
        ``max_events`` step budget is honored.
        """
        controller = self.controller
        processes = self.processes
        heap = self._heap
        counter = self._counter
        push = heappush
        # Attribution of engine-scheduled callbacks (on_start) to their
        # node: the reduction layer treats an attributed callback as a step
        # of that process, and a crashed node's callbacks must not fire.
        cb_node: Dict[int, NodeId] = {}
        for v in self.graph.nodes:  # ``nodes`` is an ascending range
            seq = next(counter)
            push(heap, (0.0, seq, EV_CALLBACK, processes[v].on_start))
            cb_node[seq] = v
        if self._blk_i is not None:
            self._blk_i[:] = self._skeleton.blk_lims

        crashable = tuple(controller.crashable)
        rejoinable = tuple(getattr(controller, "rejoinable", ()))
        crashed = self.crashed
        rejoined = self.rejoined
        base_detect = Process.on_neighbor_dead
        base_alive = Process.on_neighbor_alive
        #: Armed failure-detector steps: (observer, dead), arming order.
        detect_ready: List[Tuple[NodeId, NodeId]] = []
        #: Armed recovery-detector steps: (observer, returned), arming
        #: order.  Never withheld: a chosen rejoin voids every pre-rejoin
        #: incident record immediately, so there is nothing the §11 bound
        #: would still be waiting on.
        alive_ready: List[Tuple[NodeId, NodeId]] = []
        #: Per-corpse seqs of live-sender deliveries in flight at the
        #: crash; the corpse's detects are withheld until all have fired
        #: (the §11 synchrony bound: such messages resolve before the
        #: detection timeout).
        detect_blockers: Dict[NodeId, set] = {}

        trace = self.trace
        lu = self._lu
        lv = self._lv
        busy_a = self._busy
        outbox_a = self._outbox
        pending_a = self._pending
        slot_p_a = self._slot_payload
        slot_ack_a = self._slot_ack
        deliver_a = self._deliver
        table_a = self._table
        delivered_a = self._delivered
        prefix_a = self._ack_prefix
        injected_a = self._injected
        acode_a = self._skeleton.ack_codes
        apcode_a = self._skeleton.ack_payload_codes
        inject = self._inject_link
        budget = (1 << 62) if max_events is None else max_events
        budget0 = budget
        stop_reason = "quiescent"
        acks = self.acks
        dropped = self.dropped
        try:
            while True:
                events: List[ControlledEvent] = []
                for record in heap:
                    code = record[2]
                    if code >= CODE_DELIVER:
                        lid = code - CODE_DELIVER
                        events.append(ControlledEvent(
                            CTRL_DELIVER, record[1], lid, lu[lid], lv[lid],
                            None, record))
                    elif code >= CODE_ACK:
                        lid = code - CODE_ACK
                        events.append(ControlledEvent(
                            CTRL_ACK, record[1], lid, lu[lid], lv[lid],
                            None, record))
                    elif code >= CODE_ACK_PAYLOAD:
                        lid = code - CODE_ACK_PAYLOAD
                        events.append(ControlledEvent(
                            CTRL_ACK, record[1], lid, lu[lid], lv[lid],
                            None, record))
                    elif code >= CODE_DELIVER_PAYLOAD:
                        lid = code - CODE_DELIVER_PAYLOAD
                        events.append(ControlledEvent(
                            CTRL_DELIVER, record[1], lid, lu[lid], lv[lid],
                            None, record))
                    else:
                        events.append(ControlledEvent(
                            CTRL_CALLBACK, record[1], None, None, None,
                            cb_node.get(record[1]), record))
                events.sort(key=lambda e: e.seq)
                for v in crashable:
                    if v not in crashed and v not in rejoined:
                        # One crash per node: a re-joined node is not
                        # offered again, which bounds the schedule space
                        # (no infinite crash/rejoin flapping).
                        events.append(ControlledEvent(
                            CTRL_CRASH, None, None, None, None, v, None))
                for v in rejoinable:
                    if v in crashed:
                        events.append(ControlledEvent(
                            CTRL_REJOIN, None, None, None, None, v, None))
                for u, c in detect_ready:
                    if detect_blockers.get(c):
                        continue
                    # detect: src = the dead node, dst/node = the observer.
                    events.append(ControlledEvent(
                        CTRL_DETECT, None, None, c, u, u, None))
                for u, c in alive_ready:
                    # alive: src = the returned node, dst/node = observer.
                    events.append(ControlledEvent(
                        CTRL_ALIVE, None, None, c, u, u, None))
                if not events:
                    break
                if budget == 0:
                    stop_reason = "max_events"
                    break
                choice = controller.choose(events)
                if choice is None:
                    stop_reason = "controller"
                    break
                budget -= 1
                ev = events[choice]
                record = ev.record
                if record is None:
                    if ev.kind == CTRL_CRASH:
                        v = ev.node
                        crashed[v] = self._now
                        blockers = set()
                        for rec in heap:
                            rcode = rec[2]
                            if rcode >= CODE_DELIVER:
                                rlid = rcode - CODE_DELIVER
                            elif rcode >= CODE_ACK_PAYLOAD:
                                continue  # acks drain before any timeout
                            elif rcode >= CODE_DELIVER_PAYLOAD:
                                rlid = rcode - CODE_DELIVER_PAYLOAD
                            else:
                                continue  # callbacks are untimed
                            if lu[rlid] not in crashed:
                                blockers.add(rec[1])
                        if blockers:
                            detect_blockers[v] = blockers
                        # The corpse observes nothing from now on.
                        detect_ready[:] = [
                            pair for pair in detect_ready if pair[0] != v
                        ]
                        alive_ready[:] = [
                            pair for pair in alive_ready if pair[0] != v
                        ]
                        for u in sorted(self.graph.neighbors(v)):
                            if u in crashed:
                                continue
                            if type(processes[u]).on_neighbor_dead \
                                    is base_detect:
                                continue
                            detect_ready.append((u, v))
                    elif ev.kind == CTRL_REJOIN:
                        v = ev.node
                        del crashed[v]
                        rejoined[v] = self._now
                        # Un-fired detects observing v raced the rejoin and
                        # lost: the timeout saw the node answer again.  The
                        # controller covers the other order by firing the
                        # detect *before* choosing the rejoin — exactly the
                        # D1–D3 interleaving pair.
                        detect_ready[:] = [
                            pair for pair in detect_ready if pair[1] != v
                        ]
                        detect_blockers.pop(v, None)
                        # Void every in-flight incident record (and the
                        # corpse's stale attributed callbacks): the new
                        # incarnation shares no link-layer state with the
                        # old one.
                        out = self._out
                        incident = set()
                        for w in self.graph.neighbors(v):
                            incident.add(out[v][w])
                            incident.add(out[w][v])
                        voided = []
                        for rec in heap:
                            rcode = rec[2]
                            if rcode >= CODE_DELIVER:
                                rlid = rcode - CODE_DELIVER
                                is_delivery = True
                            elif rcode >= CODE_ACK:
                                rlid = rcode - CODE_ACK
                                is_delivery = False
                            elif rcode >= CODE_ACK_PAYLOAD:
                                rlid = rcode - CODE_ACK_PAYLOAD
                                is_delivery = False
                            elif rcode >= CODE_DELIVER_PAYLOAD:
                                rlid = rcode - CODE_DELIVER_PAYLOAD
                                is_delivery = True
                            else:
                                if cb_node.get(rec[1]) == v:
                                    voided.append((rec, None, False))
                                continue
                            if rlid in incident:
                                voided.append((rec, rlid, is_delivery))
                        for rec, rlid, is_delivery in voided:
                            heap.remove(rec)
                            if rlid is not None:
                                pending_a[rlid] -= 1
                                if is_delivery:
                                    dropped += 1
                            if detect_blockers:
                                for blk in detect_blockers.values():
                                    blk.discard(rec[1])
                        proc = self._rewire_node(v)
                        # Blank state includes the output register: the
                        # previous incarnation's answer died with it.
                        self.outputs.pop(v, None)
                        self.output_time.pop(v, None)
                        seq = next(counter)
                        push(heap, (self._now, seq, EV_CALLBACK,
                                    proc.on_start))
                        cb_node[seq] = v
                        for u in sorted(self.graph.neighbors(v)):
                            if u in crashed:
                                continue
                            if type(processes[u]).on_neighbor_alive \
                                    is base_alive:
                                continue
                            alive_ready.append((u, v))
                    elif ev.kind == CTRL_ALIVE:
                        alive_ready.remove((ev.dst, ev.src))
                        processes[ev.dst].on_neighbor_alive(ev.src)
                    else:  # CTRL_DETECT
                        detect_ready.remove((ev.dst, ev.src))
                        processes[ev.dst].on_neighbor_dead(ev.src)
                    continue
                # Record-backed step: pull it out of the bag and dispatch.
                heap.remove(record)
                if detect_blockers:
                    for blk in detect_blockers.values():
                        blk.discard(record[1])
                if record[0] > self._now:
                    self._now = record[0]
                now = self._now
                self._active_seq = record[1]
                code = record[2]
                if code >= CODE_DELIVER:
                    lid = code - CODE_DELIVER
                    payload = slot_p_a[lid]
                    inj = injected_a[lid]
                    ack = slot_ack_a[lid]
                elif code >= CODE_ACK:
                    lid = code - CODE_ACK
                    pending_a[lid] -= 1
                    busy_a[lid] = False
                    ob = outbox_a[lid]
                    if ob and lu[lid] not in crashed:
                        inject(lid, heappop(ob)[2])
                    continue
                elif code >= CODE_ACK_PAYLOAD:
                    lid = code - CODE_ACK_PAYLOAD
                    pending_a[lid] -= 1
                    busy_a[lid] = False
                    if lu[lid] in crashed:
                        # The sender is dead: no callback, no drain.
                        continue
                    delivered_a[lid](lv[lid], record[3])
                    ob = outbox_a[lid]
                    if ob:
                        inject(lid, heappop(ob)[2])
                    continue
                elif code >= CODE_DELIVER_PAYLOAD:
                    lid = code - CODE_DELIVER_PAYLOAD
                    payload = record[3]
                    inj = record[4]
                    ack = record[5]
                else:
                    node = cb_node.get(record[1])
                    if node is None or node not in crashed:
                        record[3]()
                    continue
                # ---- delivery flow (packed or fat record) ----
                dst = lv[lid]
                if dst in crashed:
                    # Receiver crashed: the message vanishes and the link
                    # jams (recovery uses ProcessContext.reset_link).
                    dropped += 1
                    pending_a[lid] -= 1
                    continue
                if trace is not None:
                    trace(now, lu[lid], dst, payload)
                acks += 1
                if ack is None or injected_a[lid] != inj:
                    ack = self._ack_delay(lid)
                delivered = delivered_a[lid]
                if delivered is not None and (
                    prefix_a[lid] is None or payload[0] == prefix_a[lid]
                ):
                    push(heap, (now + ack, next(counter), apcode_a[lid],
                                payload))
                else:
                    push(heap, (now + ack, next(counter), acode_a[lid]))
                table = table_a[lid]
                if table is not None:
                    table[payload[0]](lu[lid], payload)
                else:
                    deliver_a[lid](lu[lid], payload)
        finally:
            self._fired += budget0 - budget
            self.acks = acks
            self.dropped = dropped
            self.messages = sum(self._injected)
        return AsyncResult(
            time_to_output=self._time_to_output,
            time_to_quiescence=self._now,
            messages=self.messages,
            acks=self.acks if self.count_acks else 0,
            outputs=dict(self.outputs),
            output_time=dict(self.output_time),
            events_fired=self._fired,
            stop_reason=stop_reason,
            dropped=dropped,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> AsyncResult:
        if self.controller is not None:
            return self._run_controlled(max_events=max_events)
        if self._crash_t is not None:
            return self._run_faulty(max_time=max_time, max_events=max_events)
        processes = self.processes
        for v in self.graph.nodes:  # ``nodes`` is an ascending range
            self.schedule(0.0, processes[v].on_start)
        if self._blk_i is not None:
            # Force a refill on every link: a shared block buffer may have
            # been dirtied by another replay since construction (sweeps
            # hand one buffer across replays).  Refills re-derive the same
            # values from the model's pure streams, so this is free for a
            # fresh runtime and correct for a resumed one.
            self._blk_i[:] = self._skeleton.blk_lims

        # The dispatch loop, inlined: every construct here is deliberate —
        # record pops, per-kind branches, and the ack push run without any
        # per-event closure or method-resolution cost.  The link table is
        # hoisted into locals (flat list indexing beats attribute traffic on
        # a per-link object), and a record's kind is decided by comparing
        # its packed code against the kind bases (packed deliveries — the
        # hottest kind — in a single comparison, bare acknowledgments in
        # two).  ``fired`` and ``acks`` live in locals and are written back
        # in the ``finally`` so metrics survive early exits and protocol
        # exceptions alike.  Cyclic GC is paused for the duration (a
        # discrete-event loop allocates tuples at a rate that trips gen-0
        # collection constantly and creates no cycles of its own); the
        # ``try/finally`` guarantees the prior GC state is restored even
        # when a ``Process`` handler raises mid-run.
        heap = self._heap
        pop = heappop
        push = heappush
        counter = self._counter
        trace = self.trace
        lu = self._lu
        lv = self._lv
        busy_a = self._busy
        outbox_a = self._outbox
        pending_a = self._pending
        slot_p_a = self._slot_payload
        slot_ack_a = self._slot_ack
        deliver_a = self._deliver
        table_a = self._table
        delivered_a = self._delivered
        prefix_a = self._ack_prefix
        free_at_a = self._free_at
        reserved_a = self._reserved
        acode_a = self._skeleton.ack_codes
        apcode_a = self._skeleton.ack_payload_codes
        inject = self._inject_link
        # One counter meters both the event budget and ``events_fired``:
        # each dispatched record decrements ``budget`` exactly once (batch
        # included), so the fired count is recovered at exit as the number
        # of decrements — one bignum increment per event instead of two.
        # The sentinel for "unbounded" is a value no run can exhaust.
        budget = (1 << 62) if max_events is None else max_events
        budget0 = budget
        stop_reason = "quiescent"
        acks = self.acks
        # Fuses counted in a local (one add per fused message instead of an
        # attribute read-modify-write); the send paths' rare materializations
        # decrement ``self._fused`` directly, and the two are combined in
        # the ``finally``.
        fused = 0
        # Latest fused-ack time never materialized as an event; quiescence
        # still accounts for it (Appendix B pays for acknowledgments).
        horizon = 0.0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if trace is None and max_time is None:
                # Fast variant: no deadline or trace checks per event.
                while heap:
                    if budget == 0:
                        stop_reason = "max_events"
                        break
                    budget -= 1
                    record = pop(heap)
                    self._now = now = record[0]
                    self._active_seq = record[1]
                    code = record[2]
                    if code >= CODE_DELIVER:
                        lid = code - CODE_DELIVER
                        dst = lv[lid]
                        table = table_a[lid]
                        # Same-time batch: keep consuming heap-top records
                        # while they are packed deliveries at this instant
                        # for this destination (strict (time, seq) order —
                        # any other record ends the batch).
                        while True:
                            payload = slot_p_a[lid]
                            acks += 1
                            # Pre-drawn ack delay; a fat injection racing
                            # this delivery invalidated it, so None covers
                            # both draw-at-delivery models and the
                            # historical double-inject redraw.
                            ack = slot_ack_a[lid]
                            if ack is None:
                                # Redraw path: a generic draw-at-delivery
                                # model, or a fat injection raced this
                                # delivery (it invalidates the slot ack) —
                                # only then can other records be outstanding
                                # or the link be free, so only here does the
                                # materialize test need the full condition.
                                ack = self._ack_delay(lid)
                                mat = (outbox_a[lid] or pending_a[lid] - 1
                                       or not busy_a[lid])
                            else:
                                # Packed-delivery invariant: a live slot ack
                                # means nothing else happened on the link —
                                # exactly one outstanding record (this one),
                                # still busy, every send queued — so the
                                # outbox load alone decides.  The kind split
                                # is decided here so ack dispatch re-checks
                                # nothing.
                                mat = outbox_a[lid]
                            delivered = delivered_a[lid]
                            if delivered is not None and (
                                prefix_a[lid] is None
                                or payload[0] == prefix_a[lid]
                            ):
                                # The sender wants this payload's callback:
                                # the ack materializes regardless of mat.
                                push(heap, (now + ack, next(counter),
                                            apcode_a[lid], payload))
                            elif mat:
                                push(heap, (now + ack, next(counter),
                                            acode_a[lid]))
                            else:
                                # Fuse: no callback, nothing queued,
                                # nothing else outstanding — reserve the
                                # ack's identity instead of pushing an
                                # event.
                                pending_a[lid] = 0
                                fused += 1
                                t_ack = now + ack
                                free_at_a[lid] = t_ack
                                reserved_a[lid] = next(counter)
                                if t_ack > horizon:
                                    horizon = t_ack
                            if table is not None:
                                table[payload[0]](lu[lid], payload)
                            else:
                                deliver_a[lid](lu[lid], payload)
                            if not heap:
                                break
                            nxt = heap[0]
                            if nxt[0] != now or nxt[2] < CODE_DELIVER:
                                break
                            lid = nxt[2] - CODE_DELIVER
                            if lv[lid] != dst:
                                break
                            if budget == 0:
                                break
                            budget -= 1
                            record = pop(heap)
                            self._active_seq = record[1]
                    elif code >= CODE_ACK:
                        # Bare acknowledgment: free the link, drain the
                        # outbox — no callback or interest checks.
                        lid = code - CODE_ACK
                        pending_a[lid] -= 1
                        busy_a[lid] = False
                        ob = outbox_a[lid]
                        if ob:
                            inject(lid, heappop(ob)[2])
                    elif code >= CODE_ACK_PAYLOAD:
                        # The sender wants this payload's on_delivered
                        # (decided at delivery time — nothing re-checked).
                        lid = code - CODE_ACK_PAYLOAD
                        pending_a[lid] -= 1
                        busy_a[lid] = False
                        delivered_a[lid](lv[lid], record[3])
                        ob = outbox_a[lid]
                        if ob:
                            inject(lid, heappop(ob)[2])
                    elif code >= CODE_DELIVER_PAYLOAD:
                        acks += 1
                        h = self._deliver_fat(record, now)
                        if h:
                            fused += 1
                            if h > horizon:
                                horizon = h
                    else:
                        record[3]()
            else:
                deadline = float("inf") if max_time is None else max_time
                while heap:
                    if heap[0][0] > deadline:
                        stop_reason = "max_time"
                        break
                    if budget == 0:
                        stop_reason = "max_events"
                        break
                    budget -= 1
                    record = pop(heap)
                    self._now = now = record[0]
                    self._active_seq = record[1]
                    code = record[2]
                    if code >= CODE_DELIVER:
                        lid = code - CODE_DELIVER
                        dst = lv[lid]
                        table = table_a[lid]
                        while True:
                            payload = slot_p_a[lid]
                            if trace is not None:
                                trace(now, lu[lid], dst, payload)
                            acks += 1
                            ack = slot_ack_a[lid]
                            if ack is None:
                                # See the fast variant: redraw implies the
                                # full materialize test.
                                ack = self._ack_delay(lid)
                                mat = (outbox_a[lid] or pending_a[lid] - 1
                                       or not busy_a[lid])
                            else:
                                # Packed-delivery invariant: the outbox
                                # load alone decides.
                                mat = outbox_a[lid]
                            delivered = delivered_a[lid]
                            if delivered is not None and (
                                prefix_a[lid] is None
                                or payload[0] == prefix_a[lid]
                            ):
                                push(heap, (now + ack, next(counter),
                                            apcode_a[lid], payload))
                            elif mat:
                                push(heap, (now + ack, next(counter),
                                            acode_a[lid]))
                            else:
                                # Fuse: reserve the ack's identity
                                # instead of pushing an event (see the
                                # fast variant).
                                pending_a[lid] = 0
                                fused += 1
                                t_ack = now + ack
                                free_at_a[lid] = t_ack
                                reserved_a[lid] = next(counter)
                                if t_ack > horizon:
                                    horizon = t_ack
                            if table is not None:
                                table[payload[0]](lu[lid], payload)
                            else:
                                deliver_a[lid](lu[lid], payload)
                            # Same-time batch (records at ``now`` passed the
                            # deadline check with the batch head).
                            if not heap:
                                break
                            nxt = heap[0]
                            if nxt[0] != now or nxt[2] < CODE_DELIVER:
                                break
                            lid = nxt[2] - CODE_DELIVER
                            if lv[lid] != dst:
                                break
                            if budget == 0:
                                break
                            budget -= 1
                            record = pop(heap)
                            self._active_seq = record[1]
                    elif code >= CODE_ACK:
                        lid = code - CODE_ACK
                        pending_a[lid] -= 1
                        busy_a[lid] = False
                        ob = outbox_a[lid]
                        if ob:
                            inject(lid, heappop(ob)[2])
                    elif code >= CODE_ACK_PAYLOAD:
                        lid = code - CODE_ACK_PAYLOAD
                        pending_a[lid] -= 1
                        busy_a[lid] = False
                        delivered_a[lid](lv[lid], record[3])
                        ob = outbox_a[lid]
                        if ob:
                            inject(lid, heappop(ob)[2])
                    elif code >= CODE_DELIVER_PAYLOAD:
                        acks += 1
                        h = self._deliver_fat(record, now)
                        if h:
                            fused += 1
                            if h > horizon:
                                horizon = h
                    else:
                        record[3]()
        finally:
            if gc_was_enabled:
                gc.enable()
            self._fired += budget0 - budget
            self.acks = acks
            self._fused += fused
            self.messages = sum(self._injected)
        quiescence = self._now
        if max_time is None:
            if stop_reason == "quiescent" and horizon > quiescence:
                quiescence = horizon
        elif stop_reason != "max_events":
            # Fused acks never enter the heap, so the deadline check above
            # cannot see them.  Reconcile at exit as the reference engine
            # would have: reservations inside the deadline count as fired
            # (they advance quiescence); one past the deadline means the
            # run was in fact cut short by the horizon, not quiescent.  A
            # reservation past the deadline would never have fired as a raw
            # event either (the reference engine stops before it), so the
            # raw-accounting credit is withdrawn alongside.
            late = False
            for lid in range(len(reserved_a)):
                if reserved_a[lid] is not None:
                    t = free_at_a[lid]
                    if t > max_time:
                        late = True
                        self._fused -= 1
                    elif t > quiescence:
                        quiescence = t
            if stop_reason == "quiescent":
                if late:
                    stop_reason = "max_time"
                elif horizon > quiescence:
                    quiescence = horizon
        events = self._fired
        if self.count_fused_acks:
            # Raw accounting: every fused acknowledgment counts as the one
            # event the pre-fusing engine would have fired for it.  (Under a
            # ``max_events`` stop this is an over-count by however many of
            # the outstanding reservations the budget would have cut off —
            # the raw engine's budget is not reconstructible without replay.)
            events += self._fused
        return AsyncResult(
            time_to_output=self._time_to_output,
            time_to_quiescence=quiescence,
            messages=self.messages,
            acks=self.acks if self.count_acks else 0,
            outputs=dict(self.outputs),
            output_time=dict(self.output_time),
            events_fired=events,
            stop_reason=stop_reason,
        )


def run_asynchronous(
    graph: Graph,
    process_factory: Callable[[ProcessContext], Process],
    delay_model: DelayModel,
    max_time: Optional[float] = None,
    max_events: Optional[int] = 50_000_000,
    count_fused_acks: bool = False,
    faults: Optional[FaultSchedule] = None,
    detect_timeout: float = DETECT_TIMEOUT,
) -> AsyncResult:
    """Convenience wrapper: build the runtime and run to quiescence."""
    runtime = AsyncRuntime(
        graph, process_factory, delay_model, count_fused_acks=count_fused_acks,
        faults=faults, detect_timeout=detect_timeout,
    )
    return runtime.run(max_time=max_time, max_events=max_events)
