"""Asynchronous message-passing simulator (Sections 1.1, 2.2, Appendix B).

Model implemented here:

* Per-message delays are chosen by a :class:`~repro.net.delays.DelayModel`
  (the adversary), bounded by ``tau = 1``; reported times are therefore
  already normalized, matching the paper's ``T = T_real / tau`` definition.
* The acknowledgment discipline of Appendix B: each node may have at most one
  algorithm message in flight per directed link; the next message is injected
  only when the previous one's acknowledgment returns.  Acknowledgments ride
  outside the discipline (at most one each way), also with adversarial delay.
* Per-link outboxes are priority queues.  A message's ``priority`` tuple
  encodes its stage (Lemma 2.5: lower stages first) and its procedure's
  round-robin ticket (Corollary 2.3: fairness among same-stage procedures
  sharing an edge), so the scheduling lemmas of Section 2.2 are realized by
  the transport itself and every protocol above gets them for free.

Protocols are :class:`Process` subclasses; one instance runs per node and
reacts to deliveries via ``on_message``.

Performance architecture (DESIGN.md §6): the runtime *is* the event loop.  It
subclasses :class:`~repro.net.events.EventQueue` and pops typed records —
``(time, seq, EV_DELIVER, link, payload, inj_seq, ack_delay)`` and
``(time, seq, EV_ACK, link, payload)`` — in one inlined dispatch loop, so a
message costs one record push at injection and usually none at all for its
acknowledgment: when nobody waits on an ack (no ``on_delivered`` interest,
nothing queued or outstanding on the link), the ack's ``(time, seq)``
identity is merely *reserved* and the event is materialized only if a later
send actually has to wait on it.  When the delay model exposes
``pair_stream`` the message delay *and* its acknowledgment delay are drawn
together at injection (one closure call per message) and the ack delay rides
in the delivery record; the pre-drawn value is discarded — and re-drawn at
the link's latest injection number, exactly as the historical engine did
(see ``_ack_delay``) — in the rare case where an ``on_delivered`` callback
slipped an extra injection onto the link first.  Models without pair streams
keep the historical draw-at-delivery path, so time-dependent custom models
observe identical ``now`` values on both engines.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from .delays import DelayModel, TAU
from .events import EV_ACK, EV_DELIVER, EventQueue
from .graph import Graph, NodeId

Payload = Any
Priority = Tuple[Any, ...]

DEFAULT_PRIORITY: Priority = (0,)


class Process:
    """Base class for one node's asynchronous protocol instance."""

    def __init__(self, ctx: "ProcessContext") -> None:
        self.ctx = ctx

    def on_start(self) -> None:  # pragma: no cover - default no-op
        """Called once at time 0."""

    def on_message(self, sender: NodeId, payload: Payload) -> None:
        raise NotImplementedError

    #: Optional filter for ``on_delivered``: when a subclass overrides the
    #: hook but only cares about payloads whose first element equals this
    #: value (and ALL its payloads are non-empty tuples), setting the class
    #: attribute lets the transport skip the callback inline for everything
    #: else — one comparison instead of a Python call per acknowledgment.
    #: Any equality-comparable constant works; the synchronizer stack uses a
    #: small-int opcode.
    ACK_INTEREST_PREFIX: Optional[Any] = None

    def on_delivered(self, to: NodeId, payload: Payload) -> None:
        """Acknowledgment arrived: ``payload`` was delivered to ``to``.

        The asynchronous model already pays for these acknowledgments
        (Appendix B); protocols that need delivery confirmation — the general
        synchronizer's safety bookkeeping — override this hook.  Default:
        no-op (and the transport skips the call entirely for processes that
        do not override it).
        """


class ProcessContext:
    """Per-node handle into the runtime: identity, sending, and output.

    ``send`` is bound directly to the runtime's enqueue path (a C-level
    partial application of this node's id), so a protocol send costs one
    Python frame.
    """

    __slots__ = ("_runtime", "node_id", "neighbors", "send")

    def __init__(self, runtime: "AsyncRuntime", node_id: NodeId) -> None:
        self._runtime = runtime
        self.node_id = node_id
        self.neighbors = runtime.graph.neighbors(node_id)
        # send(to, payload, priority=DEFAULT_PRIORITY)
        self.send = partial(
            runtime._enqueue_from, runtime._out.get(node_id, {}), node_id
        )

    @property
    def now(self) -> float:
        return self._runtime.now

    def schedule_environment_event(self, delay: float, callback) -> None:
        """Schedule an adversary/environment-controlled local event.

        Protocols themselves must never use this (the asynchronous model has
        no clocks); it exists for tests and workload drivers that model the
        environment handing a node an input at an arbitrary time.
        """
        self._runtime.schedule(delay, callback)

    def set_output(self, value: Any) -> None:
        self._runtime._record_output(self.node_id, value)

    def edge_weight(self, to: NodeId) -> float:
        return self._runtime.graph.weight(self.node_id, to)


@dataclass
class AsyncResult:
    """Outcome of one asynchronous execution (times normalized by tau)."""

    time_to_output: float
    time_to_quiescence: float
    messages: int
    acks: int
    outputs: Dict[NodeId, Any]
    output_time: Dict[NodeId, float]
    #: Number of scheduler events dispatched.  By default fused
    #: acknowledgments (never materialized as events) count as zero; with
    #: ``AsyncRuntime(count_fused_acks=True)`` they are added back, restoring
    #: the paper's raw per-event accounting (one event per delivery and per
    #: acknowledgment).
    events_fired: int
    stop_reason: str

    @property
    def time_complexity(self) -> float:
        return self.time_to_output

    @property
    def message_complexity(self) -> int:
        return self.messages

    @property
    def messages_with_acks(self) -> int:
        return self.messages + self.acks


class _Link:
    """Directed link state: one in-flight slot plus a priority outbox.

    The link record also carries the endpoints and the receiver's bound
    ``on_message`` / the sender's overridden ``on_delivered`` (or ``None``),
    so the dispatch loop never performs a dict lookup per event.
    """

    __slots__ = ("u", "v", "busy", "outbox", "seq", "injected", "pending",
                 "deliver", "delivered", "ack_prefix", "draw", "ack_draw",
                 "pair", "free_at", "reserved_seq")

    def __init__(self, u: NodeId, v: NodeId) -> None:
        self.u = u
        self.v = v
        self.busy = False
        self.outbox: List[Tuple[Priority, int, Payload]] = []
        self.seq = 0
        self.injected = 0
        # Scheduled transport records (EV_DELIVER + EV_ACK) outstanding for
        # this link.  Normally alternates 1 -> 1 -> 0; an ``on_delivered``
        # callback sending on the link it is being notified about can race
        # the ack drain and put two messages in flight (a quirk the
        # reference engine has too).  Ack fusing is only allowed when this
        # count hits zero — i.e. the delivery being handled is the only
        # outstanding record.
        self.pending = 0
        self.deliver: Callable[[NodeId, Payload], None] = None  # bound in __init__
        self.delivered: Optional[Callable[[NodeId, Payload], None]] = None
        self.ack_prefix: Optional[Any] = None
        # Per-link delay streams (message delay / ack delay), bound when the
        # delay model supports them; None selects the generic call path.
        self.draw: Optional[Callable[[int], float]] = None
        self.ack_draw: Optional[Callable[[int], float]] = None
        # Fused message+ack draw (``pair_stream``); preferred when bound.
        self.pair: Optional[Callable[[int], Tuple[float, float]]] = None
        # Fused-acknowledgment state: when a delivery needs no callback and
        # the outbox is empty, no ack event is pushed at all — the ack's
        # (time, seq) identity is *reserved* here and only materialized if a
        # later send actually has to wait on it (see ``run``).
        self.free_at = 0.0
        self.reserved_seq: Optional[int] = None


class AsyncRuntime(EventQueue):
    """Discrete-event executor for one protocol over one graph."""

    __slots__ = (
        "graph", "delay_model", "count_acks", "count_fused_acks", "trace",
        "_links", "_out", "messages", "acks", "_fused", "outputs",
        "output_time", "_time_to_output", "processes", "_active_seq",
    )

    def __init__(
        self,
        graph: Graph,
        process_factory: Callable[[ProcessContext], Process],
        delay_model: DelayModel,
        count_acks: bool = True,
        trace: Optional[Callable[[float, NodeId, NodeId, Payload], None]] = None,
        count_fused_acks: bool = False,
        pairs: Optional[Tuple[Tuple[NodeId, NodeId], ...]] = None,
    ) -> None:
        """``count_fused_acks=True`` restores the paper's raw event
        accounting in ``events_fired`` (fused acknowledgments count as one
        event each, as they did before ack fusing); it does not change the
        schedule, the metrics semantics of ``acks``, or the ``max_events``
        budget, which only meters events that actually enter the heap.
        ``pairs`` is an optional precomputed tuple of directed links (both
        orientations of every edge) — sweep harnesses pass it so the
        skeleton is derived from the graph only once per sweep.
        """
        super().__init__()
        self.graph = graph
        self.delay_model = delay_model
        self.count_acks = count_acks
        self.count_fused_acks = count_fused_acks
        self.trace = trace
        self._links: Dict[Tuple[NodeId, NodeId], _Link] = {}
        self._out: Dict[NodeId, Dict[NodeId, _Link]] = {}
        stream_factory = getattr(delay_model, "link_stream", None)
        pair_factory = getattr(delay_model, "pair_stream", None)
        if pairs is None:
            pairs = tuple(
                pair for u, v in graph.edges for pair in ((u, v), (v, u))
            )
        for a, b in pairs:
            link = _Link(a, b)
            if pair_factory is not None:
                # The fused draw covers injection; ``ack_draw`` stays bound
                # as the fallback for re-drawn acknowledgments (see run), and
                # ``draw`` is never consulted.
                link.pair = pair_factory(a, b)
                if stream_factory is not None:
                    link.ack_draw = stream_factory(b, a)
            elif stream_factory is not None:
                link.draw = stream_factory(a, b)
                link.ack_draw = stream_factory(b, a)
            self._links[(a, b)] = link
            self._out.setdefault(a, {})[b] = link
        self.messages = 0
        self.acks = 0
        self._fused = 0
        self._active_seq = -1  # seq of the event being dispatched
        self.outputs: Dict[NodeId, Any] = {}
        self.output_time: Dict[NodeId, float] = {}
        self._time_to_output = 0.0
        self.processes: Dict[NodeId, Process] = {}
        for v in graph.nodes:
            self.processes[v] = process_factory(ProcessContext(self, v))
        base_delivered = Process.on_delivered
        for link in self._links.values():
            dst = self.processes[link.v]
            src = self.processes[link.u]
            link.deliver = dst.on_message
            if type(src).on_delivered is not base_delivered:
                link.delivered = src.on_delivered
                link.ack_prefix = type(src).ACK_INTEREST_PREFIX

    # ------------------------------------------------------------------
    def _record_output(self, node: NodeId, value: Any) -> None:
        self.outputs[node] = value
        now = self._now
        self.output_time[node] = now
        if now > self._time_to_output:
            self._time_to_output = now

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _enqueue(
        self, u: NodeId, v: NodeId, payload: Payload,
        priority: Priority = DEFAULT_PRIORITY,
    ) -> None:
        self._enqueue_from(self._out.get(u, {}), u, v, payload, priority)

    def _enqueue_from(
        self, links: Dict[NodeId, _Link], u: NodeId, v: NodeId, payload: Payload,
        priority: Priority = DEFAULT_PRIORITY,
    ) -> None:
        link = links.get(v)
        if link is None:
            raise ValueError(f"no link {u} -> {v}")
        if link.busy:
            rs = link.reserved_seq
            if rs is None:
                heappush(link.outbox, (priority, link.seq, payload))
                link.seq += 1
                return
            free_at = link.free_at
            now = self._now
            if free_at > now or (free_at == now and rs > self._active_seq):
                # The fused ack has not logically fired yet: materialize the
                # deferred drain event under its reserved (time, seq)
                # identity — exactly where an eagerly-pushed ack would sit in
                # the order — and queue the message behind it.  The ack is no
                # longer fused (it fires as a real event), so the fused-ack
                # accounting credit moves back to the ordinary counter.
                link.reserved_seq = None
                link.pending += 1
                self._fused -= 1
                heappush(self._heap, (free_at, rs, EV_ACK, link, None))
                heappush(link.outbox, (priority, link.seq, payload))
                link.seq += 1
                return
            # The fused ack lies in the logical past: the link is free and
            # the reserved event would have been a no-op; drop it.
            link.reserved_seq = None
        elif link.outbox:
            # Only possible while the sender's ``on_delivered`` callback
            # runs (busy already cleared, outbox not yet drained): the new
            # message must still contend with the queued ones.
            heappush(link.outbox, (priority, link.seq, payload))
            link.seq += 1
            payload = heappop(link.outbox)[2]
        # _inject inlined (this is the per-send hot path; the frame matters).
        # ``messages`` is not incremented here: it is recovered at run end as
        # the sum of per-link injection counters.  A delivery record carries
        # its injection number and (on the pair path) the pre-drawn ack
        # delay; models without pair streams ship ``None`` and the ack is
        # drawn at delivery as before.
        link.busy = True
        seq = link.injected + 1
        link.injected = seq
        link.pending += 1
        pair = link.pair
        if pair is not None:
            delay, ack = pair(seq)
            heappush(
                self._heap,
                (self._now + delay, next(self._counter), EV_DELIVER, link,
                 payload, seq, ack),
            )
            return
        draw = link.draw
        if draw is None:
            self._inject_generic(link, payload, seq)
            return
        heappush(
            self._heap,
            (self._now + draw(seq), next(self._counter), EV_DELIVER, link,
             payload, seq, None),
        )

    def _inject(self, link: _Link, payload: Payload) -> None:
        link.busy = True
        seq = link.injected + 1
        link.injected = seq
        link.pending += 1
        pair = link.pair
        if pair is not None:
            # Pair path: one closure call draws the message delay and the
            # ack delay the reverse stream would produce at -seq.
            delay, ack = pair(seq)
            heappush(
                self._heap,
                (self._now + delay, next(self._counter), EV_DELIVER, link,
                 payload, seq, ack),
            )
            return
        draw = link.draw
        if draw is None:
            self._inject_generic(link, payload, seq)
            return
        # Stream path: the delay model guarantees the (0, TAU] bound.
        heappush(
            self._heap,
            (self._now + draw(seq), next(self._counter), EV_DELIVER, link,
             payload, seq, None),
        )

    def _inject_generic(self, link: _Link, payload: Payload, seq: int) -> None:
        """Draw from an arbitrary DelayModel callable, with bound checks."""
        now = self._now
        u = link.u
        v = link.v
        delay_model = self.delay_model
        delay = delay_model(u, v, seq, now)
        if not 0.0 < delay <= TAU:
            raise ValueError(
                f"delay model produced {delay} outside (0, {TAU}] on {u}->{v}"
            )
        heappush(
            self._heap,
            (now + delay, next(self._counter), EV_DELIVER, link, payload,
             seq, None),
        )

    def _ack_delay(self, link: _Link) -> float:
        """Ack delay drawn at delivery time, as the reference engine does.

        Uses ``-link.injected`` (the link's latest injection number): if an
        ``on_delivered`` callback slipped an extra injection in before this
        delivery's acknowledgment was scheduled, the draw must see it —
        byte-for-byte reproducibility against the pre-rework engine depends
        on this detail.
        """
        ack_draw = link.ack_draw
        if ack_draw is not None:
            return ack_draw(-link.injected)
        ack_delay = self.delay_model(link.v, link.u, -link.injected, self._now)
        if not 0.0 < ack_delay <= TAU:
            raise ValueError("delay model produced an invalid ack delay")
        return ack_delay

    # ------------------------------------------------------------------
    def run(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> AsyncResult:
        processes = self.processes
        for v in self.graph.nodes:  # ``nodes`` is an ascending range
            self.schedule(0.0, processes[v].on_start)

        # The dispatch loop, inlined: every construct here is deliberate —
        # record pops, per-kind branches, and the ack push run without any
        # per-event closure or method-resolution cost.  ``fired`` and ``acks``
        # live in locals and are written back in the ``finally`` so metrics
        # survive early exits and protocol exceptions alike.  Cyclic GC is
        # paused for the duration (a discrete-event loop allocates tuples at
        # a rate that trips gen-0 collection constantly and creates no cycles
        # of its own); the prior GC state is restored on the way out.
        heap = self._heap
        pop = heappop
        push = heappush
        counter = self._counter
        trace = self.trace
        budget = -1 if max_events is None else max_events  # -1: unbounded
        stop_reason = "quiescent"
        fired = self._fired
        acks = self.acks
        # Latest fused-ack time never materialized as an event; quiescence
        # still accounts for it (Appendix B pays for acknowledgments).
        horizon = 0.0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if trace is None and max_time is None:
                # Fast variant: no deadline or trace checks per event.
                while heap:
                    if budget == 0:
                        stop_reason = "max_events"
                        break
                    budget -= 1
                    record = pop(heap)
                    self._now = now = record[0]
                    self._active_seq = record[1]
                    fired += 1
                    kind = record[2]
                    if kind == EV_DELIVER:
                        link = record[3]
                        payload = record[4]
                        acks += 1
                        # Pre-drawn ack delay (pair path); discarded when an
                        # on_delivered callback slipped an extra injection in
                        # before this delivery — the historical engine draws
                        # at the link's *latest* injection number.
                        ack = record[6]
                        if ack is None or link.injected != record[5]:
                            ack = self._ack_delay(link)
                        p_cnt = link.pending - 1
                        delivered = link.delivered
                        if link.outbox or p_cnt or not link.busy or (
                            delivered is not None
                            and (link.ack_prefix is None
                                 or payload[0] == link.ack_prefix)
                        ):
                            link.pending = p_cnt + 1
                            push(heap, (now + ack,
                                        next(counter), EV_ACK, link, payload))
                        else:
                            # Fuse: no callback, nothing queued, nothing else
                            # outstanding — reserve the ack's identity
                            # instead of pushing an event.
                            link.pending = 0
                            self._fused += 1
                            t_ack = now + ack
                            link.free_at = t_ack
                            link.reserved_seq = next(counter)
                            if t_ack > horizon:
                                horizon = t_ack
                        link.deliver(link.u, payload)
                    elif kind == EV_ACK:
                        link = record[3]
                        link.pending -= 1
                        link.busy = False
                        delivered = link.delivered
                        if delivered is not None:
                            payload = record[4]
                            if payload is not None:
                                prefix = link.ack_prefix
                                if prefix is None or payload[0] == prefix:
                                    delivered(link.v, payload)
                        if link.outbox:
                            self._inject(link, heappop(link.outbox)[2])
                    else:
                        record[3]()
            else:
                deadline = float("inf") if max_time is None else max_time
                while heap:
                    if heap[0][0] > deadline:
                        stop_reason = "max_time"
                        break
                    if budget == 0:
                        stop_reason = "max_events"
                        break
                    budget -= 1
                    record = pop(heap)
                    self._now = now = record[0]
                    self._active_seq = record[1]
                    fired += 1
                    kind = record[2]
                    if kind == EV_DELIVER:
                        link = record[3]
                        payload = record[4]
                        if trace is not None:
                            trace(now, link.u, link.v, payload)
                        acks += 1
                        ack = record[6]
                        if ack is None or link.injected != record[5]:
                            ack = self._ack_delay(link)
                        p_cnt = link.pending - 1
                        delivered = link.delivered
                        if link.outbox or p_cnt or not link.busy or (
                            delivered is not None
                            and (link.ack_prefix is None
                                 or payload[0] == link.ack_prefix)
                        ):
                            link.pending = p_cnt + 1
                            push(heap, (now + ack,
                                        next(counter), EV_ACK, link, payload))
                        else:
                            # Fuse: no callback, nothing queued, nothing else
                            # outstanding — reserve the ack's identity
                            # instead of pushing an event.
                            link.pending = 0
                            self._fused += 1
                            t_ack = now + ack
                            link.free_at = t_ack
                            link.reserved_seq = next(counter)
                            if t_ack > horizon:
                                horizon = t_ack
                        link.deliver(link.u, payload)
                    elif kind == EV_ACK:
                        link = record[3]
                        link.pending -= 1
                        link.busy = False
                        delivered = link.delivered
                        if delivered is not None:
                            payload = record[4]
                            if payload is not None:
                                prefix = link.ack_prefix
                                if prefix is None or payload[0] == prefix:
                                    delivered(link.v, payload)
                        if link.outbox:
                            self._inject(link, heappop(link.outbox)[2])
                    else:
                        record[3]()
        finally:
            if gc_was_enabled:
                gc.enable()
            self._fired = fired
            self.acks = acks
            self.messages = sum(
                link.injected for link in self._links.values()
            )
        quiescence = self._now
        if max_time is None:
            if stop_reason == "quiescent" and horizon > quiescence:
                quiescence = horizon
        elif stop_reason != "max_events":
            # Fused acks never enter the heap, so the deadline check above
            # cannot see them.  Reconcile at exit as the reference engine
            # would have: reservations inside the deadline count as fired
            # (they advance quiescence); one past the deadline means the
            # run was in fact cut short by the horizon, not quiescent.  A
            # reservation past the deadline would never have fired as a raw
            # event either (the reference engine stops before it), so the
            # raw-accounting credit is withdrawn alongside.
            late = False
            for link in self._links.values():
                if link.reserved_seq is not None:
                    t = link.free_at
                    if t > max_time:
                        late = True
                        self._fused -= 1
                    elif t > quiescence:
                        quiescence = t
            if stop_reason == "quiescent":
                if late:
                    stop_reason = "max_time"
                elif horizon > quiescence:
                    quiescence = horizon
        events = self._fired
        if self.count_fused_acks:
            # Raw accounting: every fused acknowledgment counts as the one
            # event the pre-fusing engine would have fired for it.  (Under a
            # ``max_events`` stop this is an over-count by however many of
            # the outstanding reservations the budget would have cut off —
            # the raw engine's budget is not reconstructible without replay.)
            events += self._fused
        return AsyncResult(
            time_to_output=self._time_to_output,
            time_to_quiescence=quiescence,
            messages=self.messages,
            acks=self.acks if self.count_acks else 0,
            outputs=dict(self.outputs),
            output_time=dict(self.output_time),
            events_fired=events,
            stop_reason=stop_reason,
        )


def run_asynchronous(
    graph: Graph,
    process_factory: Callable[[ProcessContext], Process],
    delay_model: DelayModel,
    max_time: Optional[float] = None,
    max_events: Optional[int] = 50_000_000,
    count_fused_acks: bool = False,
) -> AsyncResult:
    """Convenience wrapper: build the runtime and run to quiescence."""
    runtime = AsyncRuntime(
        graph, process_factory, delay_model, count_fused_acks=count_fused_acks
    )
    return runtime.run(max_time=max_time, max_events=max_events)
