"""Network substrate: graphs, topologies, and the two message-passing simulators."""

from .graph import Edge, Graph, NodeId, UnknownLinkError, edge_key, validate_tree
from .events import EventQueue
from .delays import (
    TAU,
    AlternatingDelay,
    BimodalDelay,
    ConstantDelay,
    DelayModel,
    DirectionalSkewDelay,
    InvalidDelayError,
    SlowEdgesDelay,
    UniformDelay,
    standard_adversaries,
)
from .faults import DETECT_TIMEOUT, FaultSchedule, FaultScheduleError
from .program import (
    ArrivedBatch,
    NodeInfo,
    NodeProgram,
    ProgramSpec,
    PulseApi,
    all_nodes_initiate,
    fixed_initiators,
    sampled_initiators,
    single_initiator,
)
from .sync_runtime import SyncResult, SyncRuntime, run_synchronous
from .async_runtime import (
    AsyncResult,
    AsyncRuntime,
    LinkSkeleton,
    Process,
    ProcessContext,
    link_skeleton_for,
    run_asynchronous,
)
from .shard import (
    CellSummary,
    default_jobs,
    digest_outputs,
    run_serial,
    run_sharded,
)
from .sweep import AsyncSweep, sweep_asynchronous
from . import topology

__all__ = [
    "Edge",
    "Graph",
    "NodeId",
    "edge_key",
    "validate_tree",
    "EventQueue",
    "TAU",
    "DelayModel",
    "ConstantDelay",
    "UniformDelay",
    "BimodalDelay",
    "SlowEdgesDelay",
    "AlternatingDelay",
    "DirectionalSkewDelay",
    "InvalidDelayError",
    "standard_adversaries",
    "DETECT_TIMEOUT",
    "FaultSchedule",
    "FaultScheduleError",
    "ArrivedBatch",
    "NodeInfo",
    "NodeProgram",
    "ProgramSpec",
    "PulseApi",
    "all_nodes_initiate",
    "fixed_initiators",
    "sampled_initiators",
    "single_initiator",
    "SyncResult",
    "SyncRuntime",
    "run_synchronous",
    "AsyncResult",
    "AsyncRuntime",
    "LinkSkeleton",
    "Process",
    "ProcessContext",
    "UnknownLinkError",
    "link_skeleton_for",
    "run_asynchronous",
    "AsyncSweep",
    "sweep_asynchronous",
    "CellSummary",
    "default_jobs",
    "digest_outputs",
    "run_serial",
    "run_sharded",
    "topology",
]
