"""Adversarial message-delay models.

The asynchronous model (Section 1.1) lets an adversary pick every message's
delay in ``(0, tau]`` with ``tau = 1`` after normalization.  Correctness of
the synchronizer must hold for *every* delay assignment, so the test-suite
runs each protocol under the whole family below.  Every model is a
deterministic function of (edge, direction, per-link sequence number, seed) —
rerunning a simulation reproduces it exactly.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Dict, Iterable, Optional, Protocol, Tuple

from .graph import Edge, NodeId, edge_key

TAU = 1.0
_MIN_DELAY = 1e-6


def _unit_hash(*parts: object) -> float:
    """Deterministic pseudo-random float in (0, 1] from the hashed parts."""
    digest = hashlib.blake2b(repr(parts).encode(), digest_size=8).digest()
    value = struct.unpack(">Q", digest)[0]
    return (value + 1) / 2.0**64


class DelayModel(Protocol):
    """Callable assigning a delay in ``(0, TAU]`` to one message injection."""

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        """Delay for the ``seq``-th message injected on the link u -> v."""


class ConstantDelay:
    """Every message takes exactly ``value`` time units (default: the bound)."""

    def __init__(self, value: float = TAU) -> None:
        if not 0 < value <= TAU:
            raise ValueError(f"delay must be in (0, {TAU}], got {value}")
        self.value = value

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantDelay({self.value})"


class UniformDelay:
    """Hash-based i.i.d.-looking delays uniform in ``[low, high]``."""

    def __init__(self, seed: int, low: float = _MIN_DELAY, high: float = TAU) -> None:
        if not 0 < low <= high <= TAU:
            raise ValueError("need 0 < low <= high <= TAU")
        self.seed = seed
        self.low = low
        self.high = high

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        unit = _unit_hash("uniform", self.seed, u, v, seq)
        return self.low + (self.high - self.low) * unit

    def __repr__(self) -> str:
        return f"UniformDelay(seed={self.seed}, low={self.low}, high={self.high})"


class BimodalDelay:
    """Most messages are fast; a hashed fraction hit the full bound.

    This is the classic adversary against naive asynchronous BFS: fast
    detours beat slow direct edges, so any protocol that trusts arrival
    order computes wrong distances.
    """

    def __init__(self, seed: int, slow_fraction: float = 0.2, fast: float = 0.05) -> None:
        if not 0 <= slow_fraction <= 1:
            raise ValueError("slow_fraction must be in [0, 1]")
        self.seed = seed
        self.slow_fraction = slow_fraction
        self.fast = fast

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        if _unit_hash("bimodal-pick", self.seed, u, v, seq) <= self.slow_fraction:
            return TAU
        return self.fast * _unit_hash("bimodal-fast", self.seed, u, v, seq)

    def __repr__(self) -> str:
        return f"BimodalDelay(seed={self.seed}, slow_fraction={self.slow_fraction})"


class SlowEdgesDelay:
    """A chosen edge set is maximally slow; everything else is fast.

    With ``edges=None`` a hashed half of the edges is slow — an adversary
    that consistently starves entire regions of the graph.
    """

    def __init__(
        self,
        seed: int,
        edges: Optional[Iterable[Edge]] = None,
        fast: float = 0.01,
    ) -> None:
        self.seed = seed
        self.fast = fast
        self._edges: Optional[frozenset] = (
            frozenset(edge_key(*e) for e in edges) if edges is not None else None
        )

    def _is_slow(self, u: NodeId, v: NodeId) -> bool:
        key = edge_key(u, v)
        if self._edges is not None:
            return key in self._edges
        return _unit_hash("slow-edge", self.seed, key) < 0.5

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        if self._is_slow(u, v):
            return TAU
        return max(_MIN_DELAY, self.fast * _unit_hash("slow-fast", self.seed, u, v, seq))

    def __repr__(self) -> str:
        return f"SlowEdgesDelay(seed={self.seed})"


class AlternatingDelay:
    """Delay flips between near-zero and the bound per message on each link.

    Maximizes reordering pressure *between* links while keeping each link
    FIFO (the model delivers per-link messages in injection order anyway,
    matching the acknowledgment discipline of Appendix B).
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        phase = _unit_hash("alt-phase", self.seed, u, v) < 0.5
        fast_turn = (seq % 2 == 0) == phase
        return 0.01 if fast_turn else TAU

    def __repr__(self) -> str:
        return f"AlternatingDelay(seed={self.seed})"


class DirectionalSkewDelay:
    """One direction of every link is fast, the other slow.

    Stresses the convergecast-vs-broadcast asymmetry inside cluster trees:
    e.g. registration waves move quickly toward roots but Go-Aheads crawl
    back down (or vice versa).
    """

    def __init__(self, seed: int, slow_up: bool = True) -> None:
        self.seed = seed
        self.slow_up = slow_up

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        toward_higher_id = v > u
        slow = toward_higher_id == self.slow_up
        return TAU if slow else 0.02

    def __repr__(self) -> str:
        return f"DirectionalSkewDelay(seed={self.seed}, slow_up={self.slow_up})"


def standard_adversaries(seed: int = 0) -> Tuple[DelayModel, ...]:
    """The delay models every correctness test sweeps over."""
    return (
        ConstantDelay(),
        ConstantDelay(0.25),
        UniformDelay(seed),
        BimodalDelay(seed),
        SlowEdgesDelay(seed),
        AlternatingDelay(seed),
        DirectionalSkewDelay(seed, slow_up=True),
        DirectionalSkewDelay(seed, slow_up=False),
    )
