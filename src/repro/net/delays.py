"""Adversarial message-delay models.

The asynchronous model (Section 1.1) lets an adversary pick every message's
delay in ``(0, tau]`` with ``tau = 1`` after normalization.  Correctness of
the synchronizer must hold for *every* delay assignment, so the test-suite
runs each protocol under the whole family below.  Every model is a
deterministic function of (edge, direction, per-link sequence number, seed) —
rerunning a simulation reproduces it exactly.

Performance architecture (DESIGN.md §6): the hashed models draw their
pseudo-randomness from a cached *per-link base* — one value per directed
link, derived once from (model label, seed, u, v) by 64-bit mixing — so a
draw costs a dict probe plus a little arithmetic instead of the ``repr`` +
``blake2b`` digest per call that earlier revisions paid.  Two per-seq
schemes are used deliberately:

* :class:`UniformDelay` (the benchmark workhorse) uses a float Weyl
  sequence — five float operations per draw.  Its draws are equidistributed
  over the range but *temporally structured* (consecutive seqs differ by
  the golden-ratio conjugate mod 1); for magnitude jitter that structure is
  harmless and the speed matters.
* The structural adversaries (:class:`BimodalDelay`, :class:`SlowEdgesDelay`)
  keep an integer murmur-style finalizer (:func:`_unit`) so their slow/fast
  *patterns* stay i.i.d.-like — bursty slow-slow runs remain as likely as a
  fair coin, which is exactly what those adversaries exist to produce.

A literal per-link ``random.Random`` *stream* would not do for either:
delays must be a pure function of the sequence number (acknowledgment draws
use negative sequence numbers interleaved with the reverse link's positive
ones, and deterministic replay re-queries arbitrary (link, seq) pairs),
which a stateful stream cannot provide.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Protocol, Tuple

from .graph import Edge, NodeId, edge_key

TAU = 1.0
_MIN_DELAY = 1e-6


class InvalidDelayError(ValueError):
    """A delay model (or fault schedule) produced an unusable delay.

    Raised at draw/schedule time when a delay is non-positive, non-finite
    (NaN or infinity), or outside the model contract's ``(0, TAU]`` range.
    Named so engines can fail loudly instead of silently corrupting the
    event heap's (time, seq) order — a NaN time in a heapq heap poisons
    every later comparison.
    """

_MASK64 = (1 << 64) - 1
_MASK32 = 0xFFFFFFFF
#: Per-draw mixing runs in 32-bit arithmetic on purpose: CPython represents
#: ints in 30-bit digits, so 64-bit multiplies allocate multi-digit bigints
#: on every operation while 32-bit state stays in the 1–2 digit fast path —
#: measured ~4x cheaper per draw.  32 bits of jitter per delay is far more
#: than the simulation needs; link bases are still derived with 64-bit
#: mixing (once per link).
_K1 = 2654435761  # Knuth's 32-bit multiplicative constant (odd)
_C1 = 0x45D9F3B  # lowbias32-style mixing multiplier
_INV_2_32 = 2.0 ** -32
#: Per-seq draws on the transport hot path use a Weyl sequence instead:
#: ``frac(link_base + seq * phi)`` with phi the golden-ratio conjugate is a
#: low-discrepancy, deterministic function of (link, seq) computed in five
#: float operations — no bigint traffic at all.  Each directed link gets its
#: own well-mixed starting phase, so delays are equidistributed over the
#: range per link and uncorrelated across links.
_WEYL = 0.6180339887498949


def _mix64(x: int) -> int:
    """Murmur3/splitmix-style 64-bit finalizer (bijective, well-mixed)."""
    x &= _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    return x ^ (x >> 33)


def _model_seed(label: str, seed: int) -> int:
    """Stable 64-bit stream id for one (model, seed); hashed once per model."""
    digest = hashlib.blake2b(f"{label}:{seed}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _link_base(model_seed: int, u: NodeId, v: NodeId) -> int:
    """Per-directed-link 32-bit base; ``(u << 32) ^ v`` is injective."""
    return _mix64(model_seed ^ ((u << 32) ^ v)) & _MASK32


def _unit(base: int, seq: int) -> float:
    """Deterministic pseudo-random float in (0, 1] for one (link base, seq)."""
    x = (base ^ (seq * _K1)) & _MASK32
    x = (((x >> 16) ^ x) * _C1) & _MASK32
    x = (((x >> 16) ^ x) * _C1) & _MASK32
    return (((x >> 16) ^ x) + 1) * _INV_2_32


class DelayModel(Protocol):
    """Callable assigning a delay in ``(0, TAU]`` to one message injection."""

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        """Delay for the ``seq``-th message injected on the link u -> v."""


# Models may additionally expose ``link_stream(u, v) -> Callable[[int], float]``
# returning a single-argument draw function with the per-link base already
# bound.  The transport caches one stream per directed link and calls it per
# injection, skipping the (u, v) dict probe and the ``now`` plumbing — only
# valid for models whose delays do not depend on ``now``, which the stream
# contract asserts.  Stream results MUST lie in (0, TAU]; the transport
# trusts them without re-validating.
#
# Models may further expose ``pair_stream(u, v) -> Callable[[int], (float,
# float)]`` drawing the message delay *and* its acknowledgment delay in one
# call: ``pair(seq)`` must equal ``(link_stream(u, v)(seq),
# link_stream(v, u)(-seq))`` bit-for-bit (the transport draws acknowledgments
# as the reverse link's stream at the negated injection number).  One closure
# call per message replaces two, and both draws share the closure's captured
# bases.  The transport still keeps ``link_stream`` bound as a fallback for
# the rare delivery whose link acquired an extra in-flight injection (see
# ``AsyncRuntime``): such acks must be re-drawn at the link's *latest*
# injection number to stay byte-identical with the reference engine.
#
# Finally, models may expose ``block_stream(u, v) -> fill`` where
#
#     fill(buf, base, start, n) -> None
#
# writes the (message delay, ack delay) pairs for injection numbers
# ``start, start+1, ..., start+n-1`` into the flat float buffer ``buf`` at
# ``buf[base + 2*k]`` / ``buf[base + 2*k + 1]`` — exactly the values
# ``pair_stream(u, v)(start + k)`` would return, bit-for-bit (pinned by
# ``tests/test_delays.py`` over 10k triples including block boundaries).
# ``buf`` is any index-assignable float sequence — the transport passes a
# plain list (see ``make_block_buffer``; an ``array('d')`` was measured
# and rejected there), but fills must stick to indexed stores rather than
# list-slice assignment so array-like buffers keep working too.  The
# transport refills one
# block of :data:`BLOCK_PAIRS` pairs per call and then serves
# :data:`BLOCK_PAIRS` consecutive injections from two indexed loads each,
# eliminating the per-message closure call (and its result tuple) from the
# send hot path; per-link injection numbers are strictly sequential, so
# blocks are always drawn in order and never re-queried.  A block is
# filled eagerly — a link that sends fewer than BLOCK_PAIRS messages
# wastes the tail draws — which is why the block is small.

#: Pairs per block fill.  Small on purpose: a block is drawn eagerly, so a
#: link that sends m messages wastes ``(-m) % BLOCK_PAIRS`` tail draws, and
#: every resident block adds float objects to the engine's working set —
#: measured at n=256-1024, the cache pressure of big blocks costs more than
#: the amortization saves (DESIGN.md §9).  8 keeps the wasted tail and the
#: footprint (16 floats per active link) negligible while still cutting the
#: per-message model call to one-eighth.
BLOCK_PAIRS = 8


class ConstantDelay:
    """Every message takes exactly ``value`` time units (default: the bound)."""

    def __init__(self, value: float = TAU) -> None:
        if not 0 < value <= TAU:
            raise ValueError(f"delay must be in (0, {TAU}], got {value}")
        self.value = value

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        return self.value

    def link_stream(self, u: NodeId, v: NodeId):
        value = self.value
        return lambda seq: value

    def pair_stream(self, u: NodeId, v: NodeId):
        pair = (self.value, self.value)
        return lambda seq: pair

    def block_stream(self, u: NodeId, v: NodeId):
        value = self.value

        def fill(buf, base: int, start: int, n: int) -> None:
            for i in range(base, base + 2 * n):
                buf[i] = value

        return fill

    def __repr__(self) -> str:
        return f"ConstantDelay({self.value})"


class UniformDelay:
    """Per-link Weyl-sequence delays equidistributed over ``[low, high)``.

    Magnitudes are uniform over the range but temporally low-discrepancy
    (see module docstring); use :class:`BimodalDelay` / :class:`SlowEdgesDelay`
    when the *pattern* of slow messages is what the experiment stresses.
    """

    __slots__ = ("seed", "low", "high", "_span", "_seed64", "_links", "_streams",
                 "_pairs", "_blocks")

    def __init__(self, seed: int, low: float = _MIN_DELAY, high: float = TAU) -> None:
        if not 0 < low <= high <= TAU:
            raise ValueError("need 0 < low <= high <= TAU")
        self.seed = seed
        self.low = low
        self.high = high
        self._span = high - low
        self._seed64 = _model_seed("uniform", seed)
        self._links: Dict[Tuple[NodeId, NodeId], float] = {}
        self._streams: Dict[Tuple[NodeId, NodeId], object] = {}
        self._pairs: Dict[Tuple[NodeId, NodeId], object] = {}
        self._blocks: Dict[Tuple[NodeId, NodeId], object] = {}

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        links = self._links
        base = links.get((u, v))
        if base is None:
            base = links[(u, v)] = _link_base(self._seed64, u, v) * _INV_2_32
        # Identical expression to the stream below — the two paths must
        # produce bit-equal floats (the equivalence tests rely on it).
        return self.low + self._span * ((base + seq * _WEYL) % 1.0)

    def link_stream(self, u: NodeId, v: NodeId):
        stream = self._streams.get((u, v))
        if stream is not None:
            return stream
        base = _link_base(self._seed64, u, v) * _INV_2_32
        low = self.low
        span = self._span

        def draw(seq: int) -> float:
            return low + span * ((base + seq * _WEYL) % 1.0)

        self._streams[(u, v)] = draw
        return draw

    def pair_stream(self, u: NodeId, v: NodeId):
        stream = self._pairs.get((u, v))
        if stream is not None:
            return stream
        fwd = _link_base(self._seed64, u, v) * _INV_2_32
        rev = _link_base(self._seed64, v, u) * _INV_2_32
        low = self.low
        span = self._span

        def pair(seq: int) -> Tuple[float, float]:
            # Both expressions are verbatim copies of the single-stream draw
            # (ack at the negated seq) so the two APIs are bit-equal.
            return (
                low + span * ((fwd + seq * _WEYL) % 1.0),
                low + span * ((rev + (-seq) * _WEYL) % 1.0),
            )

        self._pairs[(u, v)] = pair
        return pair

    def block_stream(self, u: NodeId, v: NodeId):
        fill = self._blocks.get((u, v))
        if fill is not None:
            return fill
        fwd = _link_base(self._seed64, u, v) * _INV_2_32
        rev = _link_base(self._seed64, v, u) * _INV_2_32
        low = self.low
        span = self._span

        def fill(buf, base: int, start: int, n: int) -> None:
            # Same expressions as pair_stream's draw, seq by seq (the ack at
            # the negated seq: ``rev - k*phi`` equals ``rev + (-k)*phi``
            # bit-for-bit under IEEE negation), so the three APIs agree.
            i = base
            for k in range(start, start + n):
                buf[i] = low + span * ((fwd + k * _WEYL) % 1.0)
                buf[i + 1] = low + span * ((rev - k * _WEYL) % 1.0)
                i += 2

        self._blocks[(u, v)] = fill
        return fill

    def __reduce__(self):
        # The stream/pair/block closures memoized on the instance are pure
        # functions of (seed, link) and don't pickle; a shipped model
        # rebuilds from its constructor state and re-derives bit-equal
        # streams on demand (shard workers rely on this — DESIGN.md §14).
        return (UniformDelay, (self.seed, self.low, self.high))

    def __repr__(self) -> str:
        return f"UniformDelay(seed={self.seed}, low={self.low}, high={self.high})"


class BimodalDelay:
    """Most messages are fast; a hashed fraction hit the full bound.

    This is the classic adversary against naive asynchronous BFS: fast
    detours beat slow direct edges, so any protocol that trusts arrival
    order computes wrong distances.
    """

    __slots__ = ("seed", "slow_fraction", "fast", "_pick64", "_fast64", "_links")

    def __init__(self, seed: int, slow_fraction: float = 0.2, fast: float = 0.05) -> None:
        if not 0 <= slow_fraction <= 1:
            raise ValueError("slow_fraction must be in [0, 1]")
        self.seed = seed
        self.slow_fraction = slow_fraction
        self.fast = fast
        self._pick64 = _model_seed("bimodal-pick", seed)
        self._fast64 = _model_seed("bimodal-fast", seed)
        self._links: Dict[Tuple[NodeId, NodeId], Tuple[int, int]] = {}

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        bases = self._links.get((u, v))
        if bases is None:
            bases = self._links[(u, v)] = (
                _link_base(self._pick64, u, v),
                _link_base(self._fast64, u, v),
            )
        if _unit(bases[0], seq) <= self.slow_fraction:
            return TAU
        d = self.fast * _unit(bases[1], seq)
        return d if d > _MIN_DELAY else _MIN_DELAY

    def link_stream(self, u: NodeId, v: NodeId):
        pick_base = _link_base(self._pick64, u, v)
        fast_base = _link_base(self._fast64, u, v)
        slow_fraction = self.slow_fraction
        fast = self.fast

        def draw(seq: int) -> float:
            # Integer hashing on purpose: the slow/fast pattern must stay
            # i.i.d.-like (see module docstring).
            if _unit(pick_base, seq) <= slow_fraction:
                return TAU
            d = fast * _unit(fast_base, seq)
            return d if d > _MIN_DELAY else _MIN_DELAY

        return draw

    def pair_stream(self, u: NodeId, v: NodeId):
        pick_f = _link_base(self._pick64, u, v)
        fast_f = _link_base(self._fast64, u, v)
        pick_r = _link_base(self._pick64, v, u)
        fast_r = _link_base(self._fast64, v, u)
        slow_fraction = self.slow_fraction
        fast = self.fast

        def pair(seq: int) -> Tuple[float, float]:
            # _unit inlined (identical arithmetic, bit-equal results): the
            # pair draw makes up to four unit draws per message, and the
            # function-call overhead dominated the Bimodal sweep replay.
            x = (pick_f ^ (seq * _K1)) & _MASK32
            x = (((x >> 16) ^ x) * _C1) & _MASK32
            x = (((x >> 16) ^ x) * _C1) & _MASK32
            if (((x >> 16) ^ x) + 1) * _INV_2_32 <= slow_fraction:
                d = TAU
            else:
                x = (fast_f ^ (seq * _K1)) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                d = fast * ((((x >> 16) ^ x) + 1) * _INV_2_32)
                if d <= _MIN_DELAY:
                    d = _MIN_DELAY
            rs = -seq
            x = (pick_r ^ (rs * _K1)) & _MASK32
            x = (((x >> 16) ^ x) * _C1) & _MASK32
            x = (((x >> 16) ^ x) * _C1) & _MASK32
            if (((x >> 16) ^ x) + 1) * _INV_2_32 <= slow_fraction:
                a = TAU
            else:
                x = (fast_r ^ (rs * _K1)) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                a = fast * ((((x >> 16) ^ x) + 1) * _INV_2_32)
                if a <= _MIN_DELAY:
                    a = _MIN_DELAY
            return d, a

        return pair

    def block_stream(self, u: NodeId, v: NodeId):
        pick_f = _link_base(self._pick64, u, v)
        fast_f = _link_base(self._fast64, u, v)
        pick_r = _link_base(self._pick64, v, u)
        fast_r = _link_base(self._fast64, v, u)
        slow_fraction = self.slow_fraction
        fast = self.fast

        def fill(buf, base: int, start: int, n: int) -> None:
            # _unit inlined, identical arithmetic to pair_stream (bit-equal).
            i = base
            for k in range(start, start + n):
                x = (pick_f ^ (k * _K1)) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                if (((x >> 16) ^ x) + 1) * _INV_2_32 <= slow_fraction:
                    d = TAU
                else:
                    x = (fast_f ^ (k * _K1)) & _MASK32
                    x = (((x >> 16) ^ x) * _C1) & _MASK32
                    x = (((x >> 16) ^ x) * _C1) & _MASK32
                    d = fast * ((((x >> 16) ^ x) + 1) * _INV_2_32)
                    if d <= _MIN_DELAY:
                        d = _MIN_DELAY
                rs = -k
                x = (pick_r ^ (rs * _K1)) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                if (((x >> 16) ^ x) + 1) * _INV_2_32 <= slow_fraction:
                    a = TAU
                else:
                    x = (fast_r ^ (rs * _K1)) & _MASK32
                    x = (((x >> 16) ^ x) * _C1) & _MASK32
                    x = (((x >> 16) ^ x) * _C1) & _MASK32
                    a = fast * ((((x >> 16) ^ x) + 1) * _INV_2_32)
                    if a <= _MIN_DELAY:
                        a = _MIN_DELAY
                buf[i] = d
                buf[i + 1] = a
                i += 2

        return fill

    def __repr__(self) -> str:
        return f"BimodalDelay(seed={self.seed}, slow_fraction={self.slow_fraction})"


class SlowEdgesDelay:
    """A chosen edge set is maximally slow; everything else is fast.

    With ``edges=None`` a hashed half of the edges is slow — an adversary
    that consistently starves entire regions of the graph.
    """

    __slots__ = ("seed", "fast", "_edges", "_pick64", "_fast64", "_links")

    def __init__(
        self,
        seed: int,
        edges: Optional[Iterable[Edge]] = None,
        fast: float = 0.01,
    ) -> None:
        self.seed = seed
        self.fast = fast
        self._edges: Optional[frozenset] = (
            frozenset(edge_key(*e) for e in edges) if edges is not None else None
        )
        self._pick64 = _model_seed("slow-edge", seed)
        self._fast64 = _model_seed("slow-fast", seed)
        # Per directed link: (is_slow, fast-draw base).
        self._links: Dict[Tuple[NodeId, NodeId], Tuple[bool, int]] = {}

    def _is_slow(self, u: NodeId, v: NodeId) -> bool:
        # Symmetric by construction: both the explicit edge set and the
        # hashed pick are keyed on the *canonical* (sorted) edge, so a link's
        # acknowledgment always shares its message's speed class.  The
        # property test in tests/test_delays.py pins this invariant — the
        # pair_stream fast path and the fused-ack horizon both rely on it.
        key = edge_key(u, v)
        if self._edges is not None:
            return key in self._edges
        return _unit(_link_base(self._pick64, key[0], key[1]), 0) < 0.5

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        entry = self._links.get((u, v))
        if entry is None:
            entry = self._links[(u, v)] = (
                self._is_slow(u, v),
                _link_base(self._fast64, u, v),
            )
        if entry[0]:
            return TAU
        d = self.fast * _unit(entry[1], seq)
        return d if d > _MIN_DELAY else _MIN_DELAY

    def link_stream(self, u: NodeId, v: NodeId):
        if self._is_slow(u, v):
            return lambda seq: TAU
        fast_base = _link_base(self._fast64, u, v)
        fast = self.fast

        def draw(seq: int) -> float:
            d = fast * _unit(fast_base, seq)
            return d if d > _MIN_DELAY else _MIN_DELAY

        return draw

    def pair_stream(self, u: NodeId, v: NodeId):
        if self._is_slow(u, v):
            # The slow class is symmetric (see _is_slow), so the ack
            # direction is maximally slow too.
            pair = (TAU, TAU)
            return lambda seq: pair
        fast_f = _link_base(self._fast64, u, v)
        fast_r = _link_base(self._fast64, v, u)
        fast = self.fast

        def pair(seq: int) -> Tuple[float, float]:
            # _unit inlined (identical arithmetic, bit-equal results).
            x = (fast_f ^ (seq * _K1)) & _MASK32
            x = (((x >> 16) ^ x) * _C1) & _MASK32
            x = (((x >> 16) ^ x) * _C1) & _MASK32
            d = fast * ((((x >> 16) ^ x) + 1) * _INV_2_32)
            if d <= _MIN_DELAY:
                d = _MIN_DELAY
            rs = -seq
            x = (fast_r ^ (rs * _K1)) & _MASK32
            x = (((x >> 16) ^ x) * _C1) & _MASK32
            x = (((x >> 16) ^ x) * _C1) & _MASK32
            a = fast * ((((x >> 16) ^ x) + 1) * _INV_2_32)
            if a <= _MIN_DELAY:
                a = _MIN_DELAY
            return d, a

        return pair

    def block_stream(self, u: NodeId, v: NodeId):
        if self._is_slow(u, v):
            # The slow class is symmetric (see _is_slow): message and ack
            # directions are both maximally slow.
            def fill_slow(buf, base: int, start: int, n: int) -> None:
                for i in range(base, base + 2 * n):
                    buf[i] = TAU

            return fill_slow
        fast_f = _link_base(self._fast64, u, v)
        fast_r = _link_base(self._fast64, v, u)
        fast = self.fast

        def fill(buf, base: int, start: int, n: int) -> None:
            # _unit inlined, identical arithmetic to pair_stream (bit-equal).
            i = base
            for k in range(start, start + n):
                x = (fast_f ^ (k * _K1)) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                d = fast * ((((x >> 16) ^ x) + 1) * _INV_2_32)
                if d <= _MIN_DELAY:
                    d = _MIN_DELAY
                rs = -k
                x = (fast_r ^ (rs * _K1)) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                x = (((x >> 16) ^ x) * _C1) & _MASK32
                a = fast * ((((x >> 16) ^ x) + 1) * _INV_2_32)
                if a <= _MIN_DELAY:
                    a = _MIN_DELAY
                buf[i] = d
                buf[i + 1] = a
                i += 2

        return fill

    def __repr__(self) -> str:
        return f"SlowEdgesDelay(seed={self.seed})"


class AlternatingDelay:
    """Delay flips between near-zero and the bound per message on each link.

    Maximizes reordering pressure *between* links while keeping each link
    FIFO (the model delivers per-link messages in injection order anyway,
    matching the acknowledgment discipline of Appendix B).
    """

    __slots__ = ("seed", "_seed64", "_links")

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._seed64 = _model_seed("alt-phase", seed)
        self._links: Dict[Tuple[NodeId, NodeId], bool] = {}

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        phase = self._links.get((u, v))
        if phase is None:
            phase = self._links[(u, v)] = (
                _unit(_link_base(self._seed64, u, v), 0) < 0.5
            )
        fast_turn = (seq % 2 == 0) == phase
        return 0.01 if fast_turn else TAU

    def link_stream(self, u: NodeId, v: NodeId):
        phase = _unit(_link_base(self._seed64, u, v), 0) < 0.5
        return lambda seq: 0.01 if (seq % 2 == 0) == phase else TAU

    def pair_stream(self, u: NodeId, v: NodeId):
        phase_f = _unit(_link_base(self._seed64, u, v), 0) < 0.5
        phase_r = _unit(_link_base(self._seed64, v, u), 0) < 0.5

        def pair(seq: int) -> Tuple[float, float]:
            # (-seq) % 2 == seq % 2, so the ack's parity equals the message's.
            even = seq % 2 == 0
            return (
                0.01 if even == phase_f else TAU,
                0.01 if even == phase_r else TAU,
            )

        return pair

    def block_stream(self, u: NodeId, v: NodeId):
        phase_f = _unit(_link_base(self._seed64, u, v), 0) < 0.5
        phase_r = _unit(_link_base(self._seed64, v, u), 0) < 0.5
        fwd = (TAU, 0.01) if phase_f else (0.01, TAU)  # [odd parity, even]
        rev = (TAU, 0.01) if phase_r else (0.01, TAU)

        def fill(buf, base: int, start: int, n: int) -> None:
            # (-k) % 2 == k % 2 in sign-magnitude parity terms, so the ack
            # shares the message's parity — same as pair_stream.
            i = base
            for k in range(start, start + n):
                even = k % 2 == 0
                buf[i] = fwd[even]
                buf[i + 1] = rev[even]
                i += 2

        return fill

    def __repr__(self) -> str:
        return f"AlternatingDelay(seed={self.seed})"


class DirectionalSkewDelay:
    """One direction of every link is fast, the other slow.

    Stresses the convergecast-vs-broadcast asymmetry inside cluster trees:
    e.g. registration waves move quickly toward roots but Go-Aheads crawl
    back down (or vice versa).
    """

    def __init__(self, seed: int, slow_up: bool = True) -> None:
        self.seed = seed
        self.slow_up = slow_up

    def __call__(self, u: NodeId, v: NodeId, seq: int, now: float) -> float:
        toward_higher_id = v > u
        slow = toward_higher_id == self.slow_up
        return TAU if slow else 0.02

    def link_stream(self, u: NodeId, v: NodeId):
        delay = TAU if (v > u) == self.slow_up else 0.02
        return lambda seq: delay

    def pair_stream(self, u: NodeId, v: NodeId):
        pair = (
            TAU if (v > u) == self.slow_up else 0.02,
            TAU if (u > v) == self.slow_up else 0.02,
        )
        return lambda seq: pair

    def block_stream(self, u: NodeId, v: NodeId):
        d = TAU if (v > u) == self.slow_up else 0.02
        a = TAU if (u > v) == self.slow_up else 0.02

        def fill(buf, base: int, start: int, n: int) -> None:
            i = base
            for _ in range(n):
                buf[i] = d
                buf[i + 1] = a
                i += 2

        return fill

    def __repr__(self) -> str:
        return f"DirectionalSkewDelay(seed={self.seed}, slow_up={self.slow_up})"


def standard_adversaries(seed: int = 0) -> Tuple[DelayModel, ...]:
    """The delay models every correctness test sweeps over."""
    return (
        ConstantDelay(),
        ConstantDelay(0.25),
        UniformDelay(seed),
        BimodalDelay(seed),
        SlowEdgesDelay(seed),
        AlternatingDelay(seed),
        DirectionalSkewDelay(seed, slow_up=True),
        DirectionalSkewDelay(seed, slow_up=False),
    )
