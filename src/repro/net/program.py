"""The event-driven synchronous algorithm interface (paper Section 5.1 / Appendix B).

The paper's synchronizer works for *event-driven* synchronous algorithms: a
node may send messages at pulse ``p`` only because it received messages of
pulse ``p-1`` and/or itself sent messages at pulse ``p-1``; it can never
reference the round number or "wait r rounds".  We encode that contract in
:class:`NodeProgram`:

* ``on_start(api)`` runs at pulse 0, on initiator nodes only, and emits the
  pulse-0 messages.
* ``on_pulse(api, arrived)`` runs at pulse ``p`` on every node that received
  messages of pulse ``p-1`` (delivered, sorted by sender, in ``arrived``)
  and/or sent messages at pulse ``p-1`` (then possibly with an empty
  ``arrived``).  Messages sent from the handler are the node's pulse-``p``
  messages.

A program must be a deterministic state machine: its behaviour may depend
only on its node's inputs and the sequence of pulse batches it has been fed.
The same program object then runs unchanged on the synchronous round
simulator, under the paper's deterministic synchronizer, and under the
α/β/γ baselines; output equality across those executions is the core
correctness criterion of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from weakref import WeakKeyDictionary

from .graph import Graph, NodeId, UnknownLinkError

Payload = Any
ArrivedBatch = Tuple[Tuple[NodeId, Payload], ...]

# NodeInfo depends only on the (immutable) graph, so every spec and every run
# over the same graph shares one info table.  Weak keys release dead graphs.
_INFO_CACHE: "WeakKeyDictionary[Graph, Dict[NodeId, NodeInfo]]" = WeakKeyDictionary()


@dataclass(frozen=True)
class NodeInfo:
    """Static local knowledge of one node (what the model grants for free).

    Nodes know their own id, their incident edges (with weights, for the MST
    application), and a polynomial upper bound on ``n`` — the standard
    CONGEST assumptions from Section 1.1.
    """

    node_id: NodeId
    neighbors: Tuple[NodeId, ...]
    edge_weights: Dict[NodeId, float]
    n_upper: int

    def weight(self, neighbor: NodeId) -> float:
        return self.edge_weights[neighbor]


class PulseApi:
    """What a program handler may do during one pulse: send and output.

    Collects the sends so the runtime (synchronous or synchronizer) can
    enforce the CONGEST discipline of at most one message per neighbor per
    pulse.
    """

    __slots__ = ("_info", "_sends", "_output", "_has_output")

    def __init__(self, info: NodeInfo) -> None:
        self._info = info  # det: ignore[DET003] -- reset() recycles the api for the SAME node; _info is the node's identity and must survive resets
        self._sends: List[Tuple[NodeId, Payload]] = []
        self._output: Any = None
        self._has_output = False

    @property
    def info(self) -> NodeInfo:
        return self._info

    def send(self, neighbor: NodeId, payload: Payload) -> None:
        if neighbor not in self._info.edge_weights:
            # Same error as the asynchronous transport's link table: a
            # non-neighbor destination fails identically on both engines,
            # naming both endpoints at the send site.
            raise UnknownLinkError(self._info.node_id, neighbor)
        if any(to == neighbor for to, _ in self._sends):
            raise ValueError(
                f"node {self._info.node_id} sent twice to {neighbor} in one pulse"
                " (CONGEST allows one message per neighbor per round)"
            )
        self._sends.append((neighbor, payload))

    def set_output(self, value: Any) -> None:
        self._output = value
        self._has_output = True

    def collect(self) -> Tuple[List[Tuple[NodeId, Payload]], bool, Any]:
        """(sends, produced_output, output) accumulated during the pulse."""
        return self._sends, self._has_output, self._output

    def reset(self) -> None:
        """Recycle this api for the next pulse (DESIGN.md §6).

        The previously collected sends list is left with its owner — a fresh
        list is started — so runtimes can reuse one ``PulseApi`` per node
        instead of allocating one per evaluated pulse.
        """
        self._sends = []
        self._output = None
        self._has_output = False


class NodeProgram:
    """Base class for per-node event-driven programs.

    Subclasses hold all their state on ``self`` and implement ``on_start``
    and/or ``on_pulse``.
    """

    def __init__(self, info: NodeInfo) -> None:
        self.info = info

    def on_start(self, api: PulseApi) -> None:  # pragma: no cover - default no-op
        """Pulse-0 action; called on initiators only."""

    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        """Pulse-p action (p >= 1); override in subclasses."""
        raise NotImplementedError


@dataclass(frozen=True)
class ProgramSpec:
    """A complete distributed algorithm: who initiates + per-node program."""

    name: str
    node_factory: Callable[[NodeInfo], NodeProgram]
    initiators: Callable[[Graph], Set[NodeId]]

    def make_infos(self, graph: Graph) -> Dict[NodeId, NodeInfo]:
        infos = _INFO_CACHE.get(graph)
        if infos is None:
            infos = _INFO_CACHE[graph] = {
                v: NodeInfo(
                    node_id=v,
                    neighbors=graph.neighbors(v),
                    edge_weights={u: graph.weight(v, u) for u in graph.neighbors(v)},
                    n_upper=graph.num_nodes,
                )
                for v in graph.nodes
            }
        return infos


def all_nodes_initiate(graph: Graph) -> Set[NodeId]:
    return set(graph.nodes)


# The initiator pickers are module-level callable classes rather than
# closures: a ``ProgramSpec`` must survive ``pickle`` so the sharded sweep
# executor (repro.net.shard, DESIGN.md §14) can ship one spec per worker
# under the ``spawn`` start method.  Behaviour is identical to the former
# closures; identity semantics are preserved on purpose (no ``__eq__``) so
# per-spec caches keyed by spec objects are unperturbed.


class _SingleInitiator:
    __slots__ = ("node",)

    def __init__(self, node: NodeId) -> None:
        self.node = node

    def __call__(self, graph: Graph) -> Set[NodeId]:
        node = self.node
        if not 0 <= node < graph.num_nodes:
            raise ValueError(f"initiator {node} not in graph")
        return {node}


class _FixedInitiators:
    __slots__ = ("frozen",)

    def __init__(self, nodes: Iterable[NodeId]) -> None:
        self.frozen = frozenset(nodes)

    def __call__(self, graph: Graph) -> Set[NodeId]:
        for v in sorted(self.frozen):
            if not 0 <= v < graph.num_nodes:
                raise ValueError(f"initiator {v} not in graph")
        return set(self.frozen)


class _SampledInitiators:
    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"need at least one initiator, got {count}")
        self.count = count

    def __call__(self, graph: Graph) -> Set[NodeId]:
        n = graph.num_nodes
        k = min(self.count, n)
        stride = n / k
        # Floors of strictly increasing multiples of stride >= 1: distinct.
        return {int(i * stride) for i in range(k)}


def single_initiator(node: NodeId) -> Callable[[Graph], Set[NodeId]]:
    return _SingleInitiator(node)


def fixed_initiators(nodes: Iterable[NodeId]) -> Callable[[Graph], Set[NodeId]]:
    return _FixedInitiators(nodes)


def sampled_initiators(count: int) -> Callable[[Graph], Set[NodeId]]:
    """Evenly spaced sample of ``count`` initiators — deterministic, no RNG.

    The scaling fix for all-initiator programs at n=512+ (ROADMAP): a
    flood-max-style program started from every node costs Θ(n²) messages on
    a cycle, which dominates large sweeps with traffic the synchronizer
    machinery under test contributes nothing to.  A sampled initiator set
    keeps the program genuinely multi-source while its message volume stays
    near-linear in n.  Nodes are picked at stride ``n / count`` starting
    from 0, so the same spec is reproducible across runs and comparable
    across graph sizes.
    """
    return _SampledInitiators(count)
