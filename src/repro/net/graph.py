"""Static network graphs for the message-passing simulators.

The network is an undirected graph ``G = (V, E)`` with ``V = {0, ..., n-1}``
(Section 1.1 of the paper).  :class:`Graph` is an immutable adjacency
structure with the handful of graph-theoretic queries the synchronizer stack
needs: neighborhoods, (multi-source) BFS distances, eccentricities, diameter,
and edge weights for the MST application.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

NodeId = int
Edge = Tuple[NodeId, NodeId]

INFINITY = float("inf")


def edge_key(u: NodeId, v: NodeId) -> Edge:
    """Canonical (sorted) key for the undirected edge {u, v}."""
    if u == v:
        raise ValueError(f"self-loop edge ({u}, {v}) is not allowed")
    return (u, v) if u < v else (v, u)


class UnknownLinkError(ValueError):
    """A send names a destination with no directed link from the sender.

    Raised by both message-passing engines — the asynchronous transport's
    link table and the synchronous engine's per-pulse send API — so a
    non-neighbor destination fails identically everywhere, naming both
    endpoints at the send site.  Subclasses :class:`ValueError` so callers
    that guarded against the historical ``ValueError("no link u -> v")``
    keep working.
    """

    def __init__(self, u: NodeId, v: NodeId) -> None:
        super().__init__(
            f"no link {u} -> {v}: node {u} has no directed link to {v}"
            " (sends are restricted to graph neighbors)"
        )
        self.u = u
        self.v = v


class Graph:
    """An immutable undirected graph over nodes ``0..n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    edges:
        Iterable of node pairs.  Duplicates (in either orientation) collapse
        into one undirected edge; self-loops are rejected.
    weights:
        Optional map from canonical edge key to a positive weight, used by the
        MST application.  Edges absent from the map default to weight 1.
    """

    # __weakref__ lets pure-function-of-graph results (covers, pulse bounds)
    # be memoized in WeakKeyDictionaries without pinning graphs in memory.
    __slots__ = (
        "_n", "_adj", "_edges", "_weights", "_dist_cache", "_ecc_cache",
        "__weakref__",
    )

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Edge],
        weights: Optional[Dict[Edge, float]] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("graph must have at least one node")
        self._n = num_nodes
        adj: List[List[NodeId]] = [[] for _ in range(num_nodes)]
        edge_set: Set[Edge] = set()
        for u, v in edges:
            key = edge_key(u, v)
            if not (0 <= key[0] < num_nodes and 0 <= key[1] < num_nodes):
                raise ValueError(f"edge {key} references a node outside 0..{num_nodes - 1}")
            if key in edge_set:
                continue
            edge_set.add(key)
            adj[key[0]].append(key[1])
            adj[key[1]].append(key[0])
        for neighbors in adj:
            neighbors.sort()
        self._adj: Tuple[Tuple[NodeId, ...], ...] = tuple(tuple(a) for a in adj)
        self._edges: FrozenSet[Edge] = frozenset(edge_set)
        self._weights: Dict[Edge, float] = {}
        if weights:
            for key, w in weights.items():
                key = edge_key(*key)
                if key not in edge_set:
                    raise ValueError(f"weight given for non-edge {key}")
                if w <= 0:
                    raise ValueError(f"edge weight must be positive, got {w} for {key}")
                self._weights[key] = float(w)
        self._dist_cache: Dict[FrozenSet[NodeId], Tuple[float, ...]] = {}
        self._ecc_cache: Optional[Tuple[float, ...]] = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def nodes(self) -> range:
        return range(self._n)

    @property
    def edges(self) -> FrozenSet[Edge]:
        return self._edges

    def neighbors(self, u: NodeId) -> Tuple[NodeId, ...]:
        return self._adj[u]

    def degree(self, u: NodeId) -> int:
        return len(self._adj[u])

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return edge_key(u, v) in self._edges

    def weight(self, u: NodeId, v: NodeId) -> float:
        return self._weights.get(edge_key(u, v), 1.0)

    @property
    def weights(self) -> Dict[Edge, float]:
        """Weights for every edge (defaulting to 1.0), keyed canonically."""
        return {e: self._weights.get(e, 1.0) for e in sorted(self._edges)}

    def __iter__(self) -> Iterator[NodeId]:
        return iter(range(self._n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def bfs_distances(self, sources: Iterable[NodeId] | NodeId) -> Tuple[float, ...]:
        """Hop distance from the closest source; ``inf`` for unreachable nodes."""
        if isinstance(sources, int):
            source_set = frozenset((sources,))
        else:
            source_set = frozenset(sources)
        if not source_set:
            raise ValueError("at least one source is required")
        cached = self._dist_cache.get(source_set)
        if cached is not None:
            return cached
        dist = [INFINITY] * self._n
        queue: deque[NodeId] = deque()
        for s in sorted(source_set):
            if not (0 <= s < self._n):
                raise ValueError(f"source {s} outside 0..{self._n - 1}")
            dist[s] = 0
            queue.append(s)
        while queue:
            u = queue.popleft()
            dv = dist[u] + 1
            for v in self._adj[u]:
                # Unweighted BFS pops nodes in nondecreasing distance, so a
                # node already labeled can never be improved: reaching it
                # again is at distance >= its label.  One identity check
                # suffices (the old `or dist[v] > du + 1` clause was
                # unreachable).
                if dist[v] is INFINITY:
                    dist[v] = dv
                    queue.append(v)
        result = tuple(dist)
        if len(self._dist_cache) < 1024:
            self._dist_cache[source_set] = result
        return result

    def bfs_tree(self, source: NodeId) -> Dict[NodeId, Optional[NodeId]]:
        """Parent pointers of the deterministic (lowest-id-first) BFS tree."""
        parent: Dict[NodeId, Optional[NodeId]] = {source: None}
        queue: deque[NodeId] = deque((source,))
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in parent:
                    parent[v] = u
                    queue.append(v)
        return parent

    def distance(self, u: NodeId, v: NodeId) -> float:
        return self.bfs_distances(u)[v]

    def eccentricity(self, u: NodeId) -> float:
        return max(self.bfs_distances(u))

    def ball(self, center: NodeId, radius: int) -> FrozenSet[NodeId]:
        """All nodes within hop distance ``radius`` of ``center``."""
        dist = self.bfs_distances(center)
        return frozenset(v for v in range(self._n) if dist[v] <= radius)

    def is_connected(self) -> bool:
        return INFINITY not in self.bfs_distances(0)

    def _eccentricities(self) -> Tuple[float, ...]:
        """Eccentricity of every node, computed once and cached.

        ``diameter`` and ``radius_center`` share this single O(n·m) pass
        instead of re-running one BFS per source on every call (the
        per-source distance cache is capped, so large graphs used to pay the
        full sweep repeatedly).
        """
        if self._ecc_cache is None:
            self._ecc_cache = tuple(
                max(self.bfs_distances(u)) for u in range(self._n)
            )
        return self._ecc_cache

    def diameter(self) -> int:
        """Exact diameter (one cached O(n·m) eccentricity sweep)."""
        if not self.is_connected():
            raise ValueError("diameter undefined for a disconnected graph")
        return int(max(self._eccentricities()))

    def radius_center(self) -> Tuple[int, NodeId]:
        """(radius, a center node achieving it)."""
        ecc = self._eccentricities()
        best_ecc = min(ecc)
        return int(best_ecc), ecc.index(best_ecc)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, keep: Iterable[NodeId]) -> Tuple["Graph", Dict[NodeId, NodeId]]:
        """Subgraph induced by ``keep``; returns (graph, old->new id map)."""
        kept = sorted(set(keep))
        if not kept:
            raise ValueError("cannot induce the empty subgraph")
        remap = {old: new for new, old in enumerate(kept)}
        # Sorted edge order: Graph() re-sorts adjacency anyway, but the
        # weights dict (and anything that iterates it) stays canonical.
        edges = [
            (remap[u], remap[v])
            for (u, v) in sorted(self._edges)
            if u in remap and v in remap
        ]
        weights = {
            edge_key(remap[u], remap[v]): self._weights.get((u, v), 1.0)
            for (u, v) in sorted(self._edges)
            if u in remap and v in remap
        }
        return Graph(len(kept), edges, weights), remap

    def with_weights(self, weights: Dict[Edge, float]) -> "Graph":
        return Graph(self._n, self._edges, weights)


def validate_tree(
    num_nodes: int, parent: Dict[NodeId, Optional[NodeId]], root: NodeId
) -> None:
    """Raise if ``parent`` is not a tree over ``num_nodes`` nodes rooted at ``root``."""
    if parent.get(root, "missing") is not None:
        raise ValueError("root must have parent None")
    if len(parent) != num_nodes:
        raise ValueError(f"tree has {len(parent)} nodes, expected {num_nodes}")
    for v in parent:
        seen = set()
        cur: Optional[NodeId] = v
        while cur is not None:
            if cur in seen:
                raise ValueError(f"cycle through node {cur}")
            seen.add(cur)
            cur = parent[cur]
        if root not in seen:
            raise ValueError(f"node {v} does not reach the root")
