"""Multi-model sweep harness for the asynchronous transport (DESIGN.md §7).

Every experiment in the paper is a *sweep*: the same graph and protocol
replayed under a whole family of adversarial delay models (E5 overhead
curves, E10 event-driven vs clock, E11 thresholded BFS).  Running each model
through a fresh :func:`~repro.net.async_runtime.run_asynchronous` pays the
full setup again per model; :class:`AsyncSweep` snapshots everything a run
derives from the *graph* once — the dense link-id skeleton
(:class:`~repro.net.async_runtime.LinkSkeleton`) in particular — and
replays a fresh :class:`~repro.net.async_runtime.AsyncRuntime` per delay
model from that shared immutable state.

What is and is not shared (the contract the equivalence tests pin):

* shared across replays: the graph, the link-id skeleton (endpoint arrays,
  per-node outgoing maps, packed event codes), the process factory
  (protocol sweeps such as :class:`repro.core.sweep.SynchronizerSweep`
  attach covers, registry views, pulse tables and node infos to it exactly
  once), the accounting flags, and — as pure scratch — one flat delay-block
  buffer (DESIGN.md §9) whose *allocation* is amortized across replays
  while its contents are refilled per replay from each model's pure
  streams;
* rebuilt per replay: every piece of mutable state — link slots, side
  slots, block cursors, outboxes, the event heap, process instances — so
  each replay is byte-identical to a standalone ``AsyncRuntime`` run under
  the same delay model, and replay order cannot leak state between models.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, List, Optional

from .async_runtime import (
    AsyncResult,
    AsyncRuntime,
    Payload,
    Process,
    ProcessContext,
    adopt_skeleton,
    link_skeleton_for,
    make_block_buffer,
)
from .delays import DelayModel
from .faults import DETECT_TIMEOUT, FaultSchedule
from .graph import Graph, NodeId

TraceFn = Callable[[float, NodeId, NodeId, Payload], None]


@contextmanager
def paused_gc() -> Iterator[None]:
    """One cyclic-GC pause around a whole sweep (DESIGN.md §8).

    Each replay's dead engine is a cycle cluster refcounting cannot
    reclaim; under one sweep-wide pause the clusters are collected together
    at the end instead of being rescanned generation by generation after
    every replay.  ``AsyncRuntime.run`` sees GC already disabled and
    leaves it alone, so the schedule is unchanged.  No-op when the caller
    already disabled GC.
    """
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if gc_was_enabled:
            gc.enable()


#: Dead replay engines accumulate as uncollected cycle clusters while the
#: sweep-wide pause holds; collect after this many replays so peak memory
#: stays bounded for long delay-model families without giving up the
#: per-event pause win (typical 5-model sweeps never trigger it).
REPLAYS_PER_COLLECT = 8


def run_models(run_one: Callable[[DelayModel], Any],
               delay_models: Iterable[DelayModel]) -> List[Any]:
    """Replay every model through ``run_one`` under one GC pause.

    Shared by the transport- and protocol-level ``run_all`` methods:
    results align with the input order, and every
    :data:`REPLAYS_PER_COLLECT` replays the dead engines are collected
    explicitly (``gc.collect`` works while the collector is disabled).
    """
    with paused_gc():
        results: List[Any] = []
        for i, model in enumerate(delay_models):
            if i and i % REPLAYS_PER_COLLECT == 0:
                gc.collect()
            results.append(run_one(model))
        return results


class AsyncSweep:
    """Replay one (graph, protocol) workload under many delay models."""

    __slots__ = ("graph", "process_factory", "count_acks", "count_fused_acks",
                 "faults", "detect_timeout", "_skeleton", "_block_buffer")

    def __init__(
        self,
        graph: Graph,
        process_factory: Callable[[ProcessContext], Process],
        count_acks: bool = True,
        count_fused_acks: bool = False,
        faults: Optional[FaultSchedule] = None,
        detect_timeout: float = DETECT_TIMEOUT,
    ) -> None:
        self.graph = graph
        self.process_factory = process_factory
        self.count_acks = count_acks
        self.count_fused_acks = count_fused_acks
        # One fault schedule across every replay: fault decisions are pure
        # functions of (schedule seed, endpoints, seq), so replays under
        # different delay models observe the *same* adversarial faults —
        # exactly the pinnable-churn contract of DESIGN.md §11.
        self.faults = faults
        self.detect_timeout = detect_timeout
        # Dense link-id skeleton, derived from the graph once per sweep
        # (and shared with any standalone runtime over the same graph
        # through the per-graph cache).
        self._skeleton = link_skeleton_for(graph)
        # One flat delay-block buffer (num_links * BLOCK_SPAN floats,
        # DESIGN.md §9) handed to every replay, so the sweep pays the
        # allocation once instead of once per delay model.  Pure scratch:
        # each replay resets its per-link cursors and refills from its own
        # model's pure streams, so replay order cannot leak through it —
        # replays only must not run concurrently, which ``run_all`` (and
        # every other sequential driver) satisfies by construction.
        # Allocated lazily on first use: models without ``block_stream``
        # never need it.
        self._block_buffer = None

    def __getstate__(self):
        """Pickle state for shard workers (repro.net.shard, DESIGN.md §14).

        The skeleton ships explicitly — the parent's link-id assignment is
        part of the replay contract — while the block buffer stays behind:
        it is pure scratch (``num_links * BLOCK_SPAN`` floats), cheaper to
        reallocate in the worker than to serialize.
        """
        return (
            self.graph,
            self.process_factory,
            self.count_acks,
            self.count_fused_acks,
            self.faults,
            self.detect_timeout,
            self._skeleton,
        )

    def __setstate__(self, state) -> None:
        (self.graph, self.process_factory, self.count_acks,
         self.count_fused_acks, self.faults, self.detect_timeout,
         skeleton) = state
        # Make the shipped assignment authoritative for this graph copy in
        # the unpickling process, then share whichever table the cache holds.
        self._skeleton = adopt_skeleton(self.graph, skeleton)
        self._block_buffer = None

    def runtime(self, delay_model: DelayModel, trace: Optional[TraceFn] = None) -> AsyncRuntime:
        """A fresh runtime over the shared skeleton (one replay's engine)."""
        block_buffer = None
        if getattr(delay_model, "block_stream", None) is not None:
            block_buffer = self._block_buffer
            if block_buffer is None:
                block_buffer = self._block_buffer = make_block_buffer(
                    self._skeleton.num_links
                )
        return AsyncRuntime(
            self.graph,
            self.process_factory,
            delay_model,
            count_acks=self.count_acks,
            trace=trace,
            count_fused_acks=self.count_fused_acks,
            skeleton=self._skeleton,
            block_buffer=block_buffer,
            faults=self.faults,
            detect_timeout=self.detect_timeout,
        )

    def run(
        self,
        delay_model: DelayModel,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
        trace: Optional[TraceFn] = None,
    ) -> AsyncResult:
        """One replay: byte-identical to a standalone ``AsyncRuntime`` run."""
        return self.runtime(delay_model, trace).run(
            max_time=max_time, max_events=max_events
        )

    def run_all(
        self,
        delay_models: Iterable[DelayModel],
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> List[AsyncResult]:
        """Replay every model in order; results align with the input order.

        Runs under one sweep-wide GC pause (:func:`run_models`)."""
        return run_models(
            lambda model: self.run(
                model, max_time=max_time, max_events=max_events
            ),
            delay_models,
        )


def sweep_asynchronous(
    graph: Graph,
    process_factory: Callable[[ProcessContext], Process],
    delay_models: Iterable[DelayModel],
    max_time: Optional[float] = None,
    max_events: Optional[int] = 50_000_000,
    faults: Optional[FaultSchedule] = None,
) -> List[AsyncResult]:
    """Convenience wrapper: build the sweep and replay every model."""
    sweep = AsyncSweep(graph, process_factory, faults=faults)
    return sweep.run_all(delay_models, max_time=max_time, max_events=max_events)
