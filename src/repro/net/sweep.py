"""Multi-model sweep harness for the asynchronous transport (DESIGN.md §7).

Every experiment in the paper is a *sweep*: the same graph and protocol
replayed under a whole family of adversarial delay models (E5 overhead
curves, E10 event-driven vs clock, E11 thresholded BFS).  Running each model
through a fresh :func:`~repro.net.async_runtime.run_asynchronous` pays the
full setup again per model; :class:`AsyncSweep` snapshots everything a run
derives from the *graph* once — the directed-link skeleton in particular —
and replays a fresh :class:`~repro.net.async_runtime.AsyncRuntime` per
delay model from that shared immutable state.

What is and is not shared (the contract the equivalence tests pin):

* shared across replays: the graph, the directed-link pair skeleton, the
  process factory (protocol sweeps such as
  :class:`repro.core.sweep.SynchronizerSweep` attach covers, registry views,
  pulse tables and node infos to it exactly once), and the accounting flags;
* rebuilt per replay: every piece of mutable state — link slots, outboxes,
  the event heap, process instances — so each replay is byte-identical to a
  standalone ``AsyncRuntime`` run under the same delay model, and replay
  order cannot leak state between models.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from .async_runtime import AsyncResult, AsyncRuntime, Payload, Process, ProcessContext
from .delays import DelayModel
from .graph import Graph, NodeId

TraceFn = Callable[[float, NodeId, NodeId, Payload], None]


class AsyncSweep:
    """Replay one (graph, protocol) workload under many delay models."""

    __slots__ = ("graph", "process_factory", "count_acks", "count_fused_acks",
                 "_pairs")

    def __init__(
        self,
        graph: Graph,
        process_factory: Callable[[ProcessContext], Process],
        count_acks: bool = True,
        count_fused_acks: bool = False,
    ) -> None:
        self.graph = graph
        self.process_factory = process_factory
        self.count_acks = count_acks
        self.count_fused_acks = count_fused_acks
        # Directed-link skeleton, derived from the graph once per sweep.
        self._pairs: Tuple[Tuple[NodeId, NodeId], ...] = tuple(
            pair for u, v in graph.edges for pair in ((u, v), (v, u))
        )

    def runtime(self, delay_model: DelayModel, trace: Optional[TraceFn] = None) -> AsyncRuntime:
        """A fresh runtime over the shared skeleton (one replay's engine)."""
        return AsyncRuntime(
            self.graph,
            self.process_factory,
            delay_model,
            count_acks=self.count_acks,
            trace=trace,
            count_fused_acks=self.count_fused_acks,
            pairs=self._pairs,
        )

    def run(
        self,
        delay_model: DelayModel,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
        trace: Optional[TraceFn] = None,
    ) -> AsyncResult:
        """One replay: byte-identical to a standalone ``AsyncRuntime`` run."""
        return self.runtime(delay_model, trace).run(
            max_time=max_time, max_events=max_events
        )

    def run_all(
        self,
        delay_models: Iterable[DelayModel],
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> List[AsyncResult]:
        """Replay every model in order; results align with the input order."""
        return [
            self.run(model, max_time=max_time, max_events=max_events)
            for model in delay_models
        ]


def sweep_asynchronous(
    graph: Graph,
    process_factory: Callable[[ProcessContext], Process],
    delay_models: Iterable[DelayModel],
    max_time: Optional[float] = None,
    max_events: Optional[int] = 50_000_000,
) -> List[AsyncResult]:
    """Convenience wrapper: build the sweep and replay every model."""
    sweep = AsyncSweep(graph, process_factory)
    return sweep.run_all(delay_models, max_time=max_time, max_events=max_events)
