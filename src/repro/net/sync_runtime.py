"""Synchronous CONGEST round simulator for event-driven programs.

Implements the synchronous message-passing model of Section 1.1 with the
event-driven interpretation of Section 5.1: at pulse ``p`` exactly the nodes
that received pulse-``p-1`` messages or sent pulse-``p-1`` messages are
activated, receive the full batch of same-round arrivals, and may send the
pulse-``p`` messages.

The runtime reports the two quantities the paper's bounds are stated in:

* time complexity ``T(A)`` — rounds until the last node produces its output
  (the "time to output" definition of Appendix B);
* message complexity ``M(A)`` — total messages sent.

Error parity with the asynchronous engine: a send to a non-neighbor fails
at the send site with :class:`~repro.net.graph.UnknownLinkError` naming
both endpoints (raised by :meth:`~repro.net.program.PulseApi.send`, the
only send path into this runtime), exactly as the asynchronous transport's
link table does — a program that oversteps the CONGEST neighborhood gets
the same diagnostic on both engines instead of an engine-specific error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Any, Dict, List, Optional, Set, Tuple

from .faults import FaultSchedule
from .graph import Graph, NodeId
from .program import ArrivedBatch, NodeProgram, Payload, ProgramSpec, PulseApi


@dataclass
class SyncResult:
    """Outcome of one synchronous execution."""

    rounds_to_output: int
    rounds_total: int
    messages: int
    outputs: Dict[NodeId, Any]
    output_round: Dict[NodeId, int]
    pulse_messages: List[Tuple[int, NodeId, NodeId, Payload]] = field(repr=False, default_factory=list)
    #: Messages lost to faults (crashed receiver or per-link drop).
    #: Always 0 without a fault schedule.
    dropped: int = 0

    @property
    def time_complexity(self) -> int:
        return self.rounds_to_output

    @property
    def message_complexity(self) -> int:
        return self.messages


class SyncRuntime:
    """Runs one :class:`ProgramSpec` in lockstep rounds."""

    def __init__(
        self,
        graph: Graph,
        spec: ProgramSpec,
        record_messages: bool = False,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.record_messages = record_messages
        if faults is not None and faults.is_empty():
            # Same normalization as the asynchronous engine: an empty
            # schedule provably cannot perturb the fault-free round loop.
            faults = None
        self.faults = faults
        self._infos = spec.make_infos(graph)
        self.programs: Dict[NodeId, NodeProgram] = {
            v: spec.node_factory(self._infos[v]) for v in graph.nodes
        }

    def run(self, max_rounds: int = 1_000_000) -> SyncResult:
        if self.faults is not None:
            return self._run_faulty(max_rounds)
        graph = self.graph
        outputs: Dict[NodeId, Any] = {}
        output_round: Dict[NodeId, int] = {}
        message_log: List[Tuple[int, NodeId, NodeId, Payload]] = []
        messages = 0
        rounds_to_output = 0

        # Pulse 0: initiators act.
        in_flight: Dict[NodeId, List[Tuple[NodeId, Payload]]] = {}
        sent_last: Set[NodeId] = set()
        for v in sorted(self.spec.initiators(graph)):
            api = PulseApi(self._infos[v])
            self.programs[v].on_start(api)
            sends, has_output, value = api.collect()
            if has_output:
                outputs[v] = value
                output_round[v] = 0
            if sends:
                sent_last.add(v)
            for to, payload in sends:
                in_flight.setdefault(to, []).append((v, payload))
                messages += 1
                if self.record_messages:
                    message_log.append((0, v, to, payload))

        pulse = 0
        while in_flight or sent_last:
            pulse += 1
            if pulse > max_rounds:
                raise RuntimeError(
                    f"synchronous execution of {self.spec.name!r} exceeded"
                    f" {max_rounds} rounds"
                )
            triggered = set(in_flight) | sent_last
            arrivals = in_flight
            in_flight = {}
            sent_last = set()
            for v in sorted(triggered):
                batch: ArrivedBatch = tuple(sorted(arrivals.get(v, ())))
                api = PulseApi(self._infos[v])
                self.programs[v].on_pulse(api, batch)
                sends, has_output, value = api.collect()
                if has_output:
                    outputs[v] = value
                    output_round[v] = pulse
                    rounds_to_output = max(rounds_to_output, pulse)
                if sends:
                    sent_last.add(v)
                for to, payload in sends:
                    in_flight.setdefault(to, []).append((v, payload))
                    messages += 1
                    if self.record_messages:
                        message_log.append((pulse, v, to, payload))

        rounds_to_output = max(output_round.values(), default=0)
        return SyncResult(
            rounds_to_output=rounds_to_output,
            rounds_total=pulse,
            messages=messages,
            outputs=outputs,
            output_round=output_round,
            pulse_messages=message_log,
        )

    def _run_faulty(self, max_rounds: int) -> SyncResult:
        """The fault-mode round loop (round-granular reading of DESIGN.md §11).

        A node is dead at round ``r`` iff ``crash_time(v) <= r <
        rejoin_time(v)`` (dead nodes are never activated; their queued
        sends die with them — sends from earlier rounds were already in
        flight and still arrive).  A send at pulse ``p`` nominally arrives
        at ``p + 1``; if the edge is down over that round it is *deferred*
        to the first round at or after the interval's end (link-layer
        retention, mirroring the asynchronous engine), and a message whose
        receiver is dead at its arrival round — or whose per-link sequence
        number the schedule drops — is lost (counted in ``dropped``; it
        still counts as sent).

        Re-joins are round-granular too (DESIGN.md §15): at the first
        round at or after ``rejoin_time(v)`` the node is rebuilt with
        fresh protocol state, and if it is an initiator it re-runs
        ``on_start`` that round.  Because rounds are the finest unit here,
        the asynchronous engine's sub-round void rule ("in flight at the
        rejoin instant") is not representable: a message is void exactly
        when its *arrival round* falls inside the receiver's dead window,
        so a send that crosses the rejoin boundary is delivered to the
        fresh incarnation rather than voided.  Deterministic on both
        readings; they are documented as different clocks over the same
        schedule.
        """
        graph = self.graph
        faults = self.faults
        crash = faults.crash_time
        rejoin = faults.rejoin_time
        down_of = faults.down_checker
        drop_of = faults.drop_checker
        outputs: Dict[NodeId, Any] = {}
        output_round: Dict[NodeId, int] = {}
        message_log: List[Tuple[int, NodeId, NodeId, Payload]] = []
        messages = 0
        dropped = 0
        # Arrival batches keyed by round: down-interval deferrals can push
        # a message several rounds past the lockstep ``p + 1``.
        future: Dict[int, Dict[NodeId, List[Tuple[NodeId, Payload]]]] = {}
        # Per-directed-link injection counters for the drop keying (1-based,
        # matching the asynchronous engine's injection numbers).
        inj: Dict[Tuple[NodeId, NodeId], int] = {}

        def dispatch(pulse: int, v: NodeId,
                     sends: List[Tuple[NodeId, Payload]]) -> None:
            nonlocal messages, dropped
            for to, payload in sends:
                messages += 1
                lk = (v, to)
                seq = inj.get(lk, 0) + 1
                inj[lk] = seq
                drop = drop_of(v, to)
                if drop is not None and drop(seq):
                    dropped += 1
                    continue
                arrive = pulse + 1
                down = down_of(v, to)
                if down is not None:
                    while True:
                        end = down(float(arrive))
                        if end <= 0.0:
                            break
                        # First round at or after the interval's end (the
                        # edge is up at ``end`` — half-open intervals).
                        nxt = int(end)
                        if nxt < end:
                            nxt += 1
                        arrive = nxt if nxt > arrive else arrive + 1
                if crash(to) <= arrive < rejoin(to):
                    dropped += 1
                    continue
                future.setdefault(arrive, {}).setdefault(to, []).append(
                    (v, payload)
                )
                if self.record_messages:
                    message_log.append((pulse, v, to, payload))

        initiators = set(self.spec.initiators(graph))
        # Rebirth rounds: the first integer round at or after each rejoin
        # time (ascending node order within a round, like every other
        # per-round iteration here).
        rebirth: Dict[int, List[NodeId]] = {}
        for v in graph.nodes:
            t_rejoin = rejoin(v)
            if t_rejoin < inf:
                r = int(t_rejoin)
                if r < t_rejoin:
                    r += 1
                rebirth.setdefault(r, []).append(v)

        sent_last: Set[NodeId] = set()
        for v in sorted(initiators):
            if crash(v) <= 0.0:
                continue
            api = PulseApi(self._infos[v])
            self.programs[v].on_start(api)
            sends, has_output, value = api.collect()
            if has_output:
                outputs[v] = value
                output_round[v] = 0
            if sends:
                sent_last.add(v)
            dispatch(0, v, sends)

        pulse = 0
        while future or sent_last or rebirth:
            pulse += 1
            if pulse > max_rounds:
                raise RuntimeError(
                    f"synchronous execution of {self.spec.name!r} exceeded"
                    f" {max_rounds} rounds"
                )
            arrivals = future.pop(pulse, {})
            triggered = set(arrivals) | sent_last
            sent_last = set()
            for v in sorted(rebirth.pop(pulse, [])):
                # The returned node gets fresh protocol state; an
                # initiator re-runs on_start at its rebirth round (then
                # receives any same-round arrivals below, like a pulse-0
                # start compressed into its first live round).
                self.programs[v] = self.spec.node_factory(self._infos[v])
                # Blank state includes the output register: the previous
                # incarnation's answer died with it.
                outputs.pop(v, None)
                output_round.pop(v, None)
                if v not in initiators:
                    continue
                api = PulseApi(self._infos[v])
                self.programs[v].on_start(api)
                sends, has_output, value = api.collect()
                if has_output:
                    outputs[v] = value
                    output_round[v] = pulse
                if sends:
                    sent_last.add(v)
                dispatch(pulse, v, sends)
            for v in sorted(triggered):
                if crash(v) <= pulse < rejoin(v):
                    # Dead at this round: never activated, and anything it
                    # would have sent dies with it.  Arrivals addressed to
                    # it were already dropped at send time.
                    continue
                batch: ArrivedBatch = tuple(sorted(arrivals.get(v, ())))
                api = PulseApi(self._infos[v])
                self.programs[v].on_pulse(api, batch)
                sends, has_output, value = api.collect()
                if has_output:
                    outputs[v] = value
                    output_round[v] = pulse
                if sends:
                    sent_last.add(v)
                dispatch(pulse, v, sends)

        return SyncResult(
            rounds_to_output=max(output_round.values(), default=0),
            rounds_total=pulse,
            messages=messages,
            outputs=outputs,
            output_round=output_round,
            pulse_messages=message_log,
            dropped=dropped,
        )


def run_synchronous(
    graph: Graph, spec: ProgramSpec, record_messages: bool = False,
    faults: Optional[FaultSchedule] = None,
) -> SyncResult:
    """Convenience wrapper: build the runtime and run to quiescence."""
    return SyncRuntime(
        graph, spec, record_messages=record_messages, faults=faults
    ).run()
