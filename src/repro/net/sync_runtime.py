"""Synchronous CONGEST round simulator for event-driven programs.

Implements the synchronous message-passing model of Section 1.1 with the
event-driven interpretation of Section 5.1: at pulse ``p`` exactly the nodes
that received pulse-``p-1`` messages or sent pulse-``p-1`` messages are
activated, receive the full batch of same-round arrivals, and may send the
pulse-``p`` messages.

The runtime reports the two quantities the paper's bounds are stated in:

* time complexity ``T(A)`` — rounds until the last node produces its output
  (the "time to output" definition of Appendix B);
* message complexity ``M(A)`` — total messages sent.

Error parity with the asynchronous engine: a send to a non-neighbor fails
at the send site with :class:`~repro.net.graph.UnknownLinkError` naming
both endpoints (raised by :meth:`~repro.net.program.PulseApi.send`, the
only send path into this runtime), exactly as the asynchronous transport's
link table does — a program that oversteps the CONGEST neighborhood gets
the same diagnostic on both engines instead of an engine-specific error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .graph import Graph, NodeId
from .program import ArrivedBatch, NodeProgram, Payload, ProgramSpec, PulseApi


@dataclass
class SyncResult:
    """Outcome of one synchronous execution."""

    rounds_to_output: int
    rounds_total: int
    messages: int
    outputs: Dict[NodeId, Any]
    output_round: Dict[NodeId, int]
    pulse_messages: List[Tuple[int, NodeId, NodeId, Payload]] = field(repr=False, default_factory=list)

    @property
    def time_complexity(self) -> int:
        return self.rounds_to_output

    @property
    def message_complexity(self) -> int:
        return self.messages


class SyncRuntime:
    """Runs one :class:`ProgramSpec` in lockstep rounds."""

    def __init__(
        self,
        graph: Graph,
        spec: ProgramSpec,
        record_messages: bool = False,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.record_messages = record_messages
        self._infos = spec.make_infos(graph)
        self.programs: Dict[NodeId, NodeProgram] = {
            v: spec.node_factory(self._infos[v]) for v in graph.nodes
        }

    def run(self, max_rounds: int = 1_000_000) -> SyncResult:
        graph = self.graph
        outputs: Dict[NodeId, Any] = {}
        output_round: Dict[NodeId, int] = {}
        message_log: List[Tuple[int, NodeId, NodeId, Payload]] = []
        messages = 0
        rounds_to_output = 0

        # Pulse 0: initiators act.
        in_flight: Dict[NodeId, List[Tuple[NodeId, Payload]]] = {}
        sent_last: Set[NodeId] = set()
        for v in sorted(self.spec.initiators(graph)):
            api = PulseApi(self._infos[v])
            self.programs[v].on_start(api)
            sends, has_output, value = api.collect()
            if has_output:
                outputs[v] = value
                output_round[v] = 0
            if sends:
                sent_last.add(v)
            for to, payload in sends:
                in_flight.setdefault(to, []).append((v, payload))
                messages += 1
                if self.record_messages:
                    message_log.append((0, v, to, payload))

        pulse = 0
        while in_flight or sent_last:
            pulse += 1
            if pulse > max_rounds:
                raise RuntimeError(
                    f"synchronous execution of {self.spec.name!r} exceeded"
                    f" {max_rounds} rounds"
                )
            triggered = set(in_flight) | sent_last
            arrivals = in_flight
            in_flight = {}
            sent_last = set()
            for v in sorted(triggered):
                batch: ArrivedBatch = tuple(sorted(arrivals.get(v, ())))
                api = PulseApi(self._infos[v])
                self.programs[v].on_pulse(api, batch)
                sends, has_output, value = api.collect()
                if has_output:
                    outputs[v] = value
                    output_round[v] = pulse
                    rounds_to_output = max(rounds_to_output, pulse)
                if sends:
                    sent_last.add(v)
                for to, payload in sends:
                    in_flight.setdefault(to, []).append((v, payload))
                    messages += 1
                    if self.record_messages:
                        message_log.append((pulse, v, to, payload))

        rounds_to_output = max(output_round.values(), default=0)
        return SyncResult(
            rounds_to_output=rounds_to_output,
            rounds_total=pulse,
            messages=messages,
            outputs=outputs,
            output_round=output_round,
            pulse_messages=message_log,
        )


def run_synchronous(
    graph: Graph, spec: ProgramSpec, record_messages: bool = False
) -> SyncResult:
    """Convenience wrapper: build the runtime and run to quiescence."""
    return SyncRuntime(graph, spec, record_messages=record_messages).run()
