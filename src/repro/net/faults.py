"""Seeded fault schedules: the adversary family beyond delays (DESIGN.md §11).

The delay models in :mod:`repro.net.delays` bound *when* a message arrives;
a :class:`FaultSchedule` decides *whether* it arrives at all.  Three fault
kinds compose, each a deterministic pure function of the schedule's seed:

* **permanent node crashes** — node ``v`` crashes at a fixed time (fail-stop:
  it never takes another step, messages addressed to it vanish, messages it
  queued but had not injected die with it);
* **link-down intervals** — the undirected edge ``{u, v}`` is down over
  half-open intervals ``[start, end)``; a delivery or acknowledgment that
  would fire while the edge is down is *deferred* to the interval's end
  (link-layer retention: nothing is lost, only delayed — the fault analogue
  of an adversarial delay outside ``(0, TAU]``);
* **per-link message drops** — the ``seq``-th injection on directed link
  ``u -> v`` is lost receiver-side; the link-layer acknowledgment still
  returns (the transport frees the link), but the payload never reaches the
  process and ``on_delivered`` never fires.

Two *dynamic-network* extensions (DESIGN.md §15) compose with the three
kinds above:

* **node re-joins** — a crashed node may return at a derived time
  ``rejoin_time(v) > crash_time(v)`` with *fresh* protocol state; its
  incident links un-jam and any transport record that was in flight on an
  incident link when the node left is **void** (both engines discard it at
  fire time — the returned node shares no link-layer state with its former
  incarnation);
* **recurrent links** — with ``recurrent=True`` the seeded down-interval
  train of each churned edge repeats with a per-link seeded period, so a
  link can flap for the whole run instead of only inside ``[0, horizon)``.
  Only the ``down_checker`` view is periodic; ``down_intervals`` still
  returns the base train so interval validation and the sync engine's
  round arithmetic stay unchanged.

Determinism contract: every query is a pure function of
``(label, seed, endpoints, seq)`` using the same 64-bit mixing helpers as
the delay models, so both engines — the packed-record
:class:`~repro.net.async_runtime.AsyncRuntime` and the reference engine in
the equivalence tests — and every sweep replay observe bit-identical fault
decisions for a fixed schedule.  No state is consumed by querying.

Schedules validate eagerly at construction (:class:`FaultScheduleError`)
so a malformed interval can never corrupt heap order at draw time.
"""

from __future__ import annotations

from math import inf, isfinite
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .delays import _link_base, _mix64, _model_seed, _unit
from .graph import Edge, NodeId, edge_key


class FaultScheduleError(ValueError):
    """A fault schedule is malformed (bad rate, interval, or conflict)."""


#: Default crashed-neighbor detection timeout for the perfect-failure-detector
#: abstraction (DESIGN.md §11).  Any message in flight toward a node that
#: crashes at time ``t`` was injected before ``t`` and therefore resolves —
#: delivery plus acknowledgment — by ``t + 2*TAU``.  A timeout strictly
#: greater than ``2*TAU`` after the crash is thus *sound*: once it fires, no
#: pre-crash traffic from the dead neighbor can still arrive, so pruning is
#: safe (this is exactly the missing-ack bound a real implementation would
#: time out on).
DETECT_TIMEOUT = 2.25

_DownFn = Callable[[float], float]
_DropFn = Callable[[int], bool]


def _check_rate(name: str, rate: float) -> float:
    rate = float(rate)
    if not (isfinite(rate) and 0.0 <= rate <= 1.0):
        raise FaultScheduleError(f"{name} must lie in [0, 1], got {rate!r}")
    return rate


def _check_span(name: str, span: Tuple[float, float]) -> Tuple[float, float]:
    lo, hi = float(span[0]), float(span[1])
    if not (isfinite(lo) and isfinite(hi) and 0.0 <= lo <= hi):
        raise FaultScheduleError(
            f"{name} must be a finite pair 0 <= lo <= hi, got {span!r}"
        )
    return lo, hi


def _check_intervals(edge: Edge, intervals: Iterable[Tuple[float, float]]) -> Tuple[Tuple[float, float], ...]:
    out: List[Tuple[float, float]] = []
    last_end = -inf
    for iv in intervals:
        s, e = float(iv[0]), float(iv[1])
        if not (isfinite(s) and isfinite(e) and 0.0 <= s < e):
            raise FaultScheduleError(
                f"down interval {iv!r} on edge {edge} must satisfy 0 <= start < end (finite)"
            )
        if s < last_end:
            raise FaultScheduleError(
                f"down intervals on edge {edge} must be sorted and disjoint"
            )
        last_end = e
        out.append((s, e))
    return tuple(out)


class FaultSchedule:
    """Deterministic, seed-derived crash/down/drop schedule.

    Explicit faults and seeded random families compose: ``crashes`` /
    ``downs`` / ``drops`` name exact faults, while ``crash_rate`` /
    ``down_rate`` / ``drop_rate`` derive additional ones from the seed.
    ``protect`` lists nodes that never crash (e.g. a BFS root); protecting a
    node named in ``crashes`` is a contradiction and raises.
    """

    __slots__ = (
        "seed", "label", "crash_rate", "crash_window", "down_rate",
        "down_lengths", "up_lengths", "horizon", "drop_rate", "protect",
        "rejoin_rate", "rejoin_delays", "recurrent",
        "_crashes", "_downs", "_drops", "_rejoins",
        "_ms_crash", "_ms_down", "_ms_drop", "_ms_rejoin", "_ms_recur",
        "_crash_cache", "_down_cache", "_drop_cache", "_rejoin_cache",
    )

    def __init__(
        self,
        seed: int = 0,
        *,
        crashes: Optional[Dict[NodeId, float]] = None,
        downs: Optional[Dict[Edge, Sequence[Tuple[float, float]]]] = None,
        drops: Optional[Iterable[Tuple[NodeId, NodeId, int]]] = None,
        crash_rate: float = 0.0,
        crash_window: Tuple[float, float] = (0.0, 8.0),
        down_rate: float = 0.0,
        down_lengths: Tuple[float, float] = (0.25, 2.0),
        up_lengths: Tuple[float, float] = (1.0, 7.0),
        horizon: float = 32.0,
        drop_rate: float = 0.0,
        rejoins: Optional[Dict[NodeId, float]] = None,
        rejoin_rate: float = 0.0,
        rejoin_delays: Tuple[float, float] = (4.0, 12.0),
        recurrent: bool = False,
        protect: Iterable[NodeId] = (),
        label: str = "faults",
    ) -> None:
        self.seed = seed
        self.label = label
        self.crash_rate = _check_rate("crash_rate", crash_rate)
        self.crash_window = _check_span("crash_window", crash_window)
        self.down_rate = _check_rate("down_rate", down_rate)
        self.down_lengths = _check_span("down_lengths", down_lengths)
        self.up_lengths = _check_span("up_lengths", up_lengths)
        if self.down_lengths[0] <= 0.0 and self.down_rate > 0.0:
            raise FaultScheduleError("down_lengths must have a positive minimum")
        if self.up_lengths[0] <= 0.0 and self.down_rate > 0.0:
            raise FaultScheduleError("up_lengths must have a positive minimum")
        horizon = float(horizon)
        if not (isfinite(horizon) and horizon >= 0.0):
            raise FaultScheduleError(f"horizon must be finite and >= 0, got {horizon!r}")
        self.horizon = horizon
        self.drop_rate = _check_rate("drop_rate", drop_rate)
        self.rejoin_rate = _check_rate("rejoin_rate", rejoin_rate)
        self.rejoin_delays = _check_span("rejoin_delays", rejoin_delays)
        if self.rejoin_delays[0] <= 0.0 and self.rejoin_rate > 0.0:
            raise FaultScheduleError("rejoin_delays must have a positive minimum")
        self.recurrent = bool(recurrent)
        if self.recurrent and self.down_rate <= 0.0 and not (downs or {}):
            raise FaultScheduleError(
                "recurrent=True requires down intervals (down_rate or downs)"
            )
        if self.recurrent and self.up_lengths[0] <= 0.0:
            # The seeded period is span + up-draw; a positive up minimum
            # guarantees every period ends with an up phase, so deferral
            # always terminates even when intervals tile the base train.
            raise FaultScheduleError(
                "recurrent=True requires up_lengths with a positive minimum"
            )
        self.protect = frozenset(protect)

        explicit_crashes: Dict[NodeId, float] = {}
        for v, t in (crashes or {}).items():
            t = float(t)
            if not (isfinite(t) and t >= 0.0):
                raise FaultScheduleError(
                    f"crash time for node {v} must be finite and >= 0, got {t!r}"
                )
            explicit_crashes[v] = t
        conflict = self.protect & set(explicit_crashes)
        if conflict:
            raise FaultScheduleError(
                f"nodes {sorted(conflict)} are both protected and crashed"
            )
        self._crashes = explicit_crashes

        explicit_downs: Dict[Edge, Tuple[Tuple[float, float], ...]] = {}
        for edge, intervals in (downs or {}).items():
            key = edge_key(edge[0], edge[1])
            explicit_downs[key] = _check_intervals(key, intervals)
        self._downs = explicit_downs

        explicit_drops: Dict[Tuple[NodeId, NodeId], frozenset] = {}
        if drops:
            by_link: Dict[Tuple[NodeId, NodeId], set] = {}
            for (u, v, s) in drops:
                if s < 0:
                    raise FaultScheduleError(
                        f"drop sequence numbers are injection counts >= 0, got {s}"
                    )
                by_link.setdefault((u, v), set()).add(s)
            explicit_drops = {lk: frozenset(ss) for lk, ss in by_link.items()}
        self._drops = explicit_drops

        # Domain-separated sub-seeds: each fault kind draws from its own
        # 64-bit stream so composing kinds never correlates them.
        self._ms_crash = _model_seed(label + ":crash", seed)
        self._ms_down = _model_seed(label + ":down", seed)
        self._ms_drop = _model_seed(label + ":drop", seed)
        self._ms_rejoin = _model_seed(label + ":rejoin", seed)
        self._ms_recur = _model_seed(label + ":recur", seed)
        self._crash_cache: Dict[NodeId, float] = {}
        self._down_cache: Dict[Edge, Optional[_DownFn]] = {}
        self._drop_cache: Dict[Tuple[NodeId, NodeId], Optional[_DropFn]] = {}
        self._rejoin_cache: Dict[NodeId, float] = {}

        # Explicit re-joins validate against the *computed* crash time so a
        # rejoin for a node that never crashes (or one that precedes its own
        # crash) fails at construction, not at draw time.
        explicit_rejoins: Dict[NodeId, float] = {}
        for v, t in (rejoins or {}).items():
            t = float(t)
            if not (isfinite(t) and t >= 0.0):
                raise FaultScheduleError(
                    f"rejoin time for node {v} must be finite and >= 0, got {t!r}"
                )
            crash_t = self.crash_time(v)
            if crash_t == inf:
                raise FaultScheduleError(
                    f"node {v} has a rejoin time but never crashes"
                )
            if t <= crash_t:
                raise FaultScheduleError(
                    f"rejoin time {t!r} for node {v} must exceed its crash "
                    f"time {crash_t!r}"
                )
            explicit_rejoins[v] = t
        self._rejoins = explicit_rejoins

    def __getstate__(self):
        # The checker caches memoize pure functions of the domain-separated
        # seeds — and the down/drop checkers are closures, which don't
        # pickle.  Ship every validated field and start the caches cold: a
        # shard worker's schedule re-derives byte-identical fault decisions
        # on demand (DESIGN.md §14).
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if not name.endswith("_cache")
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._crash_cache = {}
        self._down_cache = {}
        self._drop_cache = {}
        self._rejoin_cache = {}

    # -- queries ---------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the schedule can never produce a fault."""
        return (
            not self._crashes and not self._downs and not self._drops
            and self.crash_rate == 0.0 and self.down_rate == 0.0
            and self.drop_rate == 0.0
        )

    def crash_time(self, v: NodeId) -> float:
        """When node ``v`` crashes (``inf`` = never).  Pure, cached."""
        cached = self._crash_cache.get(v)
        if cached is not None:
            return cached
        if v in self.protect:
            t = inf
        elif v in self._crashes:
            t = self._crashes[v]
        elif self.crash_rate > 0.0:
            base = _link_base(self._ms_crash, v, v)
            if _unit(base, 0) <= self.crash_rate:
                w0, w1 = self.crash_window
                t = w0 + _unit(base, 1) * (w1 - w0)
            else:
                t = inf
        else:
            t = inf
        self._crash_cache[v] = t
        return t

    def crashed_nodes(self, nodes: Iterable[NodeId]) -> List[NodeId]:
        """Nodes among ``nodes`` that ever crash, in ascending order."""
        return sorted(v for v in nodes if self.crash_time(v) < inf)

    def rejoin_time(self, v: NodeId) -> float:
        """When node ``v`` re-joins after its crash (``inf`` = never).

        Pure and cached, like :meth:`crash_time`.  A node that never crashes
        never re-joins; a node that does crash re-joins either at its
        explicit time (validated ``> crash_time(v)`` at construction) or,
        under ``rejoin_rate``, at ``crash + delay`` with the delay drawn
        from ``rejoin_delays`` on the ``:rejoin`` sub-stream — independent
        of the crash draw, so toggling rejoins never perturbs crash times.
        """
        cached = self._rejoin_cache.get(v)
        if cached is not None:
            return cached
        t_crash = self.crash_time(v)
        if t_crash == inf:
            t = inf
        elif v in self._rejoins:
            t = self._rejoins[v]
        elif self.rejoin_rate > 0.0:
            base = _link_base(self._ms_rejoin, v, v)
            if _unit(base, 0) <= self.rejoin_rate:
                r_lo, r_hi = self.rejoin_delays
                t = t_crash + r_lo + _unit(base, 1) * (r_hi - r_lo)
            else:
                t = inf
        else:
            t = inf
        self._rejoin_cache[v] = t
        return t

    def rejoining_nodes(self, nodes: Iterable[NodeId]) -> List[NodeId]:
        """Nodes among ``nodes`` that crash and later re-join, ascending."""
        return sorted(v for v in nodes if self.rejoin_time(v) < inf)

    def has_rejoins(self, nodes: Iterable[NodeId]) -> bool:
        """True when any node in ``nodes`` ever re-joins."""
        return any(self.rejoin_time(v) < inf for v in nodes)

    def down_intervals(self, u: NodeId, v: NodeId) -> Tuple[Tuple[float, float], ...]:
        """Sorted disjoint half-open down intervals for the edge {u, v}."""
        key = edge_key(u, v)
        explicit = self._downs.get(key, ())
        if self.down_rate <= 0.0:
            return explicit
        base = _link_base(self._ms_down, key[0], key[1])
        if _unit(base, 0) > self.down_rate:
            return explicit
        d_lo, d_hi = self.down_lengths
        u_lo, u_hi = self.up_lengths
        out: List[Tuple[float, float]] = []
        # First down starts after a seeded up-phase so t=0 edges are live.
        t = _unit(base, 1) * u_hi
        k = 2
        while t < self.horizon:
            d = d_lo + _unit(base, k) * (d_hi - d_lo)
            out.append((t, t + d))
            t += d + u_lo + _unit(base, k + 1) * (u_hi - u_lo)
            k += 2
        if explicit:
            merged = sorted(out + list(explicit))
            return _check_intervals(key, merged)
        return tuple(out)

    def down_checker(self, u: NodeId, v: NodeId) -> Optional[_DownFn]:
        """``f(t) -> end`` if the edge is down at ``t`` (else 0.0); None if never down.

        Half-open semantics: down iff ``start <= t < end``, so at ``t ==
        end`` the edge is up and a deferred event re-fired at ``end`` makes
        progress (no infinite deferral).
        """
        key = edge_key(u, v)
        cached = self._down_cache.get(key, False)
        if cached is not False:
            return cached
        intervals = self.down_intervals(u, v)
        if not intervals:
            self._down_cache[key] = None
            return None

        if self.recurrent:
            # Recurrent mode: the base train repeats with a per-link seeded
            # period strictly greater than its span (span + a draw from
            # up_lengths on the ``:recur`` sub-stream), so the link flaps
            # for the whole run.  Fold ``t`` into ``[0, period)`` and map
            # the deferral target back out — half-open semantics survive
            # the fold, so a deferred event re-fired at ``e + k*period``
            # still makes progress.
            base = _link_base(self._ms_recur, key[0], key[1])
            u_lo, u_hi = self.up_lengths
            span = intervals[-1][1]
            period = span + u_lo + _unit(base, 0) * (u_hi - u_lo)

            def checker_recurrent(
                t: float,
                _iv: Tuple[Tuple[float, float], ...] = intervals,
                _p: float = period,
            ) -> float:
                k = int(t // _p)
                t0 = t - k * _p
                for s, e in _iv:
                    if t0 < s:
                        return 0.0
                    if t0 < e:
                        return e + k * _p
                return 0.0

            self._down_cache[key] = checker_recurrent
            return checker_recurrent

        def checker(t: float, _iv: Tuple[Tuple[float, float], ...] = intervals) -> float:
            for s, e in _iv:
                if t < s:
                    return 0.0
                if t < e:
                    return e
            return 0.0

        self._down_cache[key] = checker
        return checker

    def drop_checker(self, u: NodeId, v: NodeId) -> Optional[_DropFn]:
        """``f(seq) -> bool`` for drops on the directed link u -> v; None if never."""
        lk = (u, v)
        cached = self._drop_cache.get(lk, False)
        if cached is not False:
            return cached
        explicit = self._drops.get(lk)
        rate = self.drop_rate
        if rate <= 0.0:
            if explicit is None:
                self._drop_cache[lk] = None
                return None

            def checker_explicit(seq: int, _ex: frozenset = explicit) -> bool:
                return seq in _ex

            self._drop_cache[lk] = checker_explicit
            return checker_explicit
        base = _link_base(self._ms_drop, u, v)
        if explicit is None:

            def checker_rate(seq: int, _b: int = base, _r: float = rate) -> bool:
                return _unit(_b, seq) <= _r

            self._drop_cache[lk] = checker_rate
            return checker_rate

        def checker_both(seq: int, _b: int = base, _r: float = rate,
                         _ex: frozenset = explicit) -> bool:
            return seq in _ex or _unit(_b, seq) <= _r

        self._drop_cache[lk] = checker_both
        return checker_both

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultSchedule(seed={self.seed}, label={self.label!r}, "
            f"crash_rate={self.crash_rate}, down_rate={self.down_rate}, "
            f"drop_rate={self.drop_rate}, rejoin_rate={self.rejoin_rate}, "
            f"recurrent={self.recurrent}, explicit={len(self._crashes)}c/"
            f"{len(self._downs)}d/{len(self._drops)}x/{len(self._rejoins)}r)"
        )
