"""Deterministic topology generators.

Every generator is a pure function of its parameters (including the ``seed``
for randomized families), so experiments and failing tests are exactly
reproducible.  The families cover the regimes the paper's analysis
distinguishes: low-diameter dense graphs (where synchronizer message overhead
dominates), high-diameter sparse graphs (paths, cycles, grids — where time
overhead dominates), and trees (where the m ≈ n regime stresses the Õ(m)
message claims).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Edge, Graph, edge_key

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "torus_graph",
    "balanced_tree",
    "caterpillar_graph",
    "hypercube_graph",
    "barbell_graph",
    "lollipop_graph",
    "random_tree",
    "erdos_renyi_graph",
    "random_regular_graph",
    "random_geometric_like_graph",
    "with_random_weights",
    "TOPOLOGY_FAMILIES",
    "make_topology",
]


def path_graph(n: int) -> Graph:
    """Path 0-1-2-...-(n-1); diameter n-1."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle on n >= 3 nodes; diameter floor(n/2)."""
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(n: int) -> Graph:
    """Star with center 0 and n-1 leaves; diameter 2."""
    if n < 2:
        raise ValueError("star needs at least 2 nodes")
    return Graph(n, [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> Graph:
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols grid; node (r, c) has id r*cols + c."""
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1))
            if r + 1 < rows:
                edges.append((u, u + cols))
    return Graph(rows * cols, edges)


def torus_graph(rows: int, cols: int) -> Graph:
    """Grid with wraparound edges in both dimensions."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs at least 3 rows and 3 columns")
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            edges.append((u, r * cols + (c + 1) % cols))
            edges.append((u, ((r + 1) % rows) * cols + c))
    return Graph(rows * cols, edges)


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete ``branching``-ary tree of the given height (height 0 = one node)."""
    if branching < 1:
        raise ValueError("branching factor must be >= 1")
    edges: List[Edge] = []
    nodes = 1
    frontier = [0]
    for _ in range(height):
        next_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = nodes
                nodes += 1
                edges.append((parent, child))
                next_frontier.append(child)
        frontier = next_frontier
    return Graph(nodes, edges)


def caterpillar_graph(spine: int, legs_per_node: int) -> Graph:
    """A path of length ``spine`` with ``legs_per_node`` leaves on each spine node."""
    edges: List[Edge] = [(i, i + 1) for i in range(spine - 1)]
    next_id = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            edges.append((i, next_id))
            next_id += 1
    return Graph(next_id, edges)


def hypercube_graph(dimension: int) -> Graph:
    n = 1 << dimension
    edges = [(u, u ^ (1 << b)) for u in range(n) for b in range(dimension)]
    return Graph(n, edges)


def barbell_graph(clique_size: int, bridge_length: int) -> Graph:
    """Two cliques joined by a path — dense ends, high-diameter middle."""
    k = clique_size
    edges: List[Edge] = []
    edges.extend((i, j) for i in range(k) for j in range(i + 1, k))
    offset = k + bridge_length
    edges.extend((offset + i, offset + j) for i in range(k) for j in range(i + 1, k))
    chain = [k - 1] + [k + i for i in range(bridge_length)] + [offset]
    edges.extend((chain[i], chain[i + 1]) for i in range(len(chain) - 1))
    return Graph(2 * k + bridge_length, edges)


def lollipop_graph(clique_size: int, tail_length: int) -> Graph:
    k = clique_size
    edges: List[Edge] = [(i, j) for i in range(k) for j in range(i + 1, k)]
    chain = [k - 1] + [k + i for i in range(tail_length)]
    edges.extend((chain[i], chain[i + 1]) for i in range(len(chain) - 1))
    return Graph(k + tail_length, edges)


def random_tree(n: int, seed: int) -> Graph:
    """Uniform-ish random tree: node i attaches to a random earlier node."""
    rng = random.Random(("tree", n, seed).__repr__())  # det: ignore[DET002] -- RNG seeded solely from the explicit (kind, n, seed) key; topology construction is reproducible and happens before any run draws entropy
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    return Graph(n, edges)


def erdos_renyi_graph(n: int, p: float, seed: int) -> Graph:
    """G(n, p) conditioned to be connected by adding a random tree skeleton."""
    rng = random.Random(("gnp", n, p, seed).__repr__())  # det: ignore[DET002] -- RNG seeded solely from the explicit (kind, n, p, seed) key; reproducible construction-time randomness, not run-time entropy
    edges = {edge_key(rng.randrange(i), i) for i in range(1, n)}
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                edges.add((i, j))
    return Graph(n, edges)


def random_regular_graph(n: int, degree: int, seed: int) -> Graph:
    """Connected d-regular-ish multigraph via repeated pairing, deduplicated.

    Uses the configuration model with rejection of self-loops/duplicates;
    falls back to leaving a node at degree < d when pairing stalls, and adds a
    cycle skeleton to guarantee connectivity.  Good expander-like graphs for
    the low-diameter regime; exact regularity is not needed by any experiment.
    """
    if n * degree % 2 != 0:
        raise ValueError("n * degree must be even")
    rng = random.Random(("reg", n, degree, seed).__repr__())  # det: ignore[DET002] -- RNG seeded solely from the explicit (kind, n, degree, seed) key; reproducible construction-time randomness, not run-time entropy
    edges = {edge_key(i, (i + 1) % n) for i in range(n)} if n >= 3 else {(0, 1)}
    stubs = [v for v in range(n) for _ in range(degree)]
    for _ in range(20):
        rng.shuffle(stubs)
        leftovers: List[int] = []
        for a, b in zip(stubs[::2], stubs[1::2]):
            if a == b or edge_key(a, b) in edges:
                leftovers.extend((a, b))
            else:
                edges.add(edge_key(a, b))
        stubs = leftovers
        if len(stubs) < 2:
            break
    return Graph(n, edges)


def random_geometric_like_graph(n: int, radius: float, seed: int) -> Graph:
    """Unit-square geometric graph plus a tree skeleton for connectivity."""
    rng = random.Random(("geo", n, radius, seed).__repr__())  # det: ignore[DET002] -- RNG seeded solely from the explicit (kind, n, radius, seed) key; reproducible construction-time randomness, not run-time entropy
    points = [(rng.random(), rng.random()) for _ in range(n)]
    edges = {edge_key(rng.randrange(i), i) for i in range(1, n)}
    r2 = radius * radius
    for i in range(n):
        xi, yi = points[i]
        for j in range(i + 1, n):
            xj, yj = points[j]
            if (xi - xj) ** 2 + (yi - yj) ** 2 <= r2:
                edges.add((i, j))
    return Graph(n, edges)


def with_random_weights(
    graph: Graph, seed: int, low: float = 1.0, high: float = 100.0
) -> Graph:
    """Distinct random edge weights (unique => the MST is unique)."""
    rng = random.Random(("weights", graph.num_nodes, seed).__repr__())  # det: ignore[DET002] -- RNG seeded solely from the explicit (kind, n, seed) key; reproducible construction-time randomness, not run-time entropy
    edges = sorted(graph.edges)
    base = rng.sample(range(1, len(edges) * 1000 + 1), len(edges))
    span = high - low
    top = max(len(edges) * 1000, 1)
    weights = {e: low + span * b / top for e, b in zip(edges, base)}
    return graph.with_weights(weights)


TOPOLOGY_FAMILIES = (
    "path",
    "cycle",
    "star",
    "grid",
    "torus",
    "tree",
    "caterpillar",
    "hypercube",
    "barbell",
    "er_sparse",
    "er_dense",
    "regular",
    "complete",
)


def make_topology(family: str, n: int, seed: int = 0) -> Graph:
    """Build a member of a named family with ~n nodes (exact n where possible)."""
    if family == "path":
        return path_graph(n)
    if family == "cycle":
        return cycle_graph(max(n, 3))
    if family == "star":
        return star_graph(max(n, 2))
    if family == "grid":
        side = max(2, round(n ** 0.5))
        return grid_graph(side, side)
    if family == "torus":
        side = max(3, round(n ** 0.5))
        return torus_graph(side, side)
    if family == "tree":
        return random_tree(n, seed)
    if family == "caterpillar":
        spine = max(2, n // 3)
        return caterpillar_graph(spine, 2)
    if family == "hypercube":
        dim = max(1, n.bit_length() - 1)
        return hypercube_graph(dim)
    if family == "barbell":
        k = max(3, n // 3)
        return barbell_graph(k, n - 2 * k if n > 2 * k else 1)
    if family == "er_sparse":
        return erdos_renyi_graph(n, min(1.0, 2.0 / n), seed)
    if family == "er_dense":
        return erdos_renyi_graph(n, min(1.0, 8.0 / n), seed)
    if family == "regular":
        d = 4 if n * 4 % 2 == 0 else 5
        return random_regular_graph(n, d, seed)
    if family == "complete":
        return complete_graph(n)
    raise ValueError(f"unknown topology family {family!r}")
