"""Process-pool sweep executor: fan replay cells across cores (DESIGN.md §14).

Every experiment in the paper is a sweep of independent replay cells — one
immutable ``(graph, program)`` skeleton under a family of delay models (or
seeds).  The cells share everything expensive (cover, registry views, pulse
tables, link skeleton) and nothing mutable, so they parallelize perfectly:
this module ships the shared bundle to each pool worker **exactly once**
(pickled once per worker under ``spawn``, inherited copy-on-write under
``fork``) and streams back one compact :class:`CellSummary` per cell.

The determinism contract, in order of importance:

* **Merged output is worker-independent.**  Workers complete in load-
  dependent order; summaries are re-sorted by their cell ``index`` before
  anything downstream sees them, so completion order can never reach a
  digest (the one ordering hazard multiprocessing adds).
* **Byte-identity with the serial engine.**  Each worker runs its cells
  through the untouched :class:`~repro.net.sweep.AsyncSweep` fast path over
  the parent's shipped :class:`~repro.net.async_runtime.LinkSkeleton` — the
  link-id assignment travels with the bundle, it is never re-derived — so a
  cell's outputs digest and message counts equal the serial ``run_all``'s,
  pinned by the equivalence suite (``tests/test_shard.py``).
* **``jobs=1`` is the untouched in-process loop** — same iteration, same
  :func:`~repro.net.sweep.paused_gc` discipline as
  :func:`~repro.net.sweep.run_models`, no pool, no pickling — so 1-core CI
  runners and the serial baselines pay zero overhead.

Wall-clock fields (``CellSummary.wall``) are *reporting metadata*: they are
excluded from :meth:`CellSummary.comparable` and never feed schedules,
merge order, or digests.
"""

from __future__ import annotations

import gc
import hashlib
import multiprocessing
import os
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Protocol

from .sweep import REPLAYS_PER_COLLECT, paused_gc


def digest_outputs(outputs: Dict[Any, Any]) -> str:
    """Canonical 16-hex digest of an outputs map.

    The exact formula ``benchmarks/perf_regression.py`` has pinned in
    ``BENCH_core.json`` since PR 2 (sorted items, ``repr``, sha256/16) —
    defined here so the sharded and serial paths share one implementation
    and a worker-side digest is comparable to a committed baseline digest.
    """
    return hashlib.sha256(
        repr(sorted(outputs.items())).encode()
    ).hexdigest()[:16]


@dataclass(frozen=True)
class CellSummary:
    """Compact, picklable result of one replay cell.

    Everything the benchmark and equivalence layers consume — counts, times
    and the outputs digest — without the outputs map itself, so result
    traffic back from workers stays a few hundred bytes per cell regardless
    of n.
    """

    index: int
    messages: int
    acks: int
    events_fired: int
    dropped: int
    time_to_output: float
    time_to_quiescence: float
    outputs_digest: str
    stop_reason: str
    #: Worker-side wall seconds for this cell — reporting metadata only.
    wall: float

    def comparable(self) -> tuple:
        """Every deterministic field — everything except the wall clock."""
        return (
            self.index,
            self.messages,
            self.acks,
            self.events_fired,
            self.dropped,
            self.time_to_output,
            self.time_to_quiescence,
            self.outputs_digest,
            self.stop_reason,
        )


def summarize(index: int, result: Any, wall: float = 0.0) -> CellSummary:
    """Fold one replay result into a :class:`CellSummary`.

    Accepts an :class:`~repro.net.async_runtime.AsyncResult` directly, or
    any outcome wrapper carrying one as ``.result`` (the protocol layer's
    ``BFSOutcome``).
    """
    result = getattr(result, "result", result)
    return CellSummary(
        index=index,
        messages=result.messages,
        acks=result.acks,
        events_fired=result.events_fired,
        dropped=result.dropped,
        time_to_output=result.time_to_output,
        time_to_quiescence=result.time_to_quiescence,
        outputs_digest=digest_outputs(result.outputs),
        stop_reason=result.stop_reason,
        wall=wall,
    )


def run_timed(index: int, run: Callable[[], Any]) -> CellSummary:
    """Run one cell and summarize it with its worker-side wall time."""
    t0 = perf_counter()  # det: ignore[DET002] -- wall-clock is CellSummary reporting metadata only: excluded from comparable(), never feeds schedules, merge order, or digests
    result = run()
    wall = perf_counter() - t0  # det: ignore[DET002] -- wall-clock is CellSummary reporting metadata only: excluded from comparable(), never feeds schedules, merge order, or digests
    return summarize(index, result, wall)


class CellBundle(Protocol):
    """What :func:`run_sharded` needs from a bundle of replay cells.

    A bundle is the *entire* per-worker shipment: it must be picklable
    (``spawn``) or fork-inheritable, carry all shared immutable state, and
    evaluate any one cell by index.  ``repro.core.sweep`` provides the
    protocol-level implementation over ``SynchronizerSweep`` /
    ``ThresholdedBFSSweep``.
    """

    def __len__(self) -> int: ...

    def run_cell(self, index: int) -> CellSummary: ...


def default_jobs() -> int:
    """One worker per visible core; 1 on hosts that cannot say."""
    return max(1, os.cpu_count() or 1)


def preferred_start_method() -> str:
    """``fork`` where the platform offers it (zero-copy bundle shipment),
    otherwise whatever the platform prefers (``spawn`` on Windows/macOS)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


# Per-worker bundle slot: installed exactly once by the pool initializer
# (``initargs`` pickles it once per worker under ``spawn``; under ``fork``
# the closure-free initializer just inherits the parent's object).  Tasks
# then carry only a cell index each way.
_WORKER_BUNDLE: Optional[CellBundle] = None


def _init_worker(bundle: CellBundle) -> None:
    """Install the shared bundle in this worker — and normalize GC.

    A ``fork`` inside a :func:`~repro.net.sweep.paused_gc` window (a parent
    mid-``run_models``) would hand the child a *permanently* disabled
    collector: the parent's re-enabling ``finally`` never runs here.  The
    worker is a fresh replay context, so GC starts enabled unconditionally;
    each cell then manages its own pause exactly as the serial engine does.
    """
    global _WORKER_BUNDLE
    if not gc.isenabled():
        gc.enable()
    _WORKER_BUNDLE = bundle


def _run_cell(index: int) -> CellSummary:
    bundle = _WORKER_BUNDLE
    assert bundle is not None, "pool worker used before _init_worker ran"
    return bundle.run_cell(index)


def run_serial(bundle: CellBundle) -> List[CellSummary]:
    """The untouched in-process loop: every cell, in order, one GC pause.

    Byte-for-byte the :func:`~repro.net.sweep.run_models` discipline —
    sweep-wide pause, explicit collect every
    :data:`~repro.net.sweep.REPLAYS_PER_COLLECT` replays — so ``jobs=1``
    changes nothing about how serial sweeps have always run.
    """
    with paused_gc():
        summaries: List[CellSummary] = []
        for index in range(len(bundle)):
            if index and index % REPLAYS_PER_COLLECT == 0:
                gc.collect()
            summaries.append(bundle.run_cell(index))
        return summaries


def run_sharded(
    bundle: CellBundle,
    jobs: Optional[int] = None,
    start_method: Optional[str] = None,
) -> List[CellSummary]:
    """Evaluate every cell of ``bundle``; return summaries in index order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` (or a single cell)
    short-circuits to :func:`run_serial` with no pool and no pickling.
    With ``jobs >= 2`` a ``multiprocessing.Pool`` is created — **outside**
    any GC pause, see :func:`_init_worker` — the bundle ships once per
    worker, cells stream through ``imap_unordered`` (a worker picks up its
    next cell the moment it finishes one), and the summaries are sorted by
    cell index before returning: the merge order is canonical and worker-
    independent, so scheduling jitter can never reach a digest.
    """
    num_cells = len(bundle)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or num_cells <= 1:
        return run_serial(bundle)
    ctx = multiprocessing.get_context(start_method or preferred_start_method())
    with ctx.Pool(
        processes=min(jobs, num_cells),
        initializer=_init_worker,
        initargs=(bundle,),
    ) as pool:
        summaries = list(pool.imap_unordered(_run_cell, range(num_cells)))
    summaries.sort(key=lambda s: s.index)
    return summaries
