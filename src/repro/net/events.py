"""A minimal deterministic discrete-event scheduler over typed event records.

Events fire in (time, sequence) order; the sequence number is assigned at
scheduling time, so simultaneous events fire in the order they were created.
This makes every simulation a pure function of (graph, protocol, delay model).

Performance architecture (DESIGN.md §6): the heap holds small *typed records*
instead of closures.  A record is a tuple

    ``(time, seq, kind, a, b, ...)``

whose first two fields give the total order (``seq`` is unique, so comparison
never reaches the payload fields) and whose ``kind`` tag selects the handler
in a single dispatch loop.  :data:`EV_CALLBACK` records carry a zero-argument
callable in field ``a`` and are what :meth:`EventQueue.schedule` produces;
other kinds are owned by engines that embed the queue — the asynchronous
transport (:mod:`repro.net.async_runtime`) inlines its own loop over the same
record layout and dispatches :data:`EV_DELIVER`/:data:`EV_ACK` records without
allocating a closure per message.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]

#: Record kinds.  ``EV_CALLBACK`` is handled by :class:`EventQueue` itself;
#: the transport kinds are dispatched by :class:`~repro.net.async_runtime.
#: AsyncRuntime`'s inlined run loop (which subclasses this queue).
EV_CALLBACK = 0
EV_DELIVER = 1
EV_ACK = 2


class EventQueue:
    """Priority queue of typed event records with deterministic tie-breaks."""

    __slots__ = ("_heap", "_counter", "_now", "_fired")

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        # itertools.count hands out sequence numbers at C speed (the
        # read-increment-write of a plain int attribute costs twice as much
        # on the hot path).
        self._counter = count()
        self._now = 0.0
        self._fired = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def fired(self) -> int:
        return self._fired

    def schedule(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` at ``now + delay`` (delay must be >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._counter), EV_CALLBACK, callback)
        )

    def schedule_at(self, time: float, callback: Callback) -> None:
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        heapq.heappush(
            self._heap, (time, next(self._counter), EV_CALLBACK, callback)
        )

    def dispatch(self, record: Tuple) -> None:
        """Handle a non-callback record; engines embedding the queue override."""
        raise ValueError(f"no handler for event kind {record[2]!r}")

    def step(self) -> bool:
        """Fire the earliest event; returns False when the queue is empty."""
        if not self._heap:
            return False
        record = heapq.heappop(self._heap)
        self._now = record[0]
        self._fired += 1
        if record[2] == EV_CALLBACK:
            record[3]()
        else:
            self.dispatch(record)
        return True

    def run(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> str:
        """Run until quiescence, the time horizon, or the event budget.

        Returns one of ``"quiescent"``, ``"max_time"``, ``"max_events"``.
        """
        heap = self._heap
        pop = heapq.heappop
        budget = max_events
        while heap:
            if max_time is not None and heap[0][0] > max_time:
                return "max_time"
            if budget is not None:
                if budget == 0:
                    return "max_events"
                budget -= 1
            record = pop(heap)
            self._now = record[0]
            self._fired += 1
            if record[2] == EV_CALLBACK:
                record[3]()
            else:
                self.dispatch(record)
        return "quiescent"
