"""A minimal deterministic discrete-event scheduler over packed-int records.

Events fire in (time, sequence) order; the sequence number is assigned at
scheduling time, so simultaneous events fire in the order they were created.
This makes every simulation a pure function of (graph, protocol, delay model).

Performance architecture (DESIGN.md §6, §9): the heap holds small records
whose third field is one packed int

    ``code = (kind << LINK_BITS) | link_id``

so the common transport record is the 3-tuple ``(time, seq, code)`` — the
first two fields give the total order (``seq`` is unique, so comparison
never reaches ``code``), and a single integer both selects the handler and
names the directed link.  Payloads and pre-drawn acknowledgment delays ride
in per-link *side slots* owned by the engine instead of in the tuple
(DESIGN.md §9), so scheduling a message allocates one 3-slot tuple instead
of the 7-slot records of earlier revisions.

Record kinds, ordered so the hottest dispatch tests take the fewest
comparisons (codes for higher kinds are strictly larger, and the two
hottest kinds — packed deliveries and bare acknowledgments — sit at the
top):

* :data:`EV_CALLBACK` (kind 0, code exactly 0) — a zero-argument callable in
  field 3; what :meth:`EventQueue.schedule` produces.
* :data:`EV_DELIVER_PAYLOAD` (kind 1) — the rare "fat" delivery
  ``(time, seq, code, payload, inj_seq, ack_delay)`` used when the link's
  delivery slot is already occupied (only possible during the
  ``on_delivered`` double-inject race, see :mod:`repro.net.async_runtime`).
* :data:`EV_ACK_PAYLOAD` (kind 2) — ``(time, seq, code, payload)``: an
  acknowledgment whose sender wants the ``on_delivered`` callback (decided
  once at delivery time, so dispatch re-checks nothing).
* :data:`EV_ACK` (kind 3) — the bare acknowledgment ``(time, seq, code)``:
  frees the link and drains its outbox, nothing else.
* :data:`EV_DELIVER` (kind 4) — the packed fast path ``(time, seq, code)``;
  payload and pre-drawn ack delay sit in the engine's side slots for the
  link.

The transport kinds are dispatched by
:class:`~repro.net.async_runtime.AsyncRuntime`'s inlined run loop (which
subclasses this queue); :class:`EventQueue` itself only ever fires
:data:`EV_CALLBACK` records.
"""

from __future__ import annotations

import heapq
from itertools import count
from math import inf
from typing import Callable, List, Optional, Tuple

from .delays import InvalidDelayError

Callback = Callable[[], None]

#: Bits reserved for the link id inside a packed record code.  2^24 directed
#: links (8M undirected edges) is far beyond anything the pure-Python engine
#: can run; :class:`~repro.net.async_runtime.LinkSkeleton` guards the bound.
LINK_BITS = 24
LINK_MASK = (1 << LINK_BITS) - 1

#: Record kinds (``code >> LINK_BITS``).  ``EV_CALLBACK`` is handled by
#: :class:`EventQueue` itself; see the module docstring for the layouts.
EV_CALLBACK = 0
EV_DELIVER_PAYLOAD = 1
EV_ACK_PAYLOAD = 2
EV_ACK = 3
EV_DELIVER = 4

#: Code bases: a record's code is ``BASE + link_id``.  Kind tests compare
#: codes against these bases directly — ``code >= CODE_DELIVER`` is "packed
#: delivery", the hottest kind, decided in one comparison.
CODE_DELIVER_PAYLOAD = EV_DELIVER_PAYLOAD << LINK_BITS
CODE_ACK_PAYLOAD = EV_ACK_PAYLOAD << LINK_BITS
CODE_ACK = EV_ACK << LINK_BITS
CODE_DELIVER = EV_DELIVER << LINK_BITS


class EventQueue:
    """Priority queue of packed-int event records with deterministic ties."""

    __slots__ = ("_heap", "_counter", "_now", "_fired")

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        # itertools.count hands out sequence numbers at C speed (the
        # read-increment-write of a plain int attribute costs twice as much
        # on the hot path).
        self._counter = count()
        self._now = 0.0
        self._fired = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def fired(self) -> int:
        return self._fired

    def schedule(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` at ``now + delay`` (delay must be >= 0, finite)."""
        # Written as a membership test so NaN (every comparison False) and
        # +inf fail it too, not just negative delays: a non-finite time in
        # the heap silently corrupts (time, seq) ordering for every later
        # event, so fail loudly with a named error at scheduling time.
        if not 0.0 <= delay < inf:
            raise InvalidDelayError(f"invalid delay {delay!r} (must be finite, >= 0)")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._counter), EV_CALLBACK, callback)
        )

    def schedule_at(self, time: float, callback: Callback) -> None:
        if not self._now <= time < inf:
            raise InvalidDelayError(
                f"invalid event time {time!r} (must be finite, >= now={self._now})"
            )
        heapq.heappush(
            self._heap, (time, next(self._counter), EV_CALLBACK, callback)
        )

    def dispatch(self, record: Tuple) -> None:
        """Handle a non-callback record; engines embedding the queue override."""
        raise ValueError(
            f"no handler for event kind {record[2] >> LINK_BITS!r}"
        )

    def step(self) -> bool:
        """Fire the earliest event; returns False when the queue is empty."""
        if not self._heap:
            return False
        record = heapq.heappop(self._heap)
        self._now = record[0]
        self._fired += 1
        if record[2] == EV_CALLBACK:
            record[3]()
        else:
            self.dispatch(record)
        return True

    def run(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> str:
        """Run until quiescence, the time horizon, or the event budget.

        Returns one of ``"quiescent"``, ``"max_time"``, ``"max_events"``.
        """
        heap = self._heap
        pop = heapq.heappop
        budget = max_events
        while heap:
            if max_time is not None and heap[0][0] > max_time:
                return "max_time"
            if budget is not None:
                if budget == 0:
                    return "max_events"
                budget -= 1
            record = pop(heap)
            self._now = record[0]
            self._fired += 1
            if record[2] == EV_CALLBACK:
                record[3]()
            else:
                self.dispatch(record)
        return "quiescent"
