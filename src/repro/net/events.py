"""A minimal deterministic discrete-event scheduler.

Events fire in (time, sequence) order; the sequence number is assigned at
scheduling time, so simultaneous events fire in the order they were created.
This makes every simulation a pure function of (graph, protocol, delay model).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

Callback = Callable[[], None]


class EventQueue:
    """Priority queue of (time, seq, callback) with deterministic tie-breaks."""

    __slots__ = ("_heap", "_seq", "_now", "_fired")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = 0
        self._now = 0.0
        self._fired = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def fired(self) -> int:
        return self._fired

    def schedule(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` at ``now + delay`` (delay must be >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, time: float, callback: Callback) -> None:
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def step(self) -> bool:
        """Fire the earliest event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self._now = time
        self._fired += 1
        callback()
        return True

    def run(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> str:
        """Run until quiescence, the time horizon, or the event budget.

        Returns one of ``"quiescent"``, ``"max_time"``, ``"max_events"``.
        """
        budget = max_events
        while self._heap:
            if max_time is not None and self._heap[0][0] > max_time:
                return "max_time"
            if budget is not None:
                if budget == 0:
                    return "max_events"
                budget -= 1
            self.step()
        return "quiescent"
