"""Plain-text result tables shared by the benchmark harness and EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class Series:
    """One experiment's table: named columns, one row per parameter point."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def format_table(title: str, columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in cells)) if cells else len(str(col))
        for i, col in enumerate(columns)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(c).rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
