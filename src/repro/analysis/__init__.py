"""Analysis helpers: scaling fits and benchmark report tables."""

from .fits import fit_power_law, fit_polylog_exponent, growth_ratios
from .tables import Series, format_table

__all__ = [
    "fit_power_law",
    "fit_polylog_exponent",
    "growth_ratios",
    "Series",
    "format_table",
]
