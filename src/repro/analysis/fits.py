"""Scaling-shape estimators for the experiment harness.

The paper's claims are asymptotic (polylog overheads, Õ(m) messages); the
benchmarks check the *shape* of measured series.  Two fits:

* :func:`fit_power_law` — least-squares slope of log y against log x: a
  series that is truly polylogarithmic in n has a power-law exponent that
  decays toward 0 as n grows; a linear-overhead series has exponent ≈ 1.
* :func:`fit_polylog_exponent` — least-squares slope of log y against
  log log x: the "k" in y ≈ c·log^k x.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def _least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var = sum((x - mean_x) ** 2 for x in xs)
    if var == 0:
        raise ValueError("degenerate x values")
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = cov / var
    intercept = mean_y - slope * mean_x
    return slope, intercept


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Fit y ≈ c·x^a; returns (a, c)."""
    for value in list(xs) + list(ys):
        if value <= 0:
            raise ValueError("power-law fit needs positive data")
    slope, intercept = _least_squares_slope(
        [math.log(x) for x in xs], [math.log(y) for y in ys]
    )
    return slope, math.exp(intercept)


def fit_polylog_exponent(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Fit y ≈ c·(log2 x)^k; returns (k, c)."""
    logs = [math.log2(x) for x in xs]
    for value in logs:
        if value <= 1:
            raise ValueError("polylog fit needs x > 2")
    slope, intercept = _least_squares_slope(
        [math.log(lx) for lx in logs], [math.log(y) for y in ys]
    )
    return slope, math.exp(intercept)


def growth_ratios(ys: Sequence[float]) -> List[float]:
    """Consecutive ratios y[i+1]/y[i] — doubling-sweep growth factors."""
    if len(ys) < 2:
        raise ValueError("need at least two points")
    return [b / a for a, b in zip(ys, ys[1:])]
