"""``python -m repro.check`` — see :mod:`repro.check.cli`."""

import sys

from .cli import main

sys.exit(main())
