"""repro.check — bounded stateless model checking with DPOR (DESIGN.md §13).

Drives the transport's :class:`~repro.net.async_runtime.ScheduleController`
hook through every inequivalent delivery interleaving of a small workload,
checks invariant probes after each step, and ships violations as
minimized, bit-exactly replayable traces.  The third determinism
enforcement axis next to the dynamic equivalence suites and the static
``repro.lint`` pass: exhaustive at small n.
"""

from .explorer import ExploreReport, explore, explore_all, run_execution
from .invariants import InvariantViolation, Probe
from .scheduler import (
    DFSController,
    PreferenceController,
    ReplayController,
    ReplayMismatch,
    event_key,
)
from .trace import load_trace, make_trace, replay, save_trace, shrink
from .workloads import Workload, build_workload, expand_workloads

__all__ = [
    "DFSController",
    "ExploreReport",
    "InvariantViolation",
    "PreferenceController",
    "Probe",
    "ReplayController",
    "ReplayMismatch",
    "Workload",
    "build_workload",
    "event_key",
    "expand_workloads",
    "explore",
    "explore_all",
    "load_trace",
    "make_trace",
    "replay",
    "run_execution",
    "save_trace",
    "shrink",
]
