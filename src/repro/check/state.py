"""Canonical state fingerprints for convergence dedup (DESIGN.md §13).

The synchronizer stack is *designed* to be arrival-order-insensitive
inside a wave — which means most of the race points DPOR must branch on
reconverge to the same protocol state two steps later.  A purely
stateless search still pays the exponential diamond; the explorer
therefore fingerprints the full observable state at every decision point
and explores each state's continuation once.  Together with the DFS
ordering (a state is only ever revisited after its first occurrence's
subtree completed), this turns the exploration tree into a DAG without
losing coverage.

What the fingerprint includes: the crashed and rejoined sets, the
enabled synthetic actions (crash/rejoin/detect/alive), per-link
transport state (busy/pending/injection counters,
outbox contents in pop order, in-flight payloads in FIFO order) and every
process's protocol state (walked structurally).  What it deliberately
excludes — and why exclusion is sound:

* **timestamps** (record times, ``_now``, output times) — controlled
  runs are untimed: no dispatch decision or protocol branch reads a
  clock, so states differing only in times behave identically;
* **scheduling sequence numbers** — identities, not state; FIFO/outbox
  *order* is kept, the numbers themselves are normalized away;
* **static configuration** — graph, covers, specs, delay models, link
  tables: pure functions of the workload, identical in every state.

Fingerprints are SHA-256 digests of a canonical JSON encoding (hashlib,
not ``hash()``: per-process salting must never touch the dedup set).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Tuple

from ..net.async_runtime import (
    CODE_ACK,
    CODE_ACK_PAYLOAD,
    CODE_DELIVER,
    CODE_DELIVER_PAYLOAD,
    CTRL_ALIVE,
    CTRL_CRASH,
    CTRL_DETECT,
    CTRL_REJOIN,
    AsyncRuntime,
    ControlledEvent,
)

#: Attribute names that point at static configuration or the runtime
#: back-reference; walking them would either hash immutable bulk on every
#: step or recurse into the engine (captured separately).
_SKIP_ATTRS = frozenset((
    "ctx", "registry", "info", "infos", "spec", "graph", "clusters_static",
))

#: Types never walked: static by construction.
_SKIP_MODULES = frozenset((
    "repro.net.delays", "repro.net.graph", "repro.covers.cover",
    "repro.net.program",
))


def _slot_names(cls: type) -> List[str]:
    names: List[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    return names


def _canon_key(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def canon(obj: Any, memo: Dict[int, int]) -> Any:
    """Canonicalize an object graph into JSON-encodable structure.

    ``memo`` breaks cycles and shares repeated sub-objects: keyed by
    object identity, valued by first-visit index.  The index is pure
    traversal order — deterministic — so the address itself never leaks
    into the encoding.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", repr(obj)]
    if isinstance(obj, bytes):
        return ["b", obj.hex()]
    if isinstance(obj, (list, tuple)):
        return ["t", [canon(x, memo) for x in obj]]
    if isinstance(obj, (set, frozenset)):
        items = [canon(x, memo) for x in obj]
        items.sort(key=_canon_key)
        return ["s", items]
    if isinstance(obj, dict):
        entries = [[canon(k, memo), canon(v, memo)] for k, v in obj.items()]
        entries.sort(key=lambda kv: _canon_key(kv[0]))
        return ["d", entries]
    if callable(obj):
        return ["fn"]
    cls = type(obj)
    if cls.__module__ in _SKIP_MODULES:
        return ["x", cls.__name__]
    # Identity keys a cycle-breaking memo only; the emitted value is the
    # deterministic traversal-order index, never the address.
    ident = id(obj)
    seen = memo.get(ident)
    if seen is not None:
        return ["ref", seen]
    memo[ident] = len(memo)
    fields: List[List[Any]] = []
    names = _slot_names(cls)
    inst = getattr(obj, "__dict__", None)
    if inst is not None:
        names = list(names) + sorted(inst)
    emitted = set()
    for name in names:
        if name in emitted or name in _SKIP_ATTRS or name.startswith("__"):
            continue
        emitted.add(name)
        try:
            value = getattr(obj, name)
        except AttributeError:
            continue
        if callable(value):
            continue
        fields.append([name, canon(value, memo)])
    fields.sort(key=lambda nv: nv[0])
    return ["o", cls.__name__, fields]


def fingerprint(
    runtime: AsyncRuntime, events: List[ControlledEvent]
) -> bytes:
    """Digest of the full observable state at one decision point.

    ``events`` is the engine's enabled-event offer for this step; only
    the synthetic crash/detect actions are read from it (their pending
    sets live in locals of the dispatch loop).  Acks and callbacks are
    auto-fired before any decision point, so the heap holds delivery
    records only — asserted by construction via the kind tag.
    """
    memo: Dict[int, int] = {}
    per_link: Dict[int, List[Tuple[int, Any]]] = {}
    for record in runtime._heap:
        code = record[2]
        if code >= CODE_DELIVER:
            lid = code - CODE_DELIVER
            entry = ["D", canon(runtime._slot_payload[lid], memo)]
        elif code >= CODE_ACK:
            lid = code - CODE_ACK
            entry = ["A"]
        elif code >= CODE_ACK_PAYLOAD:
            lid = code - CODE_ACK_PAYLOAD
            entry = ["AP", canon(record[3], memo)]
        elif code >= CODE_DELIVER_PAYLOAD:
            lid = code - CODE_DELIVER_PAYLOAD
            entry = ["DP", canon(record[3], memo)]
        else:
            lid = -1
            entry = ["CB"]
        per_link.setdefault(lid, []).append((record[1], entry))
    links: List[List[Any]] = []
    for lid in sorted(per_link):
        flights = [entry for _seq, entry in sorted(per_link[lid])]
        links.append([lid, flights])
    link_state: List[List[Any]] = []
    for lid in range(len(runtime._busy)):
        ob = runtime._outbox[lid]
        queued = (
            [] if not ob
            else [canon(item[2], memo) for item in sorted(ob)]
        )
        link_state.append([
            int(runtime._busy[lid]), runtime._pending[lid],
            runtime._injected[lid], queued,
        ])
    synthetic = sorted(
        ("crash", ev.node) if ev.kind == CTRL_CRASH
        else ("rejoin", ev.node) if ev.kind == CTRL_REJOIN
        else ("detect", ev.dst, ev.src) if ev.kind == CTRL_DETECT
        else ("alive", ev.dst, ev.src)
        for ev in events
        if ev.kind in (CTRL_CRASH, CTRL_DETECT, CTRL_REJOIN, CTRL_ALIVE)
    )
    state = [
        sorted(runtime.crashed),
        # Rejoined set: membership gates the crash offer (one crash per
        # node) — two states differing only here diverge later.
        sorted(runtime.rejoined),
        [list(item) for item in synthetic],
        links,
        link_state,
        canon(dict(runtime.outputs), memo),
        runtime.acks,
        runtime.dropped,
        [canon(runtime.processes[v], memo) for v in runtime.graph.nodes],
    ]
    blob = json.dumps(state, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).digest()
