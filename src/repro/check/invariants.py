"""Invariant probes checked after every controlled step (DESIGN.md §13).

A probe is a passive observer: it inspects runtime/process state between
scheduler steps and raises :class:`InvariantViolation` the moment a
protocol invariant breaks, so the explorer can serialize the exact choice
prefix that produced the state.  Probes must be *schedule-insensitive* on
the real tree — a probe that fires on some legal interleaving is a bug in
the probe, and the exhaustive cycle(4) run is the regression test for
that.

The catalog maps the paper's correctness claims onto directly observable
state:

* **Lemma 5.1** (pulse soundness) — the synchronizer core already carries
  the oracle as an ``AssertionError`` in ``SynchronizerNode._handle_app``
  (a pulse-``p`` message arriving after pulse ``p+1`` evaluated);
  :class:`ExceptionProbe` is the thin wrapper that turns any protocol
  exception escaping a dispatched handler into a violation.
  :class:`PulseProbe` adds the external half: per-node ``evaluated`` sets
  only grow and never exceed the declared ``max_pulse``.
* **Registration single-completion** — a (cluster, tag) key completes
  registration (state ``REGISTERED``) at most once per node, and a live
  stage's state only moves forward through
  ``NONE → REGISTERING → REGISTERED → DEREGISTERED → FREE``.
* **Pool hygiene** — no stage a crash touched may reach the free list
  (the PR 6 poisoning rule).  :class:`PoolTaintProbe` shadows the rule
  from outside: when a ``detect`` step fires it snapshots exactly the
  stages ``RegistrationModule.prune_child`` is about to poison, and then
  asserts none of those objects ever shows up in ``_free``.  The shadow
  is what lets the seeded ``skip-poisoning`` mutant fail loudly instead
  of silently recycling a crash-torn slot.
* **Output bounds** — fault-free runs must reproduce the synchronous
  reference outputs exactly; crash runs must keep every produced BFS
  distance inside ``dist_G(v) <= out <= dist_H(v)`` (DESIGN.md §11).
* **Rejoin consistency** — blank state at rebirth (the output register is
  voided), immediate and durable readmission after ``on_neighbor_alive``,
  and the lower half of the sandwich for the fresh incarnation's output
  (DESIGN.md §15).  :class:`RejoinConsistencyProbe` is what catches the
  seeded readmit-dropping mutant of the recovery synchronizer.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..net.async_runtime import (
    CTRL_ALIVE,
    CTRL_DETECT,
    CTRL_REJOIN,
    AsyncResult,
    AsyncRuntime,
    ControlledEvent,
)
from ..net.graph import NodeId

#: Registration states in protocol order; a live stage may only move
#: rightward (indexes into this tuple compare as progress).
_REG_ORDER: Tuple[str, ...] = (
    "none", "registering", "registered", "deregistered", "free"
)
_REG_RANK: Dict[str, int] = {s: i for i, s in enumerate(_REG_ORDER)}


class InvariantViolation(Exception):
    """A probe observed a broken invariant at a specific scheduler step.

    ``signature()`` is the stable identity used to decide that a shrunk or
    replayed execution reproduces *the same* violation: probe name plus
    message, both deterministic functions of the choice prefix.
    """

    def __init__(self, probe: str, message: str) -> None:
        super().__init__(f"{probe}: {message}")
        self.probe = probe
        self.message = message

    def signature(self) -> Tuple[str, str]:
        return (self.probe, self.message)


class Probe:
    """Base class: all hooks are optional no-ops.

    ``before_step`` sees the chosen event *before* it fires (the one hook
    that can snapshot pre-transition state); ``after_step`` sees the state
    it left behind; ``at_end`` runs once on quiescent, non-pruned
    executions.  Hooks report a violation by raising
    :class:`InvariantViolation`.
    """

    name = "probe"

    def reset(self, runtime: AsyncRuntime) -> None:
        """Called once per execution, before the first step."""

    def before_step(self, runtime: AsyncRuntime, ev: ControlledEvent) -> None:
        pass

    def after_step(self, runtime: AsyncRuntime, ev: ControlledEvent) -> None:
        pass

    def at_end(self, runtime: AsyncRuntime, result: AsyncResult) -> None:
        pass

    def fail(self, message: str) -> None:
        raise InvariantViolation(self.name, message)


def _sync_nodes(runtime: AsyncRuntime):
    """(node_id, SynchronizerNode) pairs, ascending — or nothing when the
    workload's process class is not synchronizer-shaped."""
    for v in runtime.graph.nodes:
        node = getattr(runtime.processes[v], "node", None)
        if node is not None and hasattr(node, "evaluated"):
            yield v, node


def _reg_modules(runtime: AsyncRuntime):
    """(node_id, RegistrationModule) pairs, ascending.

    Finds the module wherever the workload put it: ``proc.node.reg`` for
    the synchronizer stack, ``proc.reg`` for the direct registration
    driver."""
    for v in runtime.graph.nodes:
        proc = runtime.processes[v]
        owner = getattr(proc, "node", proc)
        reg = getattr(owner, "reg", None)
        if reg is not None and hasattr(reg, "_stages"):
            yield v, reg


class PulseProbe(Probe):
    """Per-node ``evaluated`` sets only grow and stay within ``max_pulse``."""

    name = "pulse-bound"

    def reset(self, runtime: AsyncRuntime) -> None:
        self._seen: Dict[NodeId, FrozenSet[int]] = {}

    def after_step(self, runtime: AsyncRuntime, ev: ControlledEvent) -> None:
        if ev.kind == CTRL_REJOIN:
            # The returned node is a fresh incarnation with an empty
            # evaluated set; its old generation's history does not bind it.
            self._seen.pop(ev.node, None)
        for v, node in _sync_nodes(runtime):
            evaluated = node.evaluated
            prev = self._seen.get(v, frozenset())
            if not prev.issubset(evaluated):
                self.fail(
                    f"node {v} un-evaluated pulses"
                    f" {sorted(prev - evaluated)}"
                )
            if len(evaluated) != len(prev):
                top = max(evaluated)
                if top > node.max_pulse:
                    self.fail(
                        f"node {v} evaluated pulse {top} beyond the"
                        f" declared bound {node.max_pulse}"
                    )
                if min(evaluated) < 0:
                    self.fail(f"node {v} evaluated a negative pulse")
                self._seen[v] = frozenset(evaluated)


class RegistrationProbe(Probe):
    """Forward-only registration state per live (node, stage key).

    A live stage's state may only move rightward through ``NONE →
    REGISTERING → REGISTERED → DEREGISTERED → FREE`` — which also makes
    single-completion *within a generation* structural (reaching
    ``REGISTERED`` twice would require a backward move first).  A stage
    that vanishes from ``_stages`` (recycled through the pool) ends its
    generation; the same key re-registering later is a fresh generation
    and legitimately completes again (a late registrant can reuse a
    (cluster, tag) identity after the first full cycle retired), so no
    cross-generation memory is kept.
    """

    name = "registration-single-completion"

    def reset(self, runtime: AsyncRuntime) -> None:
        #: Last observed state per live (node, key) stage generation.
        self._state: Dict[Tuple[NodeId, Any], str] = {}

    def after_step(self, runtime: AsyncRuntime, ev: ControlledEvent) -> None:
        state = self._state
        live: Set[Tuple[NodeId, Any]] = set()
        for v, reg in _reg_modules(runtime):
            for key, stage in reg._stages.items():
                ident = (v, key)
                live.add(ident)
                cur = stage.state
                prev = state.get(ident)
                if prev is not None and _REG_RANK[cur] < _REG_RANK[prev]:
                    self.fail(
                        f"node {v} stage {key!r} moved backward"
                        f" {prev} -> {cur}"
                    )
                if cur != prev:
                    state[ident] = cur
        for ident in list(state):
            if ident not in live:
                del state[ident]


class PoolTaintProbe(Probe):
    """No stage a crash touched is ever recycled through the free list.

    Shadow of ``RegistrationModule.prune_child``'s poisoning rule: just
    before a ``detect`` step runs at observer ``u``, snapshot the live
    stages at ``u`` the corpse participates in (parent, marked child, or
    view child — the exact poisoning condition).  Afterwards, none of
    those objects may appear in ``reg._free``.  Membership is identity
    (``is``) over a small list, never ``id()``: object addresses must not
    feed any ordered or emitted value (DET002), and taint is pure
    bookkeeping either way.
    """

    name = "pool-hygiene"

    def reset(self, runtime: AsyncRuntime) -> None:
        self._tainted: Dict[NodeId, List[Any]] = {}

    def before_step(self, runtime: AsyncRuntime, ev: ControlledEvent) -> None:
        if ev.kind != CTRL_DETECT:
            return
        observer, dead = ev.dst, ev.src
        proc = runtime.processes[observer]
        reg = getattr(getattr(proc, "node", proc), "reg", None)
        if reg is None or not hasattr(reg, "_stages"):
            return
        tainted = self._tainted.setdefault(observer, [])
        for _key, stage in reg._stages.items():
            view = stage.view
            if (view.parent == dead or dead in stage.child_marks
                    or dead in view.children):
                if not any(stage is t for t in tainted):
                    tainted.append(stage)

    def after_step(self, runtime: AsyncRuntime, ev: ControlledEvent) -> None:
        if not self._tainted:
            return
        regs = dict(_reg_modules(runtime))
        for v in sorted(self._tainted):
            reg = regs.get(v)
            if reg is None:
                continue
            free = reg._free
            for stage in self._tainted[v]:
                if any(stage is f for f in free):
                    self.fail(
                        f"node {v} recycled crash-touched stage"
                        f" {stage.key!r} into the free pool"
                    )


class OutputEqualityProbe(Probe):
    """Fault-free terminal check: outputs equal the reference run's."""

    name = "output-equality"

    def __init__(self, reference: Dict[NodeId, Any]) -> None:
        self.reference = reference

    def at_end(self, runtime: AsyncRuntime, result: AsyncResult) -> None:
        if dict(result.outputs) != self.reference:
            missing = sorted(set(self.reference) - set(result.outputs))
            wrong = sorted(
                v for v in result.outputs
                if self.reference.get(v) != result.outputs[v]
            )
            self.fail(
                f"terminal outputs diverge from the reference"
                f" (missing={missing}, wrong={wrong})"
            )


class DistanceBoundProbe(Probe):
    """Crash-run terminal check: ``dist_G <= out <= dist_H`` (§11).

    ``dist_g`` is distance in the original graph (a crash only ever
    lengthens paths), ``dist_h`` distance in the surviving component.
    Degrade mode tolerates survivors with *no* output; any output that is
    produced must respect the sandwich.
    """

    name = "distance-bound"

    def __init__(
        self,
        dist_g: Dict[NodeId, float],
        dist_h: Dict[NodeId, float],
        survivors: Tuple[NodeId, ...],
    ) -> None:
        self.dist_g = dist_g
        self.dist_h = dist_h
        self.survivors = survivors

    def at_end(self, runtime: AsyncRuntime, result: AsyncResult) -> None:
        for v in self.survivors:
            out = result.outputs.get(v)
            if out is None:
                continue
            dist = out[0] if isinstance(out, tuple) else out
            if not self.dist_g[v] <= dist <= self.dist_h[v]:
                self.fail(
                    f"survivor {v} output distance {dist} outside"
                    f" [{self.dist_g[v]}, {self.dist_h[v]}]"
                )


class RejoinConsistencyProbe(Probe):
    """Re-join semantics hold on every interleaving (DESIGN.md §15).

    Three checkable halves of the blank-state + readmission contract:

    * **Blank state includes the output register** — immediately after a
      ``rejoin`` step the returned node must have no recorded output (the
      previous incarnation's answer died with it).
    * **Readmission is immediate and durable** — after an ``alive`` step
      fires at observer ``u`` for returned node ``r``, ``u``'s
      synchronizer must no longer prune ``r`` (``r ∉ node._pruned``), and
      it must still not prune it at quiescence (nothing disarms a
      readmission: detects for ``r`` were withdrawn at the rejoin and a
      node crashes at most once).  The seeded readmit-dropping mutant of
      ``RecoverySynchronizerProcess.on_neighbor_alive`` is caught here on
      every interleaving where a detect fired before the rejoin.
    * **Lower distance bound** — any output the fresh incarnation does
      produce is a real path length in a sub-topology of ``G``, so it
      must respect ``dist_G(r) <= out`` (no finite upper bound applies:
      the time-varying graph ``H`` admits arbitrarily late readmission).
    """

    name = "rejoin-consistency"

    def __init__(self, dist_g: Dict[NodeId, float]) -> None:
        self.dist_g = dist_g  # det: ignore[DET003] -- per-cell configuration (distances in the full topology G), constant across executions; reset() clears all per-execution state

    def reset(self, runtime: AsyncRuntime) -> None:
        self._returned: Set[NodeId] = set()
        #: returned node -> observers whose ``alive`` step fired.
        self._notified: Dict[NodeId, Set[NodeId]] = {}

    def _pruned_at(self, runtime: AsyncRuntime, observer: NodeId):
        node = getattr(runtime.processes[observer], "node", None)
        return getattr(node, "_pruned", None)

    def after_step(self, runtime: AsyncRuntime, ev: ControlledEvent) -> None:
        if ev.kind == CTRL_REJOIN:
            v = ev.node
            self._returned.add(v)
            if v in runtime.outputs:
                self.fail(
                    f"re-joined node {v} kept its pre-crash output"
                    f" {runtime.outputs[v]!r} (blank state must void it)"
                )
        elif ev.kind == CTRL_ALIVE:
            observer, returned = ev.dst, ev.src
            self._notified.setdefault(returned, set()).add(observer)
            pruned = self._pruned_at(runtime, observer)
            if pruned is not None and returned in pruned:
                self.fail(
                    f"observer {observer} still prunes re-joined neighbor"
                    f" {returned} after on_neighbor_alive"
                )

    def at_end(self, runtime: AsyncRuntime, result: AsyncResult) -> None:
        for v in sorted(self._returned):
            out = result.outputs.get(v)
            if out is not None:
                dist = out[0] if isinstance(out, tuple) else out
                if dist < self.dist_g.get(v, 0):
                    self.fail(
                        f"re-joined node {v} output distance {dist} below"
                        f" dist_G {self.dist_g[v]}"
                    )
            for observer in sorted(self._notified.get(v, ())):
                pruned = self._pruned_at(runtime, observer)
                if pruned is not None and v in pruned:
                    self.fail(
                        f"observer {observer} re-pruned re-joined neighbor"
                        f" {v} by quiescence"
                    )


class QuiescentOutputsProbe(Probe):
    """Fault-free runs must end quiescent with every node answered."""

    name = "all-nodes-answer"

    def at_end(self, runtime: AsyncRuntime, result: AsyncResult) -> None:
        missing = sorted(set(runtime.graph.nodes) - set(result.outputs))
        if missing:
            self.fail(f"nodes {missing} never produced an output")
