"""Schedule controllers for the model checker (DESIGN.md §13).

The engine's :class:`~repro.net.async_runtime.ScheduleController` hook
shows a controller every enabled event and lets it pick the next step.
This module supplies the identity/commutativity layer on top:

* :func:`event_key` — a stable, serializable identity for an enabled
  event.  Record-backed events are keyed by their scheduling sequence
  number (unique, and deterministic given the choice prefix — record
  creation order is a pure function of the fired order); synthetic
  crash/detect actions are keyed by the nodes involved.
* :func:`dependent` — the race relation of the partial-order reduction:
  two steps commute iff their *acting* processes are both known and
  different.  A delivery acts on its receiver, an acknowledgment on its
  original sender (outbox drain + delivered-callback), a detect on its
  observer, a crash on the corpse; an unattributed callback races with
  everything (conservative).
* Three controllers: :class:`DFSController` (drives one execution of the
  explorer's depth-first search, maintaining sleep sets past the scripted
  prefix), :class:`ReplayController` (strict: the trace's choice sequence
  must match the enabled sets bit-for-bit), and
  :class:`PreferenceController` (tolerant: used by trace shrinking —
  follows a preference list, silently skipping choices that are no longer
  enabled).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..net.async_runtime import (
    CTRL_ACK,
    CTRL_ALIVE,
    CTRL_CALLBACK,
    CTRL_CRASH,
    CTRL_DETECT,
    CTRL_REJOIN,
    AsyncRuntime,
    ControlledEvent,
    ScheduleController,
)
from ..net.graph import NodeId
from .invariants import Probe
from .state import fingerprint

#: Serializable event identity: ("ev", seq) | ("crash", v) | ("rejoin", v)
#: | ("detect", u, c) | ("alive", u, r) where u is the observer, c the
#: corpse and r the returned node.
EventKey = Tuple


def event_key(ev: ControlledEvent) -> EventKey:
    if ev.seq is not None:
        return ("ev", ev.seq)
    if ev.kind == CTRL_CRASH:
        return ("crash", ev.node)
    if ev.kind == CTRL_REJOIN:
        return ("rejoin", ev.node)
    if ev.kind == CTRL_ALIVE:
        return ("alive", ev.dst, ev.src)
    return ("detect", ev.dst, ev.src)


def dependent(a: Optional[NodeId], b: Optional[NodeId]) -> bool:
    """Race relation over acting processes: commute iff both known and
    distinct.  ``None`` (an unattributed callback) races with everything."""
    return a is None or b is None or a == b


class PrunedExecution(Exception):
    """Raised by :class:`DFSController` when the continuation is provably
    redundant: every enabled event is in the sleep set (``reason ==
    "sleep"``, Mazurkiewicz equivalence) or the full observable state was
    already explored (``reason == "state"``, convergence dedup).  The
    execution stops and its terminal checks are skipped — the equivalent
    execution ran them."""

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(f"{reason}: {message}")
        self.reason = reason


class ReplayMismatch(Exception):
    """A trace's recorded choice is not enabled at the recorded step —
    the trace does not belong to this workload/build."""


class Frame:
    """One node of the exploration tree (a prefix of choices).

    ``enabled``/``acting`` describe the state the frame was *first*
    reached in; determinism of the engine guarantees every re-execution
    of the same prefix reproduces them (the controllers assert it).
    ``backtrack`` accumulates the DPOR race reversals to try from here,
    ``done`` the choices already explored, ``sleep`` the events whose
    exploration here would be redundant.
    """

    __slots__ = ("enabled", "acting", "chosen", "backtrack", "done", "sleep")

    def __init__(
        self,
        enabled: Tuple[EventKey, ...],
        acting: Dict[EventKey, Optional[NodeId]],
        chosen: EventKey,
        sleep: Set[EventKey],
    ) -> None:
        self.enabled = enabled
        self.acting = acting
        self.chosen = chosen
        self.backtrack: Set[EventKey] = {chosen}
        self.done: Set[EventKey] = set()
        self.sleep = sleep


def _default_pick(
    events: List[ControlledEvent],
    keys: List[EventKey],
    sleep: Set[EventKey],
) -> Optional[int]:
    """First awake event in offer order, crashes and rejoins last.

    The engine offers record-backed events in ``seq`` order, then crash
    actions, then rejoin actions, then armed detects and alives;
    deferring crashes makes the first execution of a churn cell the run
    where the crash lands at quiescence, and backtracking walks it
    earlier step by step (crash-at-each-point falls out of DPOR instead
    of being sampled).  Rejoins defer for the same reason — the natural
    first execution is crash → drain → detect batch → rejoin → alive
    batch, and DPOR walks the rejoin back across the detects (the D1–D3
    race of DESIGN.md §15) and across deliveries step by step.
    """
    fallback = None
    for i, ev in enumerate(events):
        if keys[i] in sleep:
            continue
        if ev.kind in (CTRL_CRASH, CTRL_REJOIN):
            if fallback is None:
                fallback = i
            continue
        return i
    return fallback


class _ProbedController(ScheduleController):
    """Shared probe plumbing and the delivery-granularity reduction.

    Every ``choose`` call happens *between* steps, so the previous step's
    ``after_step`` hooks run first, then the controller steps, then the
    chosen event's ``before_step`` hooks run.  The explorer runs the final
    ``after_step``/``at_end`` pass itself once ``run()`` returns (the last
    fired step never re-enters ``choose``).

    **Auto-steps**: acknowledgments and callbacks are fired eagerly in
    ``seq`` order whenever any is enabled; only deliveries and the
    synthetic crash/detect actions are *decision points* handed to the
    subclass ``pick``.  The checked schedule space is therefore all
    delivery/crash/detect interleavings under eager acknowledgment
    scheduling — the reduction ISSUE 8 names ("DFS over delivery
    orderings"): same-process deliveries are the race points, while ack
    timing is deterministic given the delivery order, which both keeps
    the tree tractable and makes a serialized choice sequence (decision
    points only) a complete, bit-exact execution description.

    **Detect batching**: once the first detect for a corpse is picked,
    the corpse's remaining armed detects auto-fire before anything else.
    The timed fault model fires every observer's ``on_neighbor_dead`` at
    the same instant (crash + timeout), so split detections — one
    neighbor pruning the corpse while another keeps weaving waves through
    it — are not behaviors of the implemented model.  Only the batch
    *position* is a decision; order within the batch is arming order
    (prunes at distinct observers commute).  **Alive batching** mirrors
    it for recovery: the timed model fires every observer's
    ``on_neighbor_alive`` at rejoin + timeout, so once the first alive
    for a returned node is picked the rest of its batch auto-fires
    (readmissions at distinct observers commute too)."""

    def __init__(
        self, probes: Sequence[Probe], max_steps: int = 1 << 30
    ) -> None:
        self.probes = tuple(probes)
        self.runtime: Optional[AsyncRuntime] = None
        self.last_event: Optional[ControlledEvent] = None
        self.chosen_keys: List[EventKey] = []
        self.steps = 0
        self.max_steps = max_steps
        self.truncated = False
        #: Corpses whose detect batch has started: src values of fired
        #: CTRL_DETECT steps.
        self._detected: Set[NodeId] = set()
        #: Returned nodes whose alive batch has started: src values of
        #: fired CTRL_ALIVE steps.
        self._enlivened: Set[NodeId] = set()

    def attach(self, runtime: AsyncRuntime) -> None:
        self.runtime = runtime
        for probe in self.probes:
            probe.reset(runtime)

    def choose(self, events: List[ControlledEvent]) -> Optional[int]:
        runtime = self.runtime
        if self.last_event is not None:
            for probe in self.probes:
                probe.after_step(runtime, self.last_event)
        if self.steps >= self.max_steps:
            self.truncated = True
            return None
        auto = None
        if self._detected:
            for i, ev in enumerate(events):
                if ev.kind == CTRL_DETECT and ev.src in self._detected:
                    auto = i
                    break
        if auto is None and self._enlivened:
            for i, ev in enumerate(events):
                if ev.kind == CTRL_ALIVE and ev.src in self._enlivened:
                    auto = i
                    break
        if auto is None:
            for i, ev in enumerate(events):
                if ev.kind in (CTRL_ACK, CTRL_CALLBACK) and (
                    auto is None or ev.seq < events[auto].seq
                ):
                    auto = i
        if auto is not None:
            choice = auto
            keys = None
        else:
            keys = [event_key(ev) for ev in events]
            choice = self.pick(events, keys)
            if choice is None:
                return None
        ev = events[choice]
        if ev.kind == CTRL_DETECT:
            self._detected.add(ev.src)
        elif ev.kind == CTRL_ALIVE:
            self._enlivened.add(ev.src)
        for probe in self.probes:
            probe.before_step(runtime, ev)
        self.last_event = ev
        if keys is not None:
            self.chosen_keys.append(keys[choice])
        self.steps += 1
        return choice

    def finish(self) -> None:
        """Run the deferred ``after_step`` hooks for the final step."""
        if self.last_event is not None:
            for probe in self.probes:
                probe.after_step(self.runtime, self.last_event)
            self.last_event = None

    def pick(
        self, events: List[ControlledEvent], keys: List[EventKey]
    ) -> Optional[int]:
        raise NotImplementedError


class DFSController(_ProbedController):
    """One execution of the explorer's DFS.

    Steps ``0 .. len(frames)-1`` are scripted: the frame's ``chosen`` key
    must be enabled (engine determinism; asserted).  Past the script the
    controller extends ``frames`` itself: the child sleep set is the
    classic carry — ``(sleep ∪ done)`` of the parent, minus events that
    race with the parent's choice, intersected with what is still enabled
    — and the next choice is the first awake event (crashes deferred).
    When everything enabled is asleep the whole continuation is redundant
    and the execution aborts with :class:`PrunedExecution`.
    """

    def __init__(
        self,
        frames: List[Frame],
        probes: Sequence[Probe],
        max_steps: int,
        visited: Optional[set] = None,
        use_sleep: bool = True,
    ) -> None:
        super().__init__(probes, max_steps=max_steps)
        self.frames = frames
        self.scripted = len(frames)
        #: ``False`` in the ground-truth mode (``explore(full=True)``):
        #: plain exhaustive search over the state DAG, no equivalence
        #: reasoning beyond convergence dedup.
        self.use_sleep = use_sleep
        #: Fingerprints of decision-point states whose continuations are
        #: already (being) explored; ``None`` disables convergence dedup.
        self.visited = visited
        #: (key, acting) pairs eligible to sleep at the next new frame.
        self._carry: List[Tuple[EventKey, Optional[NodeId]]] = []

    def pick(
        self, events: List[ControlledEvent], keys: List[EventKey]
    ) -> Optional[int]:
        depth = len(self.chosen_keys)
        frames = self.frames
        if depth < self.scripted:
            frame = frames[depth]
            try:
                choice = keys.index(frame.chosen)
            except ValueError:
                raise ReplayMismatch(
                    f"scripted choice {frame.chosen!r} not enabled at"
                    f" step {depth}: engine nondeterminism or stale frames"
                ) from None
            if depth + 1 == self.scripted:
                # Entering the free region next step: seed the sleep carry
                # from this frame's already-explored/slept alternatives.
                self._carry = [
                    (k, frame.acting.get(k))
                    for k in frame.enabled
                    if k != frame.chosen
                    and (k in frame.sleep or k in frame.done)
                ]
                self._carry = [
                    (k, a) for k, a in self._carry
                    if not dependent(a, frame.acting.get(frame.chosen))
                ]
            return choice
        if self.visited is not None:
            digest = fingerprint(self.runtime, events)
            if digest in self.visited:
                raise PrunedExecution(
                    "state", f"state at decision {depth} already explored"
                )
            self.visited.add(digest)
        enabled_now = set(keys)
        sleep = (
            {k for k, _ in self._carry if k in enabled_now}
            if self.use_sleep else set()
        )
        choice = _default_pick(events, keys, sleep)
        if choice is None:
            raise PrunedExecution(
                "sleep", f"all enabled events asleep at {depth}"
            )
        chosen = keys[choice]
        acting = {k: events[i].acting for i, k in enumerate(keys)}
        frames.append(Frame(tuple(keys), acting, chosen, sleep))
        chosen_acting = acting[chosen]
        self._carry = [
            (k, a) for k, a in self._carry
            if k in enabled_now and k != chosen
            and not dependent(a, chosen_acting)
        ]
        return choice


class ReplayController(_ProbedController):
    """Strict trace replay: follow the serialized choice sequence exactly,
    stop when it is exhausted."""

    def __init__(
        self,
        choices: Sequence[EventKey],
        probes: Sequence[Probe],
        max_steps: int = 1 << 30,
    ) -> None:
        super().__init__(probes, max_steps=max_steps)
        self.choices = [tuple(c) for c in choices]

    def pick(
        self, events: List[ControlledEvent], keys: List[EventKey]
    ) -> Optional[int]:
        depth = len(self.chosen_keys)
        if depth >= len(self.choices):
            return None
        want = self.choices[depth]
        try:
            return keys.index(want)
        except ValueError:
            raise ReplayMismatch(
                f"trace step {depth} wants {want!r} but enabled events"
                f" are {sorted(keys)}"
            ) from None


class PreferenceController(_ProbedController):
    """Tolerant replay for shrinking: walk the preference list in order,
    choosing the first remaining entry that is currently enabled.  With
    ``extend`` (the shrinker's mode) an exhausted list falls back to the
    default pick so the run still reaches quiescence and the terminal
    probes — a deleted event must not truncate the execution it was
    deleted from."""

    def __init__(
        self,
        preferences: Sequence[EventKey],
        probes: Sequence[Probe],
        extend: bool = False,
        max_steps: int = 1 << 30,
    ) -> None:
        super().__init__(probes, max_steps=max_steps)
        self.preferences = [tuple(p) for p in preferences]
        self.extend = extend

    def pick(
        self, events: List[ControlledEvent], keys: List[EventKey]
    ) -> Optional[int]:
        prefs = self.preferences
        enabled = {k: i for i, k in enumerate(keys)}
        for j in range(len(prefs)):
            idx = enabled.get(prefs[j])
            if idx is not None:
                # Entries skipped over stay in the list: a choice that is
                # not enabled *yet* may become enabled after this step.
                del prefs[j]
                return idx
        if self.extend:
            return _default_pick(events, keys, set())
        return None
