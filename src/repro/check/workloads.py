"""Checkable workloads: (graph, protocol, probes) bundles for the explorer.

A workload knows how to build a fresh controlled :class:`AsyncRuntime`
around a controller, which crash actions to expose, and which invariant
probes apply.  Everything is rebuilt per execution — stateless model
checking re-runs the system from its initial state for every explored
interleaving — except the cover registry and reference outputs, which are
pure functions of the graph and are computed once.

Two workload families:

* **Synchronizer cells** (:class:`SyncWorkload`) — the full stack
  (synchronizer + registration + aggregation) running synchronized BFS,
  fault-free or with controller-chosen crashes.  At the graph sizes the
  checker can exhaust, the threshold registry produces only trivial
  clusters, so the registration machinery is *idle* in these cells — the
  pulse, output and distance invariants are what they check.
* **Registration cells** (:class:`RegWorkload`) — a driver process
  running :class:`~repro.core.registration.RegistrationModule` alone over
  the graph's BFS cluster tree, every node performing register →
  deregister cycles across two tags.  This is where the registration
  single-completion and pool-hygiene invariants have teeth: stages
  complete, recycle through the free pool, and get reused while crashes
  race the waves.

Workload spec strings (the CLI surface)::

    sync-bfs:cycle:4          fault-free synchronized BFS on cycle(4)
    sync-bfs:star:4           ... on star(4)
    churn:cycle:5:crash:2     recovery synchronizer, node 2 crashable
    churn:cycle:5             the crash-at-each-point matrix (one cell
                              per non-root node)
    rejoin:cycle:5:crash:2    recovery synchronizer, node 2 crashable
                              AND re-joinable: the controller may bring
                              it back after the crash, racing the
                              rejoin against the armed detects (the
                              D1–D3 interleaving space of DESIGN.md §15)
    rejoin:cycle:5            the crash+rejoin-at-each-point matrix
    reg:star:4                fault-free registration cycles on star(4)
    reg:star:4:crash:2        ... with node 2 crashable
    reg:star:4:crash          the crash-at-each-point matrix
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..apps.programs import bfs_spec
from ..core.bfs_runner import registry_for_threshold
from ..core.recovery import RecoverySynchronizerProcess, _surviving_component
from ..core.registration import RegistrationModule, cluster_views_for
from ..core.synchronizer import SynchronizerProcess, pulse_bound_for
from ..covers import bfs_cluster_tree
from ..net.async_runtime import AsyncRuntime, Process, ScheduleController
from ..net.delays import ConstantDelay
from ..net.graph import Graph, NodeId
from ..net.sync_runtime import run_synchronous
from ..net.topology import cycle_graph, star_graph
from .invariants import (
    DistanceBoundProbe,
    OutputEqualityProbe,
    PoolTaintProbe,
    Probe,
    PulseProbe,
    QuiescentOutputsProbe,
    RegistrationProbe,
    RejoinConsistencyProbe,
)

_TOPOLOGIES: Dict[str, Callable[[int], Graph]] = {
    "cycle": cycle_graph,
    "star": star_graph,
}


class Workload:
    """Base cell: a graph, a process class, crash/rejoin actions, probes."""

    def __init__(
        self,
        name: str,
        graph: Graph,
        root: NodeId = 0,
        crashable: Tuple[NodeId, ...] = (),
        rejoinable: Tuple[NodeId, ...] = (),
    ) -> None:
        self.name = name
        self.graph = graph
        self.root = root
        self.crashable = crashable
        self.rejoinable = rejoinable
        self.process_cls: type = Process

    def build_runtime(self, controller: ScheduleController) -> AsyncRuntime:
        controller.crashable = self.crashable
        controller.rejoinable = self.rejoinable
        return AsyncRuntime(
            self.graph, self.process_cls, ConstantDelay(1.0),
            controller=controller,
        )

    def probes(self) -> List[Probe]:
        raise NotImplementedError


class SyncWorkload(Workload):
    """Full synchronizer stack running synchronized BFS.

    ``process_cls`` defaults to the stock synchronizer (fault-free cells)
    or recovery synchronizer (crash cells) bound to the spec; the seeded
    mutant tests pass their mutated classes through ``base_cls``.
    """

    def __init__(
        self,
        name: str,
        graph: Graph,
        root: NodeId = 0,
        crashable: Tuple[NodeId, ...] = (),
        rejoinable: Tuple[NodeId, ...] = (),
        base_cls: Optional[type] = None,
    ) -> None:
        super().__init__(
            name, graph, root=root, crashable=crashable,
            rejoinable=rejoinable,
        )
        self.spec = bfs_spec(root)
        self.max_pulse = pulse_bound_for(graph, self.spec)
        self.registry = registry_for_threshold(graph, self.max_pulse, "ap")
        if base_cls is None:
            base_cls = (
                RecoverySynchronizerProcess if crashable
                else SynchronizerProcess
            )
        self.process_cls = type(
            "CheckedSynchronizer",
            (base_cls,),
            dict(
                spec=self.spec,
                registry=self.registry,
                max_pulse=self.max_pulse,
                initiators=frozenset(self.spec.initiators(graph)),
                infos=self.spec.make_infos(graph),
            ),
        )
        self._reference: Optional[Dict[NodeId, Any]] = None

    # ------------------------------------------------------------------
    def reference_outputs(self) -> Dict[NodeId, Any]:
        """The synchronous run's outputs — an independent oracle (the
        reference engine shares no code with the async dispatch loops)."""
        if self._reference is None:
            self._reference = dict(run_synchronous(self.graph, self.spec).outputs)
        return self._reference

    def probes(self) -> List[Probe]:
        probes: List[Probe] = [PulseProbe(), RegistrationProbe()]
        if self.crashable:
            graph = self.graph
            live = set(graph.nodes) - set(self.crashable)
            survivors = _surviving_component(graph, live, self.root)
            dist_g = dict(enumerate(graph.bfs_distances(self.root)))
            sub, remap = graph.induced_subgraph(survivors)
            sub_dist = sub.bfs_distances(remap[self.root])
            dist_h = {v: sub_dist[remap[v]] for v in survivors}
            probes.append(PoolTaintProbe())
            # The sandwich over survivors stays sound under rejoin: the
            # crippled-component wave is unaffected by the returning
            # node, so first-wins outputs still respect dist_H, and no
            # path anywhere beats dist_G.  The returned node itself is
            # not a survivor — RejoinConsistencyProbe owns its output.
            probes.append(DistanceBoundProbe(dist_g, dist_h, survivors))
            if self.rejoinable:
                probes.append(RejoinConsistencyProbe(dist_g))
        else:
            probes.append(OutputEqualityProbe(self.reference_outputs()))
            probes.append(QuiescentOutputsProbe())
        return probes


#: Tags registered in sequence by every node of a registration cell; two
#: rounds so round 2 *reuses* pooled slots recycled by round 1.
_REG_TAGS: Tuple[int, ...] = (1, 2)


class RegWorkload(Workload):
    """Registration waves alone: every node runs register → deregister
    cycles over the graph's BFS cluster tree, one tag after another.

    This is the cell family where the pool-hygiene and single-completion
    probes are not vacuous: stages complete, recycle, and are reused —
    and in crash cells the controller can land the crash mid-wave, which
    is exactly when ``prune_child`` must poison the touched slots.  The
    seeded skip-poisoning mutant is caught here.  ``module_cls`` lets the
    mutant tests substitute their mutated :class:`RegistrationModule`.
    """

    def __init__(
        self,
        name: str,
        graph: Graph,
        root: NodeId = 0,
        crashable: Tuple[NodeId, ...] = (),
        module_cls: type = RegistrationModule,
    ) -> None:
        super().__init__(name, graph, root=root, crashable=crashable)
        tree = bfs_cluster_tree(graph, 0, members=graph.nodes, root=root)
        self.process_cls = type(
            "CheckedRegistration",
            (_RegDriver,),
            dict(cluster_tree=tree, module_cls=module_cls),
        )

    def probes(self) -> List[Probe]:
        probes: List[Probe] = [RegistrationProbe()]
        if self.crashable:
            probes.append(PoolTaintProbe())
        else:
            done = ("reg-done", len(_REG_TAGS))
            probes.append(OutputEqualityProbe(
                {v: done for v in self.graph.nodes}
            ))
            probes.append(QuiescentOutputsProbe())
        return probes


class _RegDriver(Process):
    """Per-node driver for :class:`RegWorkload`.

    Registers the first tag at start; on each completed registration
    immediately deregisters; on each Go-Ahead (slot free again) registers
    the next tag, and after the last tag reports ``("reg-done", k)``.
    ``on_neighbor_dead`` mirrors the recovery synchronizer: clear the
    jammed link, then excise the corpse from the module.
    """

    cluster_tree = None  # bound per workload via type()
    module_cls = RegistrationModule

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        node = ctx.node_id
        views = cluster_views_for({0: self.cluster_tree}, node)
        self.reg = self.module_cls(
            node_id=node,
            clusters=views,
            send=lambda to, payload, priority: ctx.send(to, payload, priority),
            on_registered=self._on_registered,
            on_go_ahead=self._on_go_ahead,
            priority_fn=lambda tag: (0,),
        )
        self._done = 0

    def on_start(self) -> None:
        self.reg.register(0, _REG_TAGS[0])

    def _on_registered(self, cluster_id: int, tag: int) -> None:
        self.reg.deregister(cluster_id, tag)

    def _on_go_ahead(self, cluster_id: int, tag: int) -> None:
        self._done += 1
        if self._done < len(_REG_TAGS):
            self.reg.register(0, _REG_TAGS[self._done])
        else:
            self.ctx.set_output(("reg-done", self._done))

    def on_message(self, sender: NodeId, payload: Tuple) -> None:
        self.reg.handle(sender, payload)

    def on_neighbor_dead(self, neighbor: NodeId) -> None:
        self.ctx.reset_link(neighbor)
        self.reg.prune_child(neighbor)


def build_workload(spec: str) -> Workload:
    """Parse one cell spec (no matrix expansion)."""
    parts = spec.split(":")
    if len(parts) == 3 and parts[0] == "sync-bfs":
        kind, topo, n = parts
        graph = _topology(topo, int(n))
        return SyncWorkload(spec, graph)
    if len(parts) == 3 and parts[0] == "reg":
        _, topo, n = parts
        graph = _topology(topo, int(n))
        return RegWorkload(spec, graph)
    if len(parts) == 5 and parts[3] == "crash" and \
            parts[0] in ("churn", "rejoin", "reg"):
        kind, topo, n, _, v = parts
        graph = _topology(topo, int(n))
        crash = int(v)
        if crash == 0:
            raise ValueError("the root/source node 0 cannot be crashable")
        if kind == "churn":
            return SyncWorkload(spec, graph, crashable=(crash,))
        if kind == "rejoin":
            return SyncWorkload(
                spec, graph, crashable=(crash,), rejoinable=(crash,)
            )
        return RegWorkload(spec, graph, crashable=(crash,))
    raise ValueError(
        f"unknown workload spec {spec!r} (try sync-bfs:cycle:4,"
        f" churn:cycle:5:crash:2, rejoin:cycle:5:crash:2 or reg:star:4)"
    )


def expand_workloads(spec: str) -> List[Workload]:
    """Expand matrix specs: ``churn:T:N`` / ``rejoin:T:N`` /
    ``reg:T:N:crash`` become one cell per non-root node; everything else
    is a single cell."""
    parts = spec.split(":")
    matrix = (
        (len(parts) == 3 and parts[0] in ("churn", "rejoin"))
        or (len(parts) == 4 and parts[0] == "reg" and parts[3] == "crash")
    )
    if matrix:
        kind, topo, n = parts[0], parts[1], parts[2]
        count = int(n)
        _topology(topo, count)  # validate early
        return [
            build_workload(f"{kind}:{topo}:{count}:crash:{v}")
            for v in range(1, count)
        ]
    return [build_workload(spec)]


def _topology(name: str, n: int) -> Graph:
    factory = _TOPOLOGIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown topology {name!r} (known: {', '.join(sorted(_TOPOLOGIES))})"
        )
    return factory(n)
