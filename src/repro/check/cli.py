"""Command-line front end: ``python -m repro.check`` / ``repro-check``.

Subcommands::

    explore WORKLOAD [WORKLOAD ...]   DFS the schedule space of each cell
        [--budget N]                  max executions per cell (default: run
                                      to exhaustion)
        [--max-steps N]               per-execution step ceiling
        [--full]                      backtrack-everything baseline (no DPOR
                                      race analysis; sleep sets only)
        [--trace-out PATH]            where to write a violation trace
        [--json]                      machine-readable report
    replay TRACE.json                 strict bit-exact replay of a trace
    list                              the known workload spec forms

Exit status: 0 clean, 1 violation found (explore) or reproduced-mismatch
(replay), 2 usage/spec errors.  ``explore`` with no subcommand word is
implied when the first argument is a flag, so CI can say
``python -m repro.check --budget ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .explorer import DEFAULT_MAX_STEPS, ExploreReport, explore
from .scheduler import ReplayMismatch
from .trace import (
    load_trace,
    make_trace,
    replay,
    save_trace,
    shrink,
    trace_signature,
)
from .workloads import Workload, build_workload, expand_workloads

#: The CI cells: exhaustive fault-free cells, the registration crash
#: matrix, and the crash-at-each-point churn matrix (CI budget-bounds the
#: churn cells; everything else exhausts in seconds).  The rejoin matrix
#: (``rejoin:cycle:5``) is deliberately absent: its cells are too deep to
#: exhaust, so a bare (unbudgeted) ``explore`` would never finish — CI
#: runs it as a separate budget-bounded step instead.
DEFAULT_WORKLOADS = (
    "sync-bfs:cycle:4",
    "sync-bfs:star:4",
    "reg:star:4",
    "reg:star:4:crash",
    "churn:cycle:5",
)


def _report_line(report: ExploreReport) -> str:
    status = "VIOLATION" if report.violation else (
        "exhausted" if report.exhausted else "budget"
    )
    line = (
        f"{report.workload}: {status} — {report.executions} executions"
        f" ({report.pruned_executions} pruned), {report.races} races,"
        f" {report.sleep_pruned} sleep-set cuts, depth {report.max_depth},"
        f" {report.steps_total} steps"
    )
    if report.violation:
        line += f"\n  {report.violation[0]}: {report.violation[1]}"
    return line


def _report_dict(report: ExploreReport) -> dict:
    return {
        "workload": report.workload,
        "executions": report.executions,
        "pruned_executions": report.pruned_executions,
        "sleep_pruned": report.sleep_pruned,
        "races": report.races,
        "max_depth": report.max_depth,
        "steps_total": report.steps_total,
        "exhausted": report.exhausted,
        "truncated": report.truncated,
        "violation": (
            None if report.violation is None
            else {"probe": report.violation[0],
                  "message": report.violation[1]}
        ),
    }


def _cmd_explore(args: argparse.Namespace) -> int:
    try:
        cells: List[Workload] = []
        for spec in args.workloads:
            cells.extend(expand_workloads(spec))
    except ValueError as exc:
        print(f"repro.check: {exc}", file=sys.stderr)
        return 2
    reports = []
    failed: Optional[ExploreReport] = None
    failed_cell: Optional[Workload] = None
    for cell in cells:
        report = explore(
            cell, budget=args.budget, max_steps=args.max_steps,
            full=args.full,
        )
        reports.append(report)
        if not args.json:
            print(_report_line(report))
        if report.violation is not None:
            failed = report
            failed_cell = cell
            break
    trace_path = None
    if failed is not None and failed_cell is not None:
        choices = shrink(
            failed_cell, failed.violation_choices, failed.violation
        )
        trace = make_trace(failed_cell.name, choices, failed.violation)
        if args.trace_out:
            save_trace(trace, args.trace_out)
            trace_path = args.trace_out
            if not args.json:
                print(
                    f"  minimized to {len(choices)} steps"
                    f" (from {len(failed.violation_choices)});"
                    f" trace written to {trace_path}"
                )
        elif not args.json:
            print(
                f"  minimized to {len(choices)} steps"
                f" (from {len(failed.violation_choices)}); re-run with"
                f" --trace-out to serialize it"
            )
    if args.json:
        print(json.dumps(
            {"reports": [_report_dict(r) for r in reports],
             "trace": trace_path},
            sort_keys=True, separators=(",", ":"),
        ))
    return 1 if failed is not None else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        trace = load_trace(args.trace)
        workload = build_workload(trace["workload"])
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro.check: cannot load trace: {exc}", file=sys.stderr)
        return 2
    try:
        outcome = replay(trace, workload)
    except ReplayMismatch as exc:
        print(f"repro.check: replay diverged: {exc}", file=sys.stderr)
        return 1
    want = trace_signature(trace)
    got = None if outcome.violation is None else outcome.violation.signature()
    if got == want:
        print(
            f"reproduced after {len(outcome.chosen)} steps:"
            f" {want[0]}: {want[1]}"
        )
        return 0
    print(
        f"repro.check: trace did NOT reproduce — recorded {want!r},"
        f" replay produced {got!r}", file=sys.stderr,
    )
    return 1


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workload spec forms:")
    print("  sync-bfs:TOPO:N          fault-free synchronized BFS")
    print("  churn:TOPO:N             crash-at-each-point matrix")
    print("  churn:TOPO:N:crash:V     single crashable node V")
    print("  rejoin:TOPO:N            crash+rejoin-at-each-point matrix")
    print("  rejoin:TOPO:N:crash:V    single crashable+rejoinable node V")
    print("  reg:TOPO:N               registration cycles, fault-free")
    print("  reg:TOPO:N:crash         registration crash matrix")
    print("  reg:TOPO:N:crash:V       single crashable node V")
    print("topologies: cycle, star")
    print(f"default cells: {', '.join(DEFAULT_WORKLOADS)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="DPOR-style schedule-space model checker (DESIGN.md §13)",
    )
    sub = parser.add_subparsers(dest="command")
    exp = sub.add_parser("explore", help="DFS the schedule space")
    exp.add_argument(
        "workloads", nargs="*", default=list(DEFAULT_WORKLOADS),
        help="cell specs (see `repro-check list`)",
    )
    exp.add_argument("--budget", type=int, default=None,
                     help="max executions per cell (default: exhaustion)")
    exp.add_argument("--max-steps", type=int, default=DEFAULT_MAX_STEPS,
                     help="per-execution step ceiling")
    exp.add_argument("--full", action="store_true",
                     help="backtrack-everything baseline (no race analysis)")
    exp.add_argument("--trace-out", default=None,
                     help="write the minimized violation trace here")
    exp.add_argument("--json", action="store_true",
                     help="machine-readable report on stdout")
    exp.set_defaults(func=_cmd_explore)
    rep = sub.add_parser("replay", help="bit-exact trace replay")
    rep.add_argument("trace", help="trace JSON emitted by explore")
    rep.set_defaults(func=_cmd_replay)
    lst = sub.add_parser("list", help="known workload spec forms")
    lst.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `python -m repro.check --budget 500` reads naturally in CI: a bare
    # flag (or nothing at all) implies the explore subcommand.
    if not argv or argv[0].startswith("-"):
        argv.insert(0, "explore")
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        parser.print_help()
        return 2
    return args.func(args)
