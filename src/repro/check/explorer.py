"""Stateless DFS over delivery orderings with DPOR pruning (DESIGN.md §13).

The explorer re-executes the workload from its initial state once per
explored interleaving: a persistent stack of :class:`Frame` objects holds
the current choice prefix, a :class:`DFSController` drives one execution
along it and extends it with a default schedule, and after every
execution a race analysis in the Flanagan–Godefroid style adds reversal
points.  Two reduction mechanisms compose:

* **Backtrack sets** — for each fired step ``i``, find the *latest*
  earlier step ``j`` whose acting process races with ``i``'s; if ``i``'s
  event was already enabled at ``j`` (i.e. the two are concurrent, not
  causally ordered) the reversed order is scheduled by adding ``i``'s key
  to ``j``'s backtrack set.  ``--full`` replaces this with
  backtrack-everything, the sound-but-slower baseline the cross-check
  tests compare against.
* **Sleep sets** — an explored (or slept) choice is carried into sibling
  subtrees while it stays independent of every subsequent choice; an
  execution whose enabled events are all asleep is Mazurkiewicz-
  equivalent to an explored one and is cut short (``pruned``).

Violations surface three ways and are normalized to
:class:`InvariantViolation`: a probe raises between steps, a protocol
handler raises during dispatch (e.g. the Lemma 5.1 ``AssertionError`` in
``SynchronizerNode._handle_app``), or a terminal probe rejects the
quiescent state.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..net.async_runtime import AsyncResult
from .invariants import InvariantViolation, Probe
from .scheduler import (
    DFSController,
    EventKey,
    Frame,
    PrunedExecution,
    ReplayMismatch,
    _ProbedController,
    dependent,
)
from .workloads import Workload

#: Per-execution step ceiling: cycle(4) sync-bfs quiesces in 172 steps, the
#: CI churn cells in ~130; anything past this is a livelock, not a run.
DEFAULT_MAX_STEPS = 5_000

#: Exception types a protocol handler can realistically raise mid-dispatch;
#: anything else (SystemExit, explorer bugs wrapped in custom errors)
#: propagates to the caller.
_PROTOCOL_ERRORS = (
    AssertionError, AttributeError, IndexError, KeyError, LookupError,
    RuntimeError, TypeError, ValueError,
)


@dataclass
class RunOutcome:
    """One controlled execution, normalized."""

    result: Optional[AsyncResult]
    violation: Optional[InvariantViolation]
    #: ``None`` (ran to a stop) or the prune reason: "sleep" | "state".
    pruned: Optional[str]
    truncated: bool
    chosen: List[EventKey]


def run_execution(workload: Workload, controller: _ProbedController) -> RunOutcome:
    """Build a fresh runtime, run it under ``controller``, normalize."""
    runtime = workload.build_runtime(controller)
    controller.attach(runtime)
    result: Optional[AsyncResult] = None
    violation: Optional[InvariantViolation] = None
    pruned: Optional[str] = None
    try:
        result = runtime.run()
    except InvariantViolation as exc:
        violation = exc
    except PrunedExecution as exc:
        pruned = exc.reason
    except ReplayMismatch:
        raise
    except _PROTOCOL_ERRORS as exc:
        violation = _wrap_protocol_error(exc)
    if violation is None and pruned is None:
        try:
            controller.finish()
            if result is not None and result.stop_reason == "quiescent":
                for probe in controller.probes:
                    probe.at_end(runtime, result)
        except InvariantViolation as exc:
            violation = exc
    return RunOutcome(
        result=result,
        violation=violation,
        pruned=pruned,
        truncated=controller.truncated,
        chosen=list(controller.chosen_keys),
    )


def _wrap_protocol_error(exc: BaseException) -> InvariantViolation:
    frames = traceback.extract_tb(exc.__traceback__)
    site = ""
    for fr in reversed(frames):
        if "/repro/" in fr.filename.replace("\\", "/"):
            name = fr.filename.replace("\\", "/").rsplit("/repro/", 1)[1]
            site = f" (at repro/{name}:{fr.lineno})"
            break
    return InvariantViolation(
        "protocol-exception", f"{type(exc).__name__}: {exc}{site}"
    )


@dataclass
class ExploreReport:
    """Result of exploring one workload cell."""

    workload: str
    executions: int = 0
    #: Executions cut short by convergence dedup (state already explored).
    state_pruned: int = 0
    #: Executions cut short by sleep sets (Mazurkiewicz equivalence).
    pruned_executions: int = 0
    #: Enabled-but-asleep alternatives never descended into.
    sleep_pruned: int = 0
    races: int = 0
    #: Distinct decision-point states explored (convergence dedup size).
    states: int = 0
    max_depth: int = 0
    steps_total: int = 0
    exhausted: bool = False
    truncated: bool = False
    violation: Optional[Tuple[str, str]] = None
    violation_choices: List[EventKey] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violation is None


def _race_analyze(frames: List[Frame], start: int) -> int:
    """Backtrack-point computation for the suffix ``frames[start:]``.

    For each new step ``i``: walk back to the latest ``j`` whose chosen
    event is dependent with ``i``'s.  If ``i``'s event was enabled at
    ``j`` they are concurrent and the reversal is scheduled by adding the
    single key.  If not, the race can still be reversible through ``i``'s
    enabling chain — the canonical example is a ``detect`` step racing
    with an earlier delivery to the same observer while the enabling
    ``crash`` had not fired yet — so per Flanagan–Godefroid fall back to
    scheduling *every* event enabled at ``j`` (the sound conservative
    choice; sleep sets and convergence dedup absorb most of the slack).
    """
    races = 0
    for i in range(max(start, 1), len(frames)):
        fi = frames[i]
        key_i = fi.chosen
        acting_i = fi.acting.get(key_i)
        for j in range(i - 1, -1, -1):
            fj = frames[j]
            if not dependent(fj.acting.get(fj.chosen), acting_i):
                continue
            if key_i in fj.acting:
                if key_i not in fj.backtrack:
                    fj.backtrack.add(key_i)
                    races += 1
            else:
                missing = fj.acting.keys() - fj.backtrack
                fj.backtrack.update(missing)
                races += len(missing)
            break
    return races


def explore(
    workload: Workload,
    budget: Optional[int] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    full: bool = False,
) -> ExploreReport:
    """DFS the workload's schedule space until exhaustion or ``budget``
    executions; stop at the first invariant violation."""
    report = ExploreReport(workload=workload.name)
    frames: List[Frame] = []
    visited: set = set()
    while True:
        if budget is not None and report.executions >= budget:
            report.states = len(visited)
            return report
        controller = DFSController(
            frames, workload.probes(), max_steps, visited=visited,
            use_sleep=not full,
        )
        outcome = run_execution(workload, controller)
        report.executions += 1
        report.steps_total += controller.steps
        report.max_depth = max(report.max_depth, len(frames))
        if outcome.violation is not None:
            report.violation = outcome.violation.signature()
            report.violation_choices = outcome.chosen
            report.states = len(visited)
            return report
        if outcome.pruned == "state":
            report.state_pruned += 1
        elif outcome.pruned == "sleep":
            report.pruned_executions += 1
        if outcome.truncated:
            report.truncated = True
        if full:
            for frame in frames[controller.scripted:]:
                frame.backtrack = set(frame.enabled)
        else:
            report.races += _race_analyze(frames, controller.scripted)
        depth = len(frames) - 1
        while depth >= 0:
            frame = frames[depth]
            frame.done.add(frame.chosen)
            next_choice = None
            for key in frame.enabled:
                if (key in frame.backtrack and key not in frame.done
                        and key not in frame.sleep):
                    next_choice = key
                    break
            if next_choice is not None:
                frame.chosen = next_choice
                del frames[depth + 1:]
                break
            report.sleep_pruned += sum(
                1 for key in frame.enabled
                if key in frame.sleep and key not in frame.done
            )
            frames.pop()
            depth -= 1
        else:
            report.exhausted = not report.truncated
            report.states = len(visited)
            return report


def explore_all(
    workloads: Sequence[Workload],
    budget: Optional[int] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    full: bool = False,
) -> List[ExploreReport]:
    reports = []
    for workload in workloads:
        report = explore(workload, budget=budget, max_steps=max_steps, full=full)
        reports.append(report)
        if report.violation is not None:
            break
    return reports
