"""Replayable counterexample traces (DESIGN.md §13).

A trace is the complete choice sequence of one controlled execution plus
the violation it produced, serialized as *canonical* JSON — sorted keys,
no whitespace, ``\\n``-terminated — so that two runs that reproduce the
same counterexample produce byte-identical files.  Replay is strict: the
recorded key must be enabled at every step (engine determinism guarantees
it for a trace produced by the same build; a mismatch means the trace is
stale).  Shrinking is greedy event deletion: drop one choice, re-run with
the tolerant :class:`PreferenceController`, keep the deletion iff the
same violation signature reproduces, repeat to fixpoint.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from .explorer import DEFAULT_MAX_STEPS, RunOutcome, run_execution
from .scheduler import EventKey, PreferenceController, ReplayController
from .workloads import Workload, build_workload

TRACE_VERSION = 1


def make_trace(
    workload: str,
    choices: Sequence[EventKey],
    violation: Tuple[str, str],
) -> Dict:
    return {
        "version": TRACE_VERSION,
        "workload": workload,
        "choices": [list(c) for c in choices],
        "violation": {"probe": violation[0], "message": violation[1]},
    }


def canonical_bytes(trace: Dict) -> bytes:
    """Byte-stable encoding: key-sorted, whitespace-free JSON."""
    return (
        json.dumps(trace, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def save_trace(trace: Dict, path: str) -> None:
    with open(path, "wb") as fh:
        fh.write(canonical_bytes(trace))


def load_trace(path: str) -> Dict:
    with open(path, "rb") as fh:
        trace = json.loads(fh.read().decode("utf-8"))
    if trace.get("version") != TRACE_VERSION:
        raise ValueError(
            f"trace version {trace.get('version')!r} unsupported"
            f" (expected {TRACE_VERSION})"
        )
    return trace


def trace_choices(trace: Dict) -> List[EventKey]:
    return [tuple(c) for c in trace["choices"]]


def trace_signature(trace: Dict) -> Tuple[str, str]:
    violation = trace["violation"]
    return (violation["probe"], violation["message"])


def replay(trace: Dict, workload: Optional[Workload] = None) -> RunOutcome:
    """Strict replay of a serialized trace.

    Returns the normalized outcome; the caller compares
    ``outcome.violation.signature()`` against :func:`trace_signature`.
    """
    if workload is None:
        workload = build_workload(trace["workload"])
    controller = ReplayController(
        trace_choices(trace), workload.probes(), max_steps=DEFAULT_MAX_STEPS
    )
    return run_execution(workload, controller)


def shrink(
    workload: Workload,
    choices: Sequence[EventKey],
    signature: Tuple[str, str],
    max_rounds: int = 8,
) -> List[EventKey]:
    """Greedy event-deletion minimization.

    Each accepted deletion replaces the choice list with the choices the
    tolerant re-execution *actually* fired — re-canonicalizing the trace
    so the final list strict-replays without any skip semantics.
    """
    current = [tuple(c) for c in choices]
    for _ in range(max_rounds):
        shrunk = False
        index = len(current) - 1
        while index >= 0:
            candidate = current[:index] + current[index + 1:]
            controller = PreferenceController(
                candidate, workload.probes(),
                extend=True, max_steps=DEFAULT_MAX_STEPS,
            )
            outcome = run_execution(workload, controller)
            if (outcome.violation is not None
                    and outcome.violation.signature() == signature
                    and len(outcome.chosen) < len(current)):
                current = outcome.chosen
                shrunk = True
                index = min(index, len(current)) - 1
            else:
                index -= 1
        if not shrunk:
            break
    return current
