"""Deterministic leader election (Section 6, Corollary 1.3).

Epochs ``i = 0, 1, ...``: build a sparse ``2^i``-cover, convergecast the
minimum candidate identifier inside every cluster and broadcast it back;
candidates beaten in any of their clusters drop out.  Termination: every
node sends its cluster memberships to its neighbors, each cluster
convergecasts "does any member have a neighbor outside this cluster?", and a
cluster that contains the whole graph announces its minimum candidate — the
globally minimum id — as the leader.

The election's *communication* (membership exchange, convergecasts,
broadcasts, candidate dropping, termination detection) is implemented as a
genuine event-driven program, so it runs unchanged under the synchronous
runtime, the deterministic synchronizer, and α/β/γ.  The per-epoch cover
*construction* is precomputed and its synchronous cost accounted separately
(DESIGN.md substitution 2 applies: the paper constructs covers with the
deterministic Rozhoň–Ghaffari routine in ``Õ(2^i)`` rounds; benchmark E3
reports those accounted rounds alongside the election's measured rounds).
Membership lists ride in one message (``O(log n)`` ids; the paper pipelines
them over poly(log n) rounds — a constant-factor accounting difference).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..covers.awerbuch_peleg import build_ap_cover
from ..covers.cover import SparseCover
from ..net.graph import Graph, NodeId
from ..net.program import (
    ArrivedBatch,
    NodeInfo,
    NodeProgram,
    ProgramSpec,
    PulseApi,
    all_nodes_initiate,
)


@dataclass(frozen=True)
class ElectionStructure:
    """Per-epoch covers with per-node tree views, precomputed once."""

    covers: Tuple[SparseCover, ...]

    @classmethod
    def build(cls, graph: Graph, builder=build_ap_cover) -> "ElectionStructure":
        max_epoch = max(1, math.ceil(math.log2(max(graph.diameter(), 1))) + 1)
        return cls(
            covers=tuple(builder(graph, 1 << i) for i in range(max_epoch + 1))
        )

    def epoch_count(self) -> int:
        return len(self.covers)


@dataclass
class _ClusterRun:
    """One (epoch, cluster) convergecast at one node."""

    child_values: Dict[NodeId, Tuple] = None
    contributed: bool = False
    value: Optional[Tuple] = None
    sent_up: bool = False
    result: Optional[Tuple] = None

    def __post_init__(self):
        if self.child_values is None:
            self.child_values = {}


def _merge(a: Tuple, b: Tuple) -> Tuple:
    """(min candidate or None, every member's neighbors stay inside)."""
    mins = [x for x in (a[0], b[0]) if x is not None]
    return (min(mins) if mins else None, a[1] and b[1])


class LeaderElectionProgram(NodeProgram):
    structure: ElectionStructure  # bound via subclass namespace

    def __init__(self, info: NodeInfo) -> None:
        super().__init__(info)
        self.epoch = -1
        self.candidate = True
        self.leader: Optional[NodeId] = None
        self.mem_by_epoch: Dict[int, Dict[NodeId, Tuple[int, ...]]] = {}
        self.runs: Dict[Tuple[int, int], _ClusterRun] = {}
        self.results_needed: Set[Tuple[int, int]] = set()
        self.outbox: Dict[NodeId, List[Tuple]] = {}
        self.done = False

    # -- plumbing ------------------------------------------------------
    def _post(self, to: NodeId, part: Tuple) -> None:
        self.outbox.setdefault(to, []).append(part)

    def _flush(self, api: PulseApi) -> None:
        for to in sorted(self.outbox):
            api.send(to, tuple(self.outbox[to]))
        self.outbox.clear()

    def _cover(self, epoch: int) -> SparseCover:
        return self.structure.covers[epoch]

    def _run(self, epoch: int, cid: int) -> _ClusterRun:
        key = (epoch, cid)
        run = self.runs.get(key)
        if run is None:
            run = _ClusterRun()
            self.runs[key] = run
        return run

    def _tree(self, epoch: int, cid: int):
        return self._cover(epoch).cluster(cid)

    # -- lifecycle -----------------------------------------------------
    def on_start(self, api: PulseApi) -> None:
        self._enter_epoch()
        self._flush(api)
        if self.done and self.leader is not None and not self._output_done:
            self._output_done = True
            api.set_output(self.leader)

    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        for sender, parts in arrived:
            for part in parts:
                self._dispatch(sender, part)
        self._flush(api)
        if self.done and self.leader is not None and not self._output_done:
            self._output_done = True
            api.set_output(self.leader)

    _output_done = False

    def _enter_epoch(self) -> None:
        self.epoch += 1
        if self.epoch >= self.structure.epoch_count():
            raise RuntimeError("leader election ran out of precomputed epochs")
        cover = self._cover(self.epoch)
        members = cover.clusters_of.get(self.info.node_id, ())
        for v in self.info.neighbors:
            self._post(v, ("mem", self.epoch, tuple(members)))
        self.results_needed = {
            (self.epoch, c.cluster_id)
            for c in cover.clusters
            if self.info.node_id in c.parent
        }
        # Steiner-only trees can be contributed immediately; member trees
        # wait for the neighbors' membership lists.
        for epoch, cid in list(self.results_needed):
            self._maybe_contribute(epoch, cid)

    def _dispatch(self, sender: NodeId, part: Tuple) -> None:
        kind = part[0]
        if kind == "mem":
            self.mem_by_epoch.setdefault(part[1], {})[sender] = part[2]
            if part[1] == self.epoch:
                for epoch, cid in list(self.results_needed):
                    self._maybe_contribute(epoch, cid)
        elif kind == "up":
            _, epoch, cid, value = part
            run = self._run(epoch, cid)
            run.child_values[sender] = value
            self._maybe_forward(epoch, cid)
        elif kind == "down":
            _, epoch, cid, value = part
            self._consume_result(epoch, cid, value)
        else:  # pragma: no cover
            raise ValueError(f"unknown election part {part!r}")

    # -- per-cluster convergecast ---------------------------------------
    def _maybe_contribute(self, epoch: int, cid: int) -> None:
        run = self._run(epoch, cid)
        if run.contributed:
            return
        cover = self._cover(epoch)
        tree = cover.cluster(cid)
        me = self.info.node_id
        if me in tree.members:
            mems = self.mem_by_epoch.get(epoch, {})
            if set(mems) < set(self.info.neighbors):
                return
            all_inside = all(cid in mems[v] for v in self.info.neighbors)
            value = (me if self.candidate else None, all_inside)
        else:
            value = (None, True)
        run.contributed = True
        run.value = value
        self._maybe_forward(epoch, cid)

    def _maybe_forward(self, epoch: int, cid: int) -> None:
        run = self._run(epoch, cid)
        if run.sent_up or not run.contributed:
            return
        tree = self._tree(epoch, cid)
        children = tree.children.get(self.info.node_id, ())
        if set(run.child_values) < set(children):
            return
        combined = run.value
        for c in children:
            combined = _merge(combined, run.child_values[c])
        run.sent_up = True
        parent = tree.parent[self.info.node_id]
        if parent is None:
            self._consume_result(epoch, cid, combined)
        else:
            self._post(parent, ("up", epoch, cid, combined))

    def _consume_result(self, epoch: int, cid: int, value: Tuple) -> None:
        run = self._run(epoch, cid)
        run.result = value
        tree = self._tree(epoch, cid)
        for c in tree.children.get(self.info.node_id, ()):
            self._post(c, ("down", epoch, cid, value))
        self.results_needed.discard((epoch, cid))
        min_cand, contains_all = value
        if min_cand is not None and min_cand < self.info.node_id:
            self.candidate = False
        if contains_all and min_cand is not None:
            self.leader = min_cand
            self.done = True
        if not self.results_needed and not self.done:
            self._enter_epoch()


def leader_election_spec(structure: ElectionStructure) -> ProgramSpec:
    program = type(
        "BoundLeaderElection", (LeaderElectionProgram,), {"structure": structure}
    )
    return ProgramSpec("leader-election", program, all_nodes_initiate)
