"""A library of event-driven synchronous programs (Section 5.1 contract).

These are the workloads the synchronizer experiments run: they span the
regimes the paper's analysis distinguishes — few-messages-per-round
programs (where α's per-round traffic is catastrophic), deep programs
(where β's tree round-trips dominate), and chatty flooding programs.
Every program is a deterministic state machine over pulse batches, so its
outputs are identical under the synchronous runtime, the deterministic
synchronizer, and the α/β/γ baselines.
"""

from __future__ import annotations

from typing import Any, List, Optional, Set, Tuple

from ..net.graph import Graph, NodeId
from ..net.program import (
    ArrivedBatch,
    NodeInfo,
    NodeProgram,
    ProgramSpec,
    PulseApi,
    all_nodes_initiate,
    sampled_initiators,
    single_initiator,
)


class FloodMaxProgram(NodeProgram):
    """Every node learns the maximum node id (classic leader-election flood)."""

    def __init__(self, info: NodeInfo) -> None:
        super().__init__(info)
        self.best = info.node_id

    def on_start(self, api: PulseApi) -> None:
        api.set_output(self.best)
        for v in self.info.neighbors:
            api.send(v, self.best)

    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        improved = False
        for _, value in arrived:
            if value > self.best:
                self.best = value
                improved = True
        if improved:
            api.set_output(self.best)
            for v in self.info.neighbors:
                api.send(v, self.best)


def flood_max_spec() -> ProgramSpec:
    return ProgramSpec("flood-max", FloodMaxProgram, all_nodes_initiate)


class BfsProgram(NodeProgram):
    """Single- or multi-source BFS: output (distance, parent)."""

    def __init__(self, info: NodeInfo) -> None:
        super().__init__(info)
        self.dist: Optional[int] = None
        self.parent: Optional[NodeId] = None

    def on_start(self, api: PulseApi) -> None:
        self.dist = 0
        api.set_output((0, None))
        for v in self.info.neighbors:
            api.send(v, 0)

    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        if self.dist is None and arrived:
            sender, value = arrived[0]
            self.dist = value + 1
            self.parent = sender
            api.set_output((self.dist, self.parent))
            for v in self.info.neighbors:
                api.send(v, self.dist)


def bfs_spec(source: NodeId) -> ProgramSpec:
    return ProgramSpec("sync-bfs", BfsProgram, single_initiator(source))


def multi_bfs_spec(sources: int) -> ProgramSpec:
    """Multi-source BFS from ``sources`` evenly sampled initiators.

    The n=512+ sweep workload (ROADMAP / DESIGN.md §8): the sampled set
    keeps the pulse bound near ``n / (2 * sources)`` and the message volume
    near-linear, where an all-initiator flood costs Θ(n²) on a cycle.
    """
    return ProgramSpec(
        f"sync-bfs-ms{sources}", BfsProgram, sampled_initiators(sources)
    )


class BroadcastEchoProgram(NodeProgram):
    """Root broadcasts a token; an echo convergecast counts the nodes.

    A sparse program: each node sends in O(1) pulses, so M(A) ≪ T(A)·m on
    high-diameter graphs — the regime where α synchronizers lose badly.
    """

    def __init__(self, info: NodeInfo) -> None:
        super().__init__(info)
        self.parent: Optional[NodeId] = None
        self.is_root = False
        self.seen = False
        self.expected: Optional[Set[NodeId]] = None
        self.counts: dict = {}
        self.echoed = False

    def on_start(self, api: PulseApi) -> None:
        self.is_root = True
        self.seen = True
        self.expected = set(self.info.neighbors)
        for v in self.info.neighbors:
            api.send(v, ("bc",))

    def _maybe_echo(self, api: PulseApi) -> None:
        if self.echoed or self.expected is None or self.expected:
            return
        self.echoed = True
        total = 1 + sum(self.counts.values())
        if self.is_root:
            api.set_output(total)
        else:
            api.send(self.parent, ("echo", total))

    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        bc_senders = [s for s, m in arrived if m[0] == "bc"]
        if not self.seen and bc_senders:
            self.seen = True
            self.parent = bc_senders[0]
            holders = set(bc_senders)
            children = [v for v in self.info.neighbors if v not in holders]
            self.expected = set(children)
            api.set_output("reached")
            for v in children:
                api.send(v, ("bc",))
            for v in bc_senders[1:]:
                api.send(v, ("echo", 0))
        else:
            for v in bc_senders:
                api.send(v, ("echo", 0))
        for sender, message in arrived:
            if message[0] == "echo":
                self.counts[sender] = max(self.counts.get(sender, 0), message[1])
                self.expected.discard(sender)
        if self.seen:
            self._maybe_echo(api)


def broadcast_echo_spec(root: NodeId) -> ProgramSpec:
    return ProgramSpec("broadcast-echo", BroadcastEchoProgram, single_initiator(root))


class PathTokenProgram(NodeProgram):
    """A token walks from the initiator along increasing node ids.

    Extreme sparsity: one message per pulse in the whole network, the
    worst case for any synchronizer that pays per-round global traffic.
    """

    def on_start(self, api: PulseApi) -> None:
        target = self._next_hop()
        api.set_output("visited")
        if target is not None:
            api.send(target, "token")

    def _next_hop(self) -> Optional[NodeId]:
        higher = [v for v in self.info.neighbors if v > self.info.node_id]
        return min(higher) if higher else None

    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        if not arrived:
            return
        api.set_output("visited")
        target = self._next_hop()
        if target is not None:
            api.send(target, "token")


def path_token_spec(start: NodeId = 0) -> ProgramSpec:
    return ProgramSpec("path-token", PathTokenProgram, single_initiator(start))


class NeighborSumProgram(NodeProgram):
    """Two-pulse program: exchange ids, output the sum of neighbor ids."""

    def __init__(self, info: NodeInfo) -> None:
        super().__init__(info)
        self.total = 0
        self.waiting = len(info.neighbors)

    def on_start(self, api: PulseApi) -> None:
        for v in self.info.neighbors:
            api.send(v, self.info.node_id)

    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        for _, value in arrived:
            self.total += value
            self.waiting -= 1
        if self.waiting == 0:
            api.set_output(self.total)


def neighbor_sum_spec() -> ProgramSpec:
    return ProgramSpec("neighbor-sum", NeighborSumProgram, all_nodes_initiate)


class PulseWaveProgram(NodeProgram):
    """k back-and-forth waves between even and odd nodes of a path/grid.

    Deep and regular: exercises many consecutive pulses through the same
    edges, stressing the per-pulse stage scheduling (Lemma 2.5).
    """

    waves = 6

    def __init__(self, info: NodeInfo) -> None:
        super().__init__(info)
        self.count = 0

    def on_start(self, api: PulseApi) -> None:
        for v in self.info.neighbors:
            if v > self.info.node_id:
                api.send(v, 1)

    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        if not arrived:
            return
        wave = max(value for _, value in arrived)
        self.count = max(self.count, wave)
        if wave >= self.waves:
            api.set_output(wave)
            return
        forward = wave % 2 == 0
        for v in self.info.neighbors:
            if (v > self.info.node_id) == forward:
                api.send(v, wave + 1)
        api.set_output(wave)


def pulse_wave_spec() -> ProgramSpec:
    return ProgramSpec("pulse-wave", PulseWaveProgram, all_nodes_initiate)


def standard_programs(graph: Graph) -> List[ProgramSpec]:
    """The program suite the equivalence tests and E5/E6 sweep over."""
    return [
        flood_max_spec(),
        bfs_spec(0),
        broadcast_echo_spec(0),
        path_token_spec(0),
        neighbor_sum_spec(),
    ]
