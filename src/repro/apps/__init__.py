"""Applications (Section 6): programs, leader election, MST."""

from .programs import (
    bfs_spec,
    broadcast_echo_spec,
    flood_max_spec,
    neighbor_sum_spec,
    path_token_spec,
    pulse_wave_spec,
    standard_programs,
)
from .leader_election import ElectionStructure, leader_election_spec
from .mst import mst_edges_from_outputs, mst_spec, reference_mst

__all__ = [
    "bfs_spec", "broadcast_echo_spec", "flood_max_spec", "neighbor_sum_spec",
    "path_token_spec", "pulse_wave_spec", "standard_programs",
    "ElectionStructure", "leader_election_spec",
    "mst_edges_from_outputs", "mst_spec", "reference_mst",
]
