"""Event-driven synchronous MST (the Corollary 1.4 inner algorithm).

A Borůvka/GHS-style fragment-merging MST, written against the event-driven
contract so it runs unchanged under the synchronous runtime, the paper's
deterministic synchronizer, and the α/β/γ baselines.  Weights must be
distinct (the MST is then unique); ``repro.net.topology.with_random_weights``
produces such graphs.

Per phase (at most ``log2 n`` of them — every fragment merges every phase):

1. every node tells each neighbor its fragment id;
2. each node computes its minimum-weight outgoing edge (MOE) and the
   fragment minimum is convergecast up the fragment tree;
3. the fragment leader broadcasts the chosen edge; its endpoint fires a
   merge request across it;
4. merge requests glue fragments; the unique mutually-chosen pair nominates
   its higher endpoint as new leader, whose "newfrag" broadcast re-roots the
   union (each node adopts the sender of its first newfrag as parent) and
   starts the next phase.

Because fragments pace themselves independently, a fragment's internal
merge broadcast can race against the incoming newfrag wave; stale phase-k
messages are then dropped.  This can drop a chosen MOE from the *gluing*,
but never from correctness: the final parent structure is a spanning tree
whose every edge was some phase's chosen MOE, and a spanning tree contained
in the MST is the MST.  Liveness holds because a fragment that never fires
its merge request was, by construction, already invaded by the newfrag wave,
and late merge requests are answered with the adopted fragment directly.

The leader whose fragment has no outgoing edge owns the full tree and
broadcasts termination; every node outputs its incident MST edges.

This substitutes for Elkin'20's ``Õ(D + sqrt(n))``-round algorithm
(DESIGN.md substitution 4): message complexity is ``O(m log n)`` matching
Corollary 1.4's ``Õ(m)``, while the round complexity is ``O(n log n)`` in
the worst case.  To respect CONGEST's one-message-per-neighbor-per-round,
the sub-messages a node owes one neighbor in a pulse are batched into one
message carrying a tuple of parts (constant blow-up).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..net.graph import Graph, NodeId, edge_key
from ..net.program import (
    ArrivedBatch,
    NodeInfo,
    NodeProgram,
    ProgramSpec,
    PulseApi,
    all_nodes_initiate,
)

INFINITE = (float("inf"), -1, -1)


class MstProgram(NodeProgram):
    """One node of the Borůvka MST; a state machine over pulse batches."""

    def __init__(self, info: NodeInfo) -> None:
        super().__init__(info)
        self.phase = 0
        self.fragment = info.node_id
        self.parent: Optional[NodeId] = None
        self.children: Set[NodeId] = set()
        self.fid_by_phase: Dict[int, Dict[NodeId, NodeId]] = {}
        self.mreq_by_phase: Dict[int, Set[NodeId]] = {}
        self.moe_reports: Dict[NodeId, Tuple] = {}
        self.moe_sent = False
        self.merge_sent_to: Optional[NodeId] = None
        self.adopted_fragment: Dict[int, NodeId] = {}
        self.done = False
        self.outbox: Dict[NodeId, List[Tuple]] = {}

    # ------------------------------------------------------------------
    # batching: at most one physical message per neighbor per pulse
    # ------------------------------------------------------------------
    def _post(self, to: NodeId, part: Tuple) -> None:
        self.outbox.setdefault(to, []).append(part)

    def _flush(self, api: PulseApi) -> None:
        for to in sorted(self.outbox):
            api.send(to, tuple(self.outbox[to]))
        self.outbox.clear()

    # ------------------------------------------------------------------
    def on_start(self, api: PulseApi) -> None:
        self._begin_phase()
        self._flush(api)

    def _begin_phase(self) -> None:
        self.moe_reports.clear()
        self.moe_sent = False
        self.merge_sent_to = None
        for v in self.info.neighbors:
            self._post(v, ("fid", self.phase, self.fragment))

    # ------------------------------------------------------------------
    def on_pulse(self, api: PulseApi, arrived: ArrivedBatch) -> None:
        if self.done and not arrived:
            return
        for sender, parts in arrived:
            for part in parts:
                self._dispatch(sender, part)
        if not self.done:
            self._maybe_report_moe()
            self._maybe_new_leader()
        self._flush(api)
        if self._pending_output is not None:
            api.set_output(self._pending_output)
            self._pending_output = None

    _pending_output: Optional[Tuple] = None

    def _dispatch(self, sender: NodeId, part: Tuple) -> None:
        kind = part[0]
        if kind == "fid":
            self.fid_by_phase.setdefault(part[1], {})[sender] = part[2]
        elif kind == "moe":
            if part[1] == self.phase and not self.done:
                self.moe_reports[sender] = part[2]
        elif kind == "merge":
            if part[1] == self.phase and not self.done:
                self._handle_merge(part[2])
        elif kind == "mreq":
            phase = part[1]
            self.mreq_by_phase.setdefault(phase, set()).add(sender)
            if phase < self.phase:
                # Late merge request: we already adopted for that phase —
                # hand the sender the new fragment directly and make the
                # tree edge consistent on our side too.  Our current-phase
                # MOE convergecast cannot have completed yet, because it
                # still waits for this sender's current-phase fid.
                self.children.add(sender)
                self._post(
                    sender, ("newfrag", phase, self.adopted_fragment[phase])
                )
                if self.done:  # pragma: no cover - defensive; see docstring
                    self._post(sender, ("done",))
        elif kind == "newfrag":
            phase, fragment = part[1], part[2]
            if phase == self.phase:
                self._adopt(phase, fragment, sender)
            # else: duplicate delivery on a raced edge; already adopted.
        elif kind == "done":
            if not self.done:
                self._broadcast_done()
        else:  # pragma: no cover
            raise ValueError(f"unknown MST part {part!r}")

    # ------------------------------------------------------------------
    # phase body
    # ------------------------------------------------------------------
    def _local_moe(self) -> Tuple:
        fids = self.fid_by_phase.get(self.phase, {})
        best = INFINITE
        for v in self.info.neighbors:
            if fids.get(v) != self.fragment:
                cand = (self.info.weight(v), self.info.node_id, v)
                if cand < best:
                    best = cand
        return best

    def _maybe_report_moe(self) -> None:
        if self.moe_sent:
            return
        fids = self.fid_by_phase.get(self.phase, {})
        if set(fids) < set(self.info.neighbors):
            return
        if set(self.moe_reports) < self.children:
            return
        best = self._local_moe()
        for report in self.moe_reports.values():
            best = min(best, tuple(report))
        self.moe_sent = True
        if self.parent is not None:
            self._post(self.parent, ("moe", self.phase, best))
        elif best == INFINITE:
            self._broadcast_done()
        else:
            self._handle_merge(best)

    def _handle_merge(self, best: Tuple) -> None:
        _, u, v = best
        if u == self.info.node_id:
            self._post(v, ("mreq", self.phase, self.fragment))
            self.merge_sent_to = v
            self._maybe_new_leader()
        else:
            for c in sorted(self.children):
                self._post(c, ("merge", self.phase, best))

    def _maybe_new_leader(self) -> None:
        v = self.merge_sent_to
        if v is None or self.done:
            return
        if v in self.mreq_by_phase.get(self.phase, set()):
            if self.info.node_id > v:
                self._adopt(self.phase, self.info.node_id, None)

    def _adopt(
        self, phase: int, new_fragment: NodeId, new_parent: Optional[NodeId]
    ) -> None:
        tree_neighbors = set(self.children)
        if self.parent is not None:
            tree_neighbors.add(self.parent)
        merge_links = set(self.mreq_by_phase.get(phase, set()))
        if self.merge_sent_to is not None:
            merge_links.add(self.merge_sent_to)
        self.adopted_fragment[phase] = new_fragment
        self.fragment = new_fragment
        self.parent = new_parent
        targets = tree_neighbors | merge_links
        if new_parent is not None:
            targets.discard(new_parent)
        self.children = set(targets)
        self.phase = phase + 1
        for c in sorted(targets):
            self._post(c, ("newfrag", phase, new_fragment))
        self._begin_phase()

    def _broadcast_done(self) -> None:
        self.done = True
        for c in sorted(self.children):
            self._post(c, ("done",))
        edges = {edge_key(self.info.node_id, c) for c in self.children}
        if self.parent is not None:
            edges.add(edge_key(self.info.node_id, self.parent))
        self._pending_output = tuple(sorted(edges))


def mst_spec() -> ProgramSpec:
    return ProgramSpec("boruvka-mst", MstProgram, all_nodes_initiate)


def mst_edges_from_outputs(outputs: Dict[NodeId, Tuple]) -> FrozenSet[Tuple[int, int]]:
    """Union of per-node incident MST edge outputs."""
    edges: Set[Tuple[int, int]] = set()
    for node_edges in outputs.values():
        edges.update(node_edges)
    return frozenset(edges)


def reference_mst(graph: Graph) -> FrozenSet[Tuple[int, int]]:
    """Kruskal oracle for tests and benchmarks."""
    parent = list(range(graph.num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: Set[Tuple[int, int]] = set()
    for w, e in sorted((graph.weight(*e), e) for e in graph.edges):
        ra, rb = find(e[0]), find(e[1])
        if ra != rb:
            parent[ra] = rb
            chosen.add(e)
    return frozenset(chosen)
