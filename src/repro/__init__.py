"""repro — reproduction of *A Near-Optimal Deterministic Distributed Synchronizer*
(Ghaffari & Trygub, PODC 2023, arXiv:2305.06452).

Quickstart::

    from repro.net import topology, ConstantDelay
    from repro.core import run_async_bfs

    graph = topology.grid_graph(6, 6)
    result = run_async_bfs(graph, source=0, delay_model=ConstantDelay())
    print(result.distances)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

__version__ = "1.0.0"
