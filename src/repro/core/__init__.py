"""The paper's contribution: pulse machinery, registration, BFS, synchronizer."""

from .pulse import (
    COVER_LEVEL_OFFSET,
    cover_level,
    gating_pulses_at,
    level,
    prev,
    prev_prev,
    registration_pulses_at,
    source_pulses,
)
from .registration import (
    CLEAN,
    DIRTY,
    WAITING,
    ClusterView,
    RegistrationModule,
    cluster_views_for,
)
from .cluster_ops import ClusterAggregateModule, and_merge, min_merge
from .gather import GatherModule
from .registry import CoverRegistry
from .thresholded_bfs import UNREACHED, ThresholdedBFSCore
from .bfs_runner import (
    BFSOutcome,
    registry_for_threshold,
    required_cover_radius,
    run_thresholded_bfs,
)
from .multi_stage import run_multi_stage_bfs
from .full_bfs import run_full_bfs
from .synchronizer import pulse_bound_for, run_synchronized
from .recovery import ChurnOutcome, RecoverySynchronizerProcess, run_churn
from .sweep import (
    SynchronizerSweep,
    ThresholdedBFSSweep,
    bound_process_class,
    run_sweeps_sharded,
    sweep_synchronized,
)

__all__ = [
    "COVER_LEVEL_OFFSET", "cover_level", "gating_pulses_at", "level", "prev",
    "prev_prev", "registration_pulses_at", "source_pulses",
    "CLEAN", "DIRTY", "WAITING", "ClusterView", "RegistrationModule",
    "cluster_views_for", "ClusterAggregateModule", "and_merge", "min_merge",
    "GatherModule", "CoverRegistry", "UNREACHED", "ThresholdedBFSCore",
    "BFSOutcome", "registry_for_threshold", "required_cover_radius",
    "run_thresholded_bfs", "run_multi_stage_bfs", "run_full_bfs",
    "pulse_bound_for", "run_synchronized",
    "ChurnOutcome", "RecoverySynchronizerProcess", "run_churn",
    "SynchronizerSweep", "ThresholdedBFSSweep", "sweep_synchronized",
    "bound_process_class", "run_sweeps_sharded",
]
