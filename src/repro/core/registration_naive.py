"""The "natural attempt" registration of [AP90a] (Section 3.2).

Every registration/deregistration is an individual message relayed hop by
hop to the cluster root, which tallies ids and issues the Go-Ahead when all
registered nodes have deregistered; replies retrace the recorded path.

This is the scheme the paper proves inadequate: all traffic crosses the
root's incident tree edges, so with ``r`` registrants the edge congestion —
and hence the completion time under the one-message-in-flight discipline —
is Ω(r) even on a constant-height tree, versus O(height) for the dirty-mark
scheme.  Benchmark E9 measures exactly this gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..net.graph import NodeId
from .registration import ClusterView

MSG_PREFIX = "nreg"

Tag = Any
Key = Tuple[int, Tag]


@dataclass
class _RootLedger:
    registered: Set[NodeId] = field(default_factory=set)
    deregistered: Set[NodeId] = field(default_factory=set)


class NaiveRegistrationModule:
    """Drop-in (API-compatible) replacement for :class:`RegistrationModule`."""

    def __init__(
        self,
        node_id: NodeId,
        clusters: Dict[int, ClusterView],
        send: Callable[[NodeId, Tuple, Any], None],
        on_registered: Callable[[int, Tag], None],
        on_go_ahead: Callable[[int, Tag], None],
        priority_fn: Callable[[Tag], Any],
    ) -> None:
        self.node_id = node_id
        self.clusters = clusters
        self._send = send
        self.on_registered = on_registered
        self.on_go_ahead = on_go_ahead
        self.priority_fn = priority_fn
        self._ledgers: Dict[Key, _RootLedger] = {}
        self._states: Dict[Key, str] = {}
        self.messages_sent = 0

    # ------------------------------------------------------------------
    def _emit(self, to: NodeId, payload: Tuple, tag: Tag) -> None:
        self.messages_sent += 1
        self._send(to, payload, self.priority_fn(tag))

    def _route_up(self, cluster_id: int, tag: Tag, kind: str, origin: NodeId, path: Tuple[NodeId, ...]) -> None:
        view = self.clusters[cluster_id]
        if view.is_root:
            self._root_receive(cluster_id, tag, kind, origin, path)
        else:
            self._emit(
                view.parent,
                (MSG_PREFIX, "up", kind, cluster_id, tag, origin, path + (self.node_id,)),
                tag,
            )

    def register(self, cluster_id: int, tag: Tag) -> None:
        key = (cluster_id, tag)
        if self._states.get(key) is not None:
            raise ValueError("double registration")
        self._states[key] = "registering"
        self._route_up(cluster_id, tag, "reg", self.node_id, ())

    def deregister(self, cluster_id: int, tag: Tag) -> None:
        key = (cluster_id, tag)
        if self._states.get(key) != "registered":
            raise ValueError("deregister before registration completed")
        self._states[key] = "deregistered"
        self._route_up(cluster_id, tag, "dereg", self.node_id, ())

    def state_of(self, cluster_id: int, tag: Tag) -> str:
        return self._states.get((cluster_id, tag), "none")

    # ------------------------------------------------------------------
    def _root_receive(
        self, cluster_id: int, tag: Tag, kind: str, origin: NodeId, path: Tuple[NodeId, ...]
    ) -> None:
        key = (cluster_id, tag)
        ledger = self._ledgers.setdefault(key, _RootLedger())
        if kind == "reg":
            ledger.registered.add(origin)
            self._reply(cluster_id, tag, "ack", origin, path)
        elif kind == "dereg":
            ledger.deregistered.add(origin)
            if ledger.deregistered >= ledger.registered and ledger.registered:
                for target in sorted(ledger.deregistered):
                    self._reply_go(cluster_id, tag, target)
        else:  # pragma: no cover
            raise ValueError(kind)

    def _reply(self, cluster_id: int, tag: Tag, kind: str, origin: NodeId, path: Tuple[NodeId, ...]) -> None:
        if origin == self.node_id and not path:
            self._deliver_reply(cluster_id, tag, kind)
            return
        target_path = path
        next_hop = target_path[-1] if target_path else origin
        self._emit(
            next_hop,
            (MSG_PREFIX, "down", kind, cluster_id, tag, origin, target_path[:-1]),
            tag,
        )

    def _reply_go(self, cluster_id: int, tag: Tag, target: NodeId) -> None:
        # Go-Aheads are routed down the tree by address (hop-by-hop search
        # is avoided by retracing the stored registration path).
        ledger = self._ledgers[(cluster_id, tag)]
        path = getattr(ledger, "paths", {}).get(target)
        if target == self.node_id:
            self._deliver_reply(cluster_id, tag, "go")
            return
        if path is None:
            # Fall back to the recorded ack path: store at registration.
            raise AssertionError("missing return path for Go-Ahead")
        next_hop = path[-1]
        self._emit(
            next_hop,
            (MSG_PREFIX, "down", "go", cluster_id, tag, target, path[:-1]),
            tag,
        )

    def _deliver_reply(self, cluster_id: int, tag: Tag, kind: str) -> None:
        key = (cluster_id, tag)
        if kind == "ack":
            self._states[key] = "registered"
            self.on_registered(cluster_id, tag)
        elif kind == "go":
            self._states[key] = "free"
            self.on_go_ahead(cluster_id, tag)

    # ------------------------------------------------------------------
    def handle(self, sender: NodeId, payload: Tuple) -> bool:
        if not (isinstance(payload, tuple) and payload and payload[0] == MSG_PREFIX):
            return False
        _, direction, kind, cluster_id, tag, origin, path = payload
        if direction == "up":
            view = self.clusters[cluster_id]
            if view.is_root:
                ledger = self._ledgers.setdefault((cluster_id, tag), _RootLedger())
                if not hasattr(ledger, "paths"):
                    ledger.paths = {}
                if kind == "reg":
                    ledger.paths[origin] = path
                self._root_receive(cluster_id, tag, kind, origin, path)
            else:
                self._emit(
                    view.parent,
                    (MSG_PREFIX, "up", kind, cluster_id, tag, origin, path + (self.node_id,)),
                    tag,
                )
        elif direction == "down":
            if origin == self.node_id and not path:
                self._deliver_reply(cluster_id, tag, kind)
            else:
                next_hop = path[-1] if path else origin
                self._emit(
                    next_hop,
                    (MSG_PREFIX, "down", kind, cluster_id, tag, origin, path[:-1]),
                    tag,
                )
        else:  # pragma: no cover
            raise ValueError(direction)
        return True
