"""Pulse arithmetic (Definitions 4.3–4.5 and Lemmas 4.7/4.13/4.14/4.16).

The synchronizer schedules its per-pulse stages using the dyadic structure of
pulse numbers: the *level* ``l(p)`` of a pulse is the exponent of the largest
power of two dividing it, and ``prev(p)`` is the nearest strictly-higher-level
pulse at distance at least ``2^l(p)`` below ``p``.  Safety information for
pulse ``p`` is collected at nodes of pulse ``prev(prev(p))``, and the
registration for pulse ``p`` happens in the sparse ``2^{l(p)+5}``-cover.

All functions here are pure and integer-only; the property tests pin the
paper's inequalities exactly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

INFINITE_LEVEL = float("inf")

#: Registration for pulse p uses the sparse 2^(l(p) + COVER_LEVEL_OFFSET)-cover
#: (Section 4.1.2).
COVER_LEVEL_OFFSET = 5


def level(p: int) -> float:
    """Level l(p): exponent of the largest power of 2 dividing p; inf for 0."""
    if p < 0:
        raise ValueError(f"pulse must be non-negative, got {p}")
    if p == 0:
        return INFINITE_LEVEL
    return (p & -p).bit_length() - 1


@lru_cache(maxsize=None)
def prev(p: int) -> int:
    """Definition 4.4: the largest pulse of level ``l(p)+1`` at most ``p - 2^l(p)``.

    Returns 0 when no such positive pulse exists; ``prev(0) = 0``.
    Memoized: the synchronizer machinery queries the same few pulse values
    tens of thousands of times per run.
    """
    if p < 0:
        raise ValueError(f"pulse must be non-negative, got {p}")
    if p == 0:
        return 0
    lev = int(level(p))
    target_level = lev + 1
    ceiling = p - (1 << lev)
    block = 1 << target_level
    multiple = ceiling // block
    if multiple <= 0:
        return 0
    if multiple % 2 == 0:
        multiple -= 1
    if multiple <= 0:
        return 0
    return multiple * block


@lru_cache(maxsize=None)
def prev_prev(p: int) -> int:
    """``prev(prev(p))`` — where pulse-p safety information is collected."""
    return prev(prev(p))


@lru_cache(maxsize=None)
def cover_level(p: int) -> int:
    """The cover layer used for pulse-p registration: ``l(p) + 5``."""
    if p <= 0:
        raise ValueError("cover level defined for positive pulses only")
    return int(level(p)) + COVER_LEVEL_OFFSET


def pulses_up_to(max_pulse: int) -> range:
    """All positive pulses the machinery runs stages for."""
    return range(1, max_pulse + 1)


@lru_cache(maxsize=None)
def _registration_pulses_at(w: int, max_pulse: int) -> tuple:
    return tuple(p for p in pulses_up_to(max_pulse) if prev_prev(p) == w)


def registration_pulses_at(w: int, max_pulse: int) -> List[int]:
    """All pulses ``p <= max_pulse`` with ``prev_prev(p) == w``.

    A node of pulse ``w`` p-registers/p-deregisters exactly for these pulses
    (Section 4.1.2).  Lemma 4.14 bounds their number by ``O(log max_pulse)``.
    """
    return list(_registration_pulses_at(w, max_pulse))


def source_pulses(max_pulse: int) -> List[int]:
    """Pulses with ``prev_prev(p) == 0`` — handled by the multi-source
    convergecast registration of Section 4.2.  Lemma 4.16: O(log max_pulse)."""
    return registration_pulses_at(0, max_pulse)


@lru_cache(maxsize=None)
def gating_pulses_cached(w: int, max_pulse: int) -> tuple:
    """Memoized tuple variant of :func:`gating_pulses_at` for hot paths."""
    return tuple(p for p in pulses_up_to(max_pulse) if prev(p) == w)


@lru_cache(maxsize=None)
def assemble_pulses(w: int, max_pulse: int) -> tuple:
    """Pulses ``q > w + 1`` whose safety flow passes through pulse-``w`` nodes.

    A node (or virtual node) of pulse ``w`` participates in flow ``q`` iff
    ``prev_prev(q) <= w <= q - 1``; once its child answers close, exactly the
    flows in this (memoized) table may newly assemble there.  The machinery
    iterates it on every answers-complete event, so the O(max_pulse) scan is
    paid once per (w, max_pulse).
    """
    return tuple(q for q in range(w + 2, max_pulse + 1) if prev_prev(q) <= w)


def gating_pulses_at(w: int, max_pulse: int) -> List[int]:
    """All pulses ``p <= max_pulse`` with ``prev(p) == w``.

    While the ``w``-safety convergecast passes through a node of pulse
    ``prev(w)``, that node must first p-register for each of these ``p``
    before forwarding the report upward.

    The memoized tuple is copied into a fresh list per call; hot paths inside
    the machinery iterate :func:`gating_pulses_cached` directly.
    """
    return list(gating_pulses_cached(w, max_pulse))
