"""Node-local views of a layered sparse cover.

The asynchronous machinery needs, per node: which cluster trees it sits on
(parent/children per cluster, for the registration and aggregation waves) and
which clusters it is a *member* of per level (for "register in all clusters
of the 2^{l(p)+5}-cover that contain v").  :class:`CoverRegistry` assigns
globally unique cluster ids across levels and precomputes those views.

All per-(node, level) queries return precomputed tuples (DESIGN.md §6):
the synchronizer asks for the same membership sets on every pulse of every
flow, so the registry answers from immutable caches built once at
construction.  Callers must treat the returned tuples as read-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..covers.cluster import ClusterTree
from ..covers.cover import LayeredCover
from ..net.graph import NodeId
from .registration import ClusterView


@dataclass(frozen=True)
class GlobalCluster:
    global_id: int
    level: int
    tree: ClusterTree


class CoverRegistry:
    """Level-indexed, globally-id'd view of a :class:`LayeredCover`."""

    def __init__(self, layered: LayeredCover) -> None:
        self.layered = layered
        self._clusters: Dict[int, GlobalCluster] = {}
        self._by_level: Dict[int, List[int]] = {}
        member_of: Dict[Tuple[NodeId, int], List[int]] = {}
        tree_at: Dict[Tuple[NodeId, int], List[int]] = {}
        self._views: Dict[NodeId, Dict[int, ClusterView]] = {}
        next_id = 0
        for level in sorted(layered.levels):
            cover = layered.levels[level]
            ids: List[int] = []
            for tree in cover.clusters:
                gc = GlobalCluster(global_id=next_id, level=level, tree=tree)
                self._clusters[next_id] = gc
                ids.append(next_id)
                for v in tree.parent:
                    self._views.setdefault(v, {})[next_id] = ClusterView(
                        cluster_id=next_id,
                        parent=tree.parent[v],
                        children=tree.children.get(v, ()),
                    )
                    tree_at.setdefault((v, level), []).append(next_id)
                for v in tree.members:
                    member_of.setdefault((v, level), []).append(next_id)
                next_id += 1
            self._by_level[level] = ids
        self._member_of: Dict[Tuple[NodeId, int], Tuple[int, ...]] = {
            key: tuple(ids) for key, ids in member_of.items()
        }
        self._tree_at: Dict[Tuple[NodeId, int], Tuple[int, ...]] = {
            key: tuple(ids) for key, ids in tree_at.items()
        }
        self._min_level = min(self._by_level)
        self._top_level = layered.top_level
        self._empty: Tuple[int, ...] = ()

    @property
    def top_level(self) -> int:
        return self._top_level

    def clamp_level(self, level: int) -> int:
        """Clamp a requested cover level into the available range."""
        if level < self._min_level:
            return self._min_level
        if level > self._top_level:
            return self._top_level
        return level

    def cluster(self, global_id: int) -> GlobalCluster:
        return self._clusters[global_id]

    def clusters_at_level(self, level: int) -> List[int]:
        return list(self._by_level[self.clamp_level(level)])

    def views_of(self, node: NodeId) -> Dict[int, ClusterView]:
        """Every cluster tree this node participates in (member or Steiner).

        Returns the registry's own mapping — treat as read-only.
        """
        views = self._views.get(node)
        return views if views is not None else {}

    def member_clusters(self, node: NodeId, level: int) -> Tuple[int, ...]:
        """Global ids of clusters at ``level`` that contain ``node``.

        Returns a cached tuple — do not mutate.
        """
        return self._member_of.get((node, self.clamp_level(level)), self._empty)

    def tree_clusters_of(self, node: NodeId, level: int) -> Tuple[int, ...]:
        """Clusters at ``level`` whose tree passes through ``node``.

        Returns a cached tuple — do not mutate.
        """
        return self._tree_at.get((node, self.clamp_level(level)), self._empty)

    def is_member(self, node: NodeId, global_id: int) -> bool:
        return node in self._clusters[global_id].tree.members
