"""Node-local views of a layered sparse cover.

The asynchronous machinery needs, per node: which cluster trees it sits on
(parent/children per cluster, for the registration and aggregation waves) and
which clusters it is a *member* of per level (for "register in all clusters
of the 2^{l(p)+5}-cover that contain v").  :class:`CoverRegistry` assigns
globally unique cluster ids across levels and precomputes those views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..covers.cluster import ClusterTree
from ..covers.cover import LayeredCover
from ..net.graph import NodeId
from .registration import ClusterView


@dataclass(frozen=True)
class GlobalCluster:
    global_id: int
    level: int
    tree: ClusterTree


class CoverRegistry:
    """Level-indexed, globally-id'd view of a :class:`LayeredCover`."""

    def __init__(self, layered: LayeredCover) -> None:
        self.layered = layered
        self._clusters: Dict[int, GlobalCluster] = {}
        self._by_level: Dict[int, List[int]] = {}
        self._member_of: Dict[Tuple[NodeId, int], List[int]] = {}
        self._views: Dict[NodeId, Dict[int, ClusterView]] = {}
        next_id = 0
        for level in sorted(layered.levels):
            cover = layered.levels[level]
            ids: List[int] = []
            for tree in cover.clusters:
                gc = GlobalCluster(global_id=next_id, level=level, tree=tree)
                self._clusters[next_id] = gc
                ids.append(next_id)
                for v in tree.parent:
                    self._views.setdefault(v, {})[next_id] = ClusterView(
                        cluster_id=next_id,
                        parent=tree.parent[v],
                        children=tree.children.get(v, ()),
                    )
                for v in tree.members:
                    self._member_of.setdefault((v, level), []).append(next_id)
                next_id += 1
            self._by_level[level] = ids

    @property
    def top_level(self) -> int:
        return self.layered.top_level

    def clamp_level(self, level: int) -> int:
        """Clamp a requested cover level into the available range."""
        return min(max(level, min(self._by_level)), self.top_level)

    def cluster(self, global_id: int) -> GlobalCluster:
        return self._clusters[global_id]

    def clusters_at_level(self, level: int) -> List[int]:
        return list(self._by_level[self.clamp_level(level)])

    def views_of(self, node: NodeId) -> Dict[int, ClusterView]:
        """Every cluster tree this node participates in (member or Steiner)."""
        return dict(self._views.get(node, {}))

    def member_clusters(self, node: NodeId, level: int) -> List[int]:
        """Global ids of clusters at ``level`` that contain ``node``."""
        return list(self._member_of.get((node, self.clamp_level(level)), ()))

    def tree_clusters_of(self, node: NodeId, level: int) -> List[int]:
        """Clusters at ``level`` whose tree passes through ``node``."""
        lvl = self.clamp_level(level)
        return [
            cid
            for cid, view in self._views.get(node, {}).items()
            if self._clusters[cid].level == lvl
        ]

    def is_member(self, node: NodeId, global_id: int) -> bool:
        return node in self._clusters[global_id].tree.members
