"""Complete asynchronous BFS with doubling iterations (Section 4.6).

Iteration ``i`` runs a fresh ``2^i``-thresholded multi-source BFS from the
still-*alive* original sources (Theorems 4.23/4.24).  Termination uses the
paper's Approach 2 with the alive/dead refinement of Theorem 4.24:

* after the iteration's checking stage, each node of pulse exactly ``2^i``
  probes its neighbors for unreached nodes;
* the "subtree has a frontier node with an unreached neighbor" bit is
  convergecast up the execution tree to each source;
* a source whose subtree has no such frontier becomes *dead* and broadcasts
  the verdict down its tree: all its nodes become dead, output their
  distance, and join later iterations only as covered relays;
* unreached nodes know the algorithm must continue and stay alive.

A per-iteration "is anyone still alive?" convergecast on the top cover level
lets dead nodes stop launching further iterations, so the simulation
quiesces.  Nodes *output at death* — the paper's time-to-output measure is
``Õ(D1)`` — while this trailing bookkeeping may run longer, matching the
paper's remark that auxiliary communication can continue for up to ``Õ(D)``
after outputs (Section 1.3.1 and Appendix B).

Covers: this runner takes them as given (the Theorem 5.3 setting; see
DESIGN.md substitution 5 for why the per-iteration asynchronous cover
re-construction of Theorem 4.22 is out of scope and what that affects).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..net.async_runtime import AsyncResult, AsyncRuntime, Process, ProcessContext
from ..net.delays import DelayModel
from ..net.graph import Graph, NodeId
from .bfs_runner import BFSOutcome, required_cover_radius, registry_for_threshold
from .cluster_ops import ClusterAggregateModule, and_merge
from .registration import ClusterView
from .registry import CoverRegistry
from .thresholded_bfs import UNREACHED, ThresholdedBFSCore


@dataclass
class _IterationState:
    core: Optional[ThresholdedBFSCore] = None
    check_done: bool = False
    pulse: Optional[int] = None
    probe_pending: Set[NodeId] = field(default_factory=set)
    probe_unreached_seen: bool = False
    front_reports: Dict[NodeId, bool] = field(default_factory=dict)
    front_sent: bool = False
    pending_probes_in: List[NodeId] = field(default_factory=list)
    verdict: Optional[bool] = None  # True = this subtree is dead
    alive_contributed: bool = False


class FullBFSNode:
    """Per-node driver for the complete doubling BFS."""

    def __init__(
        self,
        node_id: NodeId,
        neighbors: Tuple[NodeId, ...],
        registry: CoverRegistry,
        is_source: bool,
        max_iterations: int,
        send,  # (to, payload, priority_tuple) -> None
        on_output,  # (distance, parent) -> None
    ) -> None:
        self.node_id = node_id
        self.neighbors = neighbors
        self.registry = registry
        self.is_source = is_source
        self.max_iterations = max_iterations
        self._send = send
        self.on_output = on_output
        self.alive = True
        self.distance: Optional[int] = None
        self.parent: Optional[NodeId] = None
        self.output_done = False
        self.iterations: Dict[int, _IterationState] = {}
        top_views = {}
        top_level = registry.top_level
        for cid in registry.clusters_at_level(top_level):
            gc = registry.cluster(cid)
            if node_id in gc.tree.parent:
                top_views[cid] = ClusterView(
                    cluster_id=cid,
                    parent=gc.tree.parent[node_id],
                    children=gc.tree.children.get(node_id, ()),
                )
        self._alive_agg = ClusterAggregateModule(
            node_id=node_id,
            clusters=top_views,
            send=lambda to, payload, priority: self._send(
                to, ("fb_alive", payload), priority
            ),
            on_result=self._on_alive_result,
            merge_fn=lambda tag: and_merge,
            priority_fn=lambda tag: (tag[1], 1 << 30),
        )
        self._alive_members = set(
            registry.member_clusters(node_id, registry.top_level)
        )
        self._alive_results: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    def _iteration(self, i: int) -> _IterationState:
        state = self.iterations.get(i)
        if state is None:
            state = _IterationState()
            state.core = ThresholdedBFSCore(
                node_id=self.node_id,
                neighbors=self.neighbors,
                registry=self.registry,
                threshold=1 << i,
                send=lambda to, payload, s, i=i: self._send(
                    to, ("fb", i, payload), (i, s)
                ),
                on_complete=lambda pulse, i=i: self._check_done(i, pulse),
            )
            self.iterations[i] = state
        return state

    def start(self) -> None:
        self._activate(0)

    def _activate(self, i: int) -> None:
        if i >= self.max_iterations:
            raise RuntimeError(
                f"full BFS exceeded {self.max_iterations} iterations at node"
                f" {self.node_id}"
            )
        state = self._iteration(i)
        if self.alive:
            state.core.activate(self.is_source)
        else:
            state.core.activate(False, covered=True)
            self._contribute_alive(i, dead=True)

    # ------------------------------------------------------------------
    # after the checking stage: probing and frontier convergecast
    # ------------------------------------------------------------------
    def _check_done(self, i: int, pulse: Optional[int]) -> None:
        state = self._iteration(i)
        state.check_done = True
        state.pulse = pulse
        if self.alive and pulse is not None:
            self.distance = pulse
            self.parent = state.core.parent
        # Answer probes that arrived before we knew our status.
        for prober in state.pending_probes_in:
            self._send(
                prober, ("fb_probe_ans", i, pulse is not None or not self.alive),
                (i, (1 << i) + 2),
            )
        state.pending_probes_in.clear()
        if not self.alive:
            return
        if pulse is None:
            # Unreached: the algorithm is certainly not finished.
            self._contribute_alive(i, dead=False)
            self._activate(i + 1)
            return
        if pulse == (1 << i):
            state.probe_pending = set(self.neighbors)
            for v in self.neighbors:
                self._send(v, ("fb_probe", i), (i, (1 << i) + 2))
        else:
            self._maybe_send_front(i)

    def _handle_probe(self, sender: NodeId, i: int) -> None:
        state = self._iteration(i)
        if state.check_done:
            reached = state.pulse is not None or not self.alive
            self._send(sender, ("fb_probe_ans", i, reached), (i, (1 << i) + 2))
        else:
            state.pending_probes_in.append(sender)

    def _handle_probe_answer(self, sender: NodeId, i: int, reached: bool) -> None:
        state = self._iteration(i)
        state.probe_pending.discard(sender)
        if not reached:
            state.probe_unreached_seen = True
        if not state.probe_pending:
            self._maybe_send_front(i)

    def _handle_front(self, sender: NodeId, i: int, flag: bool) -> None:
        state = self._iteration(i)
        state.front_reports[sender] = flag
        self._maybe_send_front(i)

    def _maybe_send_front(self, i: int) -> None:
        state = self._iteration(i)
        if state.front_sent or not state.check_done or state.pulse is None:
            return
        if state.pulse == (1 << i):
            if state.probe_pending:
                return
            flag = state.probe_unreached_seen
        else:
            children = state.core.children
            if not set(state.front_reports) >= set(children):
                return
            flag = any(state.front_reports[c] for c in children)
        state.front_sent = True
        if self.is_source and state.pulse == 0:
            self._verdict(i, dead=not flag)
        else:
            self._send(state.core.parent, ("fb_front", i, flag), (i, (1 << i) + 2))

    # ------------------------------------------------------------------
    # verdict broadcast and the alive barrier
    # ------------------------------------------------------------------
    def _verdict(self, i: int, dead: bool) -> None:
        state = self._iteration(i)
        state.verdict = dead
        for c in state.core.children:
            self._send(c, ("fb_verdict", i, dead), (i, (1 << i) + 2))
        if dead:
            self.alive = False
            self._emit_output()
        self._contribute_alive(i, dead=dead)
        if not dead:
            self._activate(i + 1)

    def _handle_verdict(self, sender: NodeId, i: int, dead: bool) -> None:
        self._verdict(i, dead)

    def _emit_output(self) -> None:
        if self.output_done:
            return
        self.output_done = True
        self.on_output(self.distance, self.parent)

    def _contribute_alive(self, i: int, dead: bool) -> None:
        state = self._iteration(i)
        if state.alive_contributed:
            return
        state.alive_contributed = True
        self._alive_results[i] = set(self._alive_members)
        for cid in self._alive_agg.clusters:
            self._alive_agg.contribute(cid, ("alive", i), dead)

    def _on_alive_result(self, cid: int, tag: Tuple, all_dead: bool) -> None:
        _, i = tag
        pending = self._alive_results.get(i)
        if pending is None or cid not in pending:
            return
        pending.discard(cid)
        if pending:
            return
        if not all_dead and not self.alive:
            # Someone is still alive: serve the next iteration as a relay.
            self._activate(i + 1)
        # all_dead: every node has output; nothing more to launch.

    # ------------------------------------------------------------------
    def handle(self, sender: NodeId, payload: Tuple) -> None:
        kind = payload[0]
        if kind == "fb":
            self._iteration(payload[1]).core.handle(sender, payload[2])
        elif kind == "fb_alive":
            self._alive_agg.handle(sender, payload[1])
        elif kind == "fb_probe":
            self._handle_probe(sender, payload[1])
        elif kind == "fb_probe_ans":
            self._handle_probe_answer(sender, payload[1], payload[2])
        elif kind == "fb_front":
            self._handle_front(sender, payload[1], payload[2])
        elif kind == "fb_verdict":
            self._handle_verdict(sender, payload[1], payload[2])
        else:
            raise ValueError(f"unknown full-BFS message {payload!r}")


class FullBFSProcess(Process):
    registry: CoverRegistry
    sources: FrozenSet[NodeId]
    max_iterations: int

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        self.node = FullBFSNode(
            node_id=ctx.node_id,
            neighbors=ctx.neighbors,
            registry=self.registry,
            is_source=ctx.node_id in self.sources,
            max_iterations=self.max_iterations,
            send=lambda to, payload, priority: ctx.send(to, payload, priority),
            on_output=lambda dist, parent: ctx.set_output(
                (dist if dist is not None else UNREACHED, parent)
            ),
        )

    def on_start(self) -> None:
        self.node.start()

    def on_message(self, sender: NodeId, payload: Tuple) -> None:
        self.node.handle(sender, payload)


def run_full_bfs(
    graph: Graph,
    sources: Iterable[NodeId] | NodeId,
    delay_model: DelayModel,
    registry: Optional[CoverRegistry] = None,
    builder: str = "ap",
    max_events: int = 100_000_000,
) -> BFSOutcome:
    """Theorems 4.23/4.24: complete BFS, every node outputs its distance.

    When no registry is given, covers are built (sequentially) for the top
    radius the doubling can need; the asynchronous bootstrap construction
    lives in :mod:`repro.core.async_cover`.
    """
    source_set = frozenset((sources,)) if isinstance(sources, int) else frozenset(sources)
    if not source_set:
        raise ValueError("at least one source required")
    dist = graph.bfs_distances(source_set)
    reach = max(d for d in dist if d != UNREACHED)
    max_iterations = max(1, math.ceil(math.log2(max(reach, 1))) + 2)
    if registry is None:
        registry = registry_for_threshold(graph, 1 << (max_iterations - 1), builder)
    namespace = dict(
        registry=registry, sources=source_set, max_iterations=max_iterations
    )
    process_cls = type("BoundFullBFS", (FullBFSProcess,), namespace)
    runtime = AsyncRuntime(graph, process_cls, delay_model)
    result = runtime.run(max_events=max_events)
    if result.stop_reason != "quiescent":
        raise RuntimeError(f"full BFS did not finish: {result.stop_reason}")
    missing = set(graph.nodes) - set(result.outputs)
    if missing:
        raise RuntimeError(f"full BFS stalled: nodes {sorted(missing)} never output")
    distances = {v: result.outputs[v][0] for v in graph.nodes}
    parents = {v: result.outputs[v][1] for v in graph.nodes}
    return BFSOutcome(distances=distances, parents=parents, result=result)
