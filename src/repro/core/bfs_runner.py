"""Runners that execute the thresholded-BFS machinery on the async simulator."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple
from weakref import WeakKeyDictionary

from ..covers.builders import build_layered_cover
from ..covers.cover import LayeredCover
from ..net.async_runtime import AsyncResult, AsyncRuntime, Process, ProcessContext
from ..net.delays import DelayModel
from ..net.graph import Graph, NodeId
from .pulse import COVER_LEVEL_OFFSET
from .registry import CoverRegistry
from .thresholded_bfs import OP_GA, UNREACHED, ThresholdedBFSCore


@dataclass
class BFSOutcome:
    """Distances computed by an asynchronous BFS run, plus transport stats."""

    distances: Dict[NodeId, float]
    parents: Dict[NodeId, Optional[NodeId]]
    result: AsyncResult

    @property
    def messages(self) -> int:
        return self.result.messages

    @property
    def time(self) -> float:
        return self.result.time_to_output


def required_cover_radius(threshold: int) -> int:
    """Top cover radius a 2^t-thresholded BFS needs: 2^(t + 5)."""
    t = max(threshold.bit_length() - 1, 0)
    return 1 << (t + COVER_LEVEL_OFFSET)


# Cover construction is a pure function of (graph, radius, builder); sweeps
# and repeated runs over the same graph share the registry.  Keyed weakly so
# discarded graphs release their covers.
_REGISTRY_CACHE: "WeakKeyDictionary[Graph, Dict[Tuple[int, str], CoverRegistry]]" = (
    WeakKeyDictionary()
)


def registry_for_threshold(
    graph: Graph, threshold: int, builder: str = "ap"
) -> CoverRegistry:
    radius = required_cover_radius(threshold)
    per_graph = _REGISTRY_CACHE.get(graph)
    if per_graph is None:
        per_graph = _REGISTRY_CACHE[graph] = {}
    registry = per_graph.get((radius, builder))
    if registry is None:
        layered = build_layered_cover(graph, radius, builder)
        registry = per_graph[(radius, builder)] = CoverRegistry(layered)
    return registry


class ThresholdedBFSProcess(Process):
    """One-node standalone wrapper: activates at start, outputs its distance."""

    # Set by the factory closure:
    registry: CoverRegistry
    sources: FrozenSet[NodeId]
    threshold: int

    #: Recycle registration stage slots (DESIGN.md §10).  Subclasses (or
    #: the byte-identity A/B tests) set False to force fresh allocation.
    pool: bool = True

    #: Opcode range of the core's dispatch tuple (0..OP_GA): the transport
    #: validates the table against this at wiring time.
    NUM_OPCODES = OP_GA + 1

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        # The link priority IS the stage number: every send in a thresholded
        # BFS run carries an explicit stage, so bare ints order the outboxes
        # exactly as the old per-stage tuples did — without a wrapper frame
        # and a tuple table per send path.
        self.core = ThresholdedBFSCore(
            node_id=ctx.node_id,
            neighbors=ctx.neighbors,
            registry=self.registry,
            threshold=self.threshold,
            send=ctx.send,
            on_complete=self._on_complete,
            # getattr: reference/teaching engines run the same process class
            # without a dense link table; the core then falls back to
            # node-id sends (the identity link map).
            links=getattr(ctx, "links", None),
            send_link=getattr(ctx, "send_link", None),
            pool=self.pool,
        )
        # Shadow the class method: the transport calls the node engine
        # directly (one frame less per delivered message), and the opcode
        # table lets it skip the guarded ``handle`` wrapper entirely.
        self.on_message = self.core.handle
        self.on_message_table = self.core._dispatch

    def _on_complete(self, pulse: Optional[int]) -> None:
        self.ctx.set_output(
            (pulse if pulse is not None else UNREACHED, self.core.parent)
        )

    def on_start(self) -> None:
        self.core.activate(self.ctx.node_id in self.sources)

    def on_message(self, sender: NodeId, payload: Tuple) -> None:
        self.core.handle(sender, payload)


def run_thresholded_bfs(
    graph: Graph,
    sources: Iterable[NodeId] | NodeId,
    threshold: int,
    delay_model: DelayModel,
    registry: Optional[CoverRegistry] = None,
    builder: str = "ap",
    max_events: int = 50_000_000,
) -> BFSOutcome:
    """Run one 2^t-thresholded (multi-source) BFS to completion.

    Every node outputs its distance to the closest source, or ``inf`` when
    that distance exceeds the threshold (Definition 4.2).
    """
    source_set = frozenset((sources,)) if isinstance(sources, int) else frozenset(sources)
    if not source_set:
        raise ValueError("at least one source required")
    if registry is None:
        registry = registry_for_threshold(graph, threshold, builder)

    namespace = dict(
        registry=registry, sources=source_set, threshold=threshold
    )
    process_cls = type("BoundThresholdedBFS", (ThresholdedBFSProcess,), namespace)
    runtime = AsyncRuntime(graph, process_cls, delay_model)
    result = runtime.run(max_events=max_events)
    if result.stop_reason != "quiescent":
        raise RuntimeError(f"BFS did not finish: {result.stop_reason}")
    missing = set(graph.nodes) - set(result.outputs)
    if missing:
        raise RuntimeError(f"BFS deadlocked: nodes {sorted(missing)} never completed")
    distances = {v: result.outputs[v][0] for v in graph.nodes}
    parents = {v: result.outputs[v][1] for v in graph.nodes}
    return BFSOutcome(distances=distances, parents=parents, result=result)
