"""Churn-tolerant synchronizer execution (DESIGN.md §11).

The fault-free synchronizer is an exact machine: every Go-Ahead is gated on
acknowledgments and chosen/not-chosen answers, so a single crashed neighbor
stalls its whole subtree forever.  This module layers the recovery
semantics on top:

* :class:`RecoverySynchronizerProcess` runs the synchronizer with
  ``recovery=True`` bookkeeping, reacts to the transport's failure
  detectors (``on_neighbor_dead``) by pruning the dead neighbor out of
  every local wait set, and drops any straggler message from a pruned
  sender (a pre-crash message deferred across a link-down interval would
  otherwise trip the Lemma 5.1 oracle — under fail-stop semantics a dead
  node's words are void from the moment the crash is *detected*).
* :func:`run_churn` drives a full experiment in one of two modes:

  - ``"degrade"`` — one pass: survivors prune dead subtrees on detection
    and keep the pulses they completed.  Outputs are best-effort, bounded
    by ``dist_G(v) <= output(v) <= dist_H(v)`` for BFS-style programs
    (``H`` = the surviving component; see DESIGN.md §11).
  - ``"rebuild"`` — the degrade pass, then a clean re-registration and
    re-run on the surviving component, whose outputs are exact for ``H``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..net.async_runtime import AsyncRuntime, ProcessContext
from ..net.delays import DelayModel
from ..net.faults import DETECT_TIMEOUT, FaultSchedule
from ..net.graph import Graph, NodeId
from ..net.program import ProgramSpec
from .bfs_runner import registry_for_threshold
from .synchronizer import SynchronizerProcess, pulse_bound_for, run_synchronized

#: ``spec_factory(root)`` builds the program spec for a given root/source
#: node id, so the rebuild pass can re-instantiate the same algorithm on the
#: remapped surviving component.
SpecFactory = Callable[[NodeId], ProgramSpec]


class RecoverySynchronizerProcess(SynchronizerProcess):
    """Synchronizer process with churn recovery (DESIGN.md §11).

    Subclass per run via :func:`run_churn` (the same ``type(...)`` binding
    pattern as :func:`~repro.core.synchronizer.run_synchronized`).
    """

    recovery = True

    def __init__(self, ctx: ProcessContext) -> None:
        super().__init__(ctx)
        # Fail-stop enforcement: once a neighbor is pruned, nothing it said
        # may reach the modules — a pre-crash message deferred across a
        # down interval can arrive arbitrarily late.  The guard costs one
        # set probe per delivered message, so the opcode-table fast path is
        # disabled for recovery runs.
        node = self.node
        inner = node.handle
        pruned = node._pruned

        def guarded(sender: NodeId, payload: Tuple) -> None:
            if sender in pruned:
                return
            inner(sender, payload)

        self.on_message = guarded
        self.on_message_table = None

    def on_neighbor_dead(self, neighbor: NodeId) -> None:
        # Clear the jammed link first (a send into the crashed node never
        # acks, wedging the outbox), then detach the neighbor from every
        # protocol wait set.
        self.ctx.reset_link(neighbor)
        self.node.prune_neighbor(neighbor)


@dataclass
class ChurnOutcome:
    """Outcome of one :func:`run_churn` experiment."""

    mode: str
    crashed: Tuple[NodeId, ...]
    #: Nodes in the root's connected component over the surviving graph.
    survivors: Tuple[NodeId, ...]
    #: Final outputs restricted to survivors (rebuild mode: the clean
    #: re-run's outputs, mapped back to original node ids).
    outputs: Dict[NodeId, Any]
    #: Survivors that produced any output at all.
    answered: int
    messages: int
    acks: int
    dropped: int
    #: Events fired across both passes (degrade pass + rebuild, if any).
    events_fired: int
    time_to_output: float
    time_to_quiescence: float
    #: Messages of the rebuild pass (0 in degrade mode).
    rebuild_messages: int
    stop_reason: str

    @property
    def survivor_count(self) -> int:
        return len(self.survivors)

    @property
    def total_messages(self) -> int:
        return self.messages + self.rebuild_messages


def _surviving_component(
    graph: Graph, live: Set[NodeId], root: NodeId
) -> Tuple[NodeId, ...]:
    """Root's connected component in the subgraph induced by ``live``."""
    seen = {root}
    frontier = [root]
    while frontier:
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u in live and u not in seen:
                    seen.add(u)
                    nxt.append(u)
        frontier = nxt
    return tuple(sorted(seen))


def run_churn(
    graph: Graph,
    spec_factory: SpecFactory,
    delay_model: DelayModel,
    faults: FaultSchedule,
    mode: str = "degrade",
    root: NodeId = 0,
    detect_timeout: float = DETECT_TIMEOUT,
    builder: str = "ap",
    max_pulse: Optional[int] = None,
    max_events: int = 100_000_000,
) -> ChurnOutcome:
    """Run ``spec_factory(root)`` under the synchronizer through a churn.

    Deterministic end to end: the fault schedule, the delay model, and the
    recovery reactions are all pure functions of their seeds, so a fixed
    ``(graph, spec, delay_model, faults, mode)`` pins the whole execution.
    """
    if mode not in ("degrade", "rebuild"):
        raise ValueError(f"mode must be 'degrade' or 'rebuild', got {mode!r}")
    if faults.crash_time(root) != float("inf"):
        raise ValueError(
            f"the root/source {root} is scheduled to crash; protect it"
            f" (FaultSchedule(..., protect=({root},)))"
        )
    spec = spec_factory(root)
    if max_pulse is None:
        max_pulse = pulse_bound_for(graph, spec)
    registry = registry_for_threshold(graph, max_pulse, builder)
    namespace = dict(
        spec=spec,
        registry=registry,
        max_pulse=max_pulse,
        initiators=frozenset(spec.initiators(graph)),
        infos=spec.make_infos(graph),
    )
    process_cls = type(
        "BoundRecoverySynchronizer", (RecoverySynchronizerProcess,), namespace
    )
    runtime = AsyncRuntime(
        graph, process_cls, delay_model,
        faults=faults, detect_timeout=detect_timeout,
    )
    result = runtime.run(max_events=max_events)

    crashed = tuple(faults.crashed_nodes(graph.nodes))
    live = set(graph.nodes) - set(crashed)
    survivors = _surviving_component(graph, live, root)
    outputs = {v: result.outputs[v] for v in survivors if v in result.outputs}

    rebuild_messages = 0
    events_fired = result.events_fired
    if mode == "rebuild":
        # Clean re-registration on the surviving component: covers, views
        # and pulse bound are all rebuilt for H, so the second pass is an
        # ordinary fault-free synchronizer run whose outputs are exact.
        subgraph, remap = graph.induced_subgraph(survivors)
        sub_result = run_synchronized(
            subgraph, spec_factory(remap[root]), delay_model,
            builder=builder, max_events=max_events,
        )
        back = {new: old for old, new in remap.items()}
        outputs = {back[v]: value for v, value in sub_result.outputs.items()}
        rebuild_messages = sub_result.messages
        events_fired += sub_result.events_fired

    return ChurnOutcome(
        mode=mode,
        crashed=crashed,
        survivors=survivors,
        outputs=outputs,
        answered=sum(1 for v in survivors if v in outputs),
        messages=result.messages,
        acks=result.acks,
        dropped=result.dropped,
        events_fired=events_fired,
        time_to_output=result.time_to_output,
        time_to_quiescence=result.time_to_quiescence,
        rebuild_messages=rebuild_messages,
        stop_reason=result.stop_reason,
    )
